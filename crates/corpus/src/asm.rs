//! Lowering a [`Cfg`] to a SotVM [`Binary`].
//!
//! Blocks are laid out in id order. Each block emits `instruction_count - 1`
//! non-control body instructions (deterministically derived filler — the
//! Soteria pipeline never inspects them) followed by one terminator chosen
//! by out-degree:
//!
//! * 0 successors → `ret`
//! * 1 successor → `jmp`
//! * 2 successors → `br`
//! * 3+ successors → `switch`

use crate::binary::Binary;
use crate::isa::Instruction;
use soteria_cfg::{BlockId, Cfg, CfgBuilder};

/// Result of lowering: the binary image plus the graph *as laid out* —
/// structurally identical to the input but with block addresses and
/// instruction counts exactly as they appear in the image. Round-tripping
/// the binary through the disassembler reproduces `laid_out` (restricted to
/// reachable blocks).
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The executable image.
    pub binary: Binary,
    /// The input graph with layout addresses and final instruction counts.
    pub laid_out: Cfg,
}

/// Deterministic filler selection: a cheap integer mix of the build salt,
/// block address and instruction index. Keeps `asm` free of RNG state
/// while still producing varied body bytes.
fn filler(salt: u64, addr: u32, i: u32) -> Instruction {
    let mut x = (u64::from(addr) << 32) ^ u64::from(i) ^ salt ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    match x % 5 {
        0 => Instruction::Nop,
        1 => Instruction::Alu {
            func: (x >> 8) as u8 & 0x0f,
            regs: (x >> 16) as u16,
        },
        2 => Instruction::Load {
            reg: (x >> 8) as u8 & 0x07,
            offset: (x >> 16) as u16 & 0xff,
        },
        3 => Instruction::Store {
            reg: (x >> 8) as u8 & 0x07,
            offset: (x >> 16) as u16 & 0xff,
        },
        _ => Instruction::Syscall {
            num: (x >> 8) as u8 & 0x3f,
        },
    }
}

fn terminator_len(out_degree: usize) -> usize {
    match out_degree {
        0 => 4,
        1 => 8,
        2 => 12,
        k => 4 + 4 * k,
    }
}

/// Lowers `cfg` to a binary image.
///
/// Every block contributes at least one instruction (its terminator); a
/// block whose recorded `instruction_count` is 0 is emitted as terminator
/// only.
///
/// # Example
///
/// ```
/// use soteria_cfg::CfgBuilder;
/// use soteria_corpus::{asm, disasm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CfgBuilder::new();
/// let e = b.add_block(0, 3);
/// let x = b.add_block(0, 1);
/// b.add_edge(e, x)?;
/// let cfg = b.build(e)?;
///
/// let lowered = asm::assemble(&cfg);
/// let lifted = disasm::lift(&lowered.binary)?;
/// assert_eq!(lifted.cfg, lowered.laid_out);
/// # Ok(())
/// # }
/// ```
pub fn assemble(cfg: &Cfg) -> Lowered {
    assemble_salted(cfg, 0)
}

/// [`assemble`] with a *build salt* that varies the non-control filler
/// instructions: two builds of the same CFG with different salts are
/// byte-distinct (like real rebuilds with different strings or C2
/// addresses) while lifting to identical graphs.
pub fn assemble_salted(cfg: &Cfg, salt: u64) -> Lowered {
    let n = cfg.node_count();
    // Pass 1: compute each block's size and address.
    let mut addrs = Vec::with_capacity(n);
    let mut body_counts = Vec::with_capacity(n);
    let mut cursor = 0u32;
    for id in cfg.block_ids() {
        let body = cfg.block(id).instruction_count().saturating_sub(1);
        let size = 4 * body as usize + terminator_len(cfg.out_degree(id));
        addrs.push(cursor);
        body_counts.push(body);
        cursor += size as u32;
    }

    // Pass 2: emit.
    let mut code = Vec::with_capacity(cursor as usize);
    for id in cfg.block_ids() {
        let i = id.index();
        for k in 0..body_counts[i] {
            filler(salt, addrs[i], k).encode(&mut code);
        }
        let succ: Vec<u32> = cfg
            .successors(id)
            .iter()
            .map(|s| addrs[s.index()])
            .collect();
        let term = match succ.len() {
            0 => Instruction::Ret,
            1 => Instruction::Jmp { target: succ[0] },
            2 => Instruction::Br {
                cond: (i & 0xff) as u8,
                taken: succ[0],
                not_taken: succ[1],
            },
            _ => Instruction::Switch { targets: succ },
        };
        term.encode(&mut code);
    }
    debug_assert_eq!(code.len(), cursor as usize);

    // The as-laid-out graph: same structure, layout addresses, final counts.
    let mut b = CfgBuilder::with_capacity(n);
    for id in cfg.block_ids() {
        let i = id.index();
        b.add_block(u64::from(addrs[i]), body_counts[i] + 1);
    }
    for (f, t) in cfg.edges() {
        b.add_edge(f, t).expect("copying edges of a valid graph");
    }
    let laid_out = b.build(cfg.entry()).expect("copy of a valid graph builds");

    let entry_addr = addrs[cfg.entry().index()];
    Lowered {
        binary: Binary::new(entry_addr, code),
        laid_out,
    }
}

/// Emits a standalone dead-code fragment (a short chain of blocks ending in
/// `ret`) suitable for [`Binary::append_dead_code`]. `base` is the byte
/// offset the fragment will be placed at; internal jumps are relocated to
/// it. Returns the encoded bytes.
pub fn dead_fragment(base: u32, blocks: usize) -> Vec<u8> {
    assert!(blocks >= 1, "fragment needs at least one block");
    let mut b = CfgBuilder::new();
    let ids: Vec<BlockId> = (0..blocks).map(|i| b.add_block(i as u64, 2)).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1]).expect("fresh edges");
    }
    let frag = b.build(ids[0]).expect("non-empty");
    let lowered = assemble(&frag);
    // Relocate: re-emit with all targets shifted by `base`. The fragment's
    // only branches are the chain `jmp`s, each an 8-byte instruction whose
    // last 4 bytes are the target.
    let mut code = lowered.binary.code().to_vec();
    let mut off = 0usize;
    while off < code.len() {
        let insn = Instruction::decode(&code, off).expect("own encoding decodes");
        if let Instruction::Jmp { target } = insn {
            let new = target + base;
            code[off + 4..off + 8].copy_from_slice(&new.to_le_bytes());
        }
        off += insn.encoded_len();
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction;

    fn diamond(counts: [u32; 4]) -> Cfg {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, counts[0]);
        let l = b.add_block(0, counts[1]);
        let r = b.add_block(0, counts[2]);
        let x = b.add_block(0, counts[3]);
        b.add_edge(e, l).unwrap();
        b.add_edge(e, r).unwrap();
        b.add_edge(l, x).unwrap();
        b.add_edge(r, x).unwrap();
        b.build(e).unwrap()
    }

    #[test]
    fn layout_is_contiguous_and_in_id_order() {
        let g = diamond([3, 2, 2, 1]);
        let lowered = assemble(&g);
        let a: Vec<u64> = lowered
            .laid_out
            .block_ids()
            .map(|id| lowered.laid_out.block(id).address())
            .collect();
        assert_eq!(a[0], 0);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // entry block: 2 body * 4 + br 12 = 20 bytes.
        assert_eq!(a[1], 20);
    }

    #[test]
    fn instruction_counts_preserved() {
        let g = diamond([3, 2, 2, 1]);
        let lowered = assemble(&g);
        for id in g.block_ids() {
            assert_eq!(
                lowered.laid_out.block(id).instruction_count(),
                g.block(id).instruction_count()
            );
        }
    }

    #[test]
    fn zero_count_block_still_gets_terminator() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 0);
        let g = b.build(e).unwrap();
        let lowered = assemble(&g);
        assert_eq!(lowered.binary.code(), &[0x20, 0, 0, 0]); // ret
        assert_eq!(lowered.laid_out.block(e).instruction_count(), 1);
    }

    #[test]
    fn terminator_matches_out_degree() {
        // 3-way switch block.
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let t1 = b.add_block(0, 1);
        let t2 = b.add_block(0, 1);
        let t3 = b.add_block(0, 1);
        for t in [t1, t2, t3] {
            b.add_edge(e, t).unwrap();
        }
        let g = b.build(e).unwrap();
        let lowered = assemble(&g);
        let first = Instruction::decode(lowered.binary.code(), 0).unwrap();
        match first {
            Instruction::Switch { targets } => assert_eq!(targets.len(), 3),
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn filler_is_deterministic_and_non_control() {
        for i in 0..64 {
            let f1 = filler(0, 0x40, i);
            let f2 = filler(0, 0x40, i);
            assert_eq!(f1, f2);
            assert!(!f1.is_terminator());
        }
    }

    #[test]
    fn salted_builds_differ_in_bytes_but_lift_identically() {
        let g = diamond([3, 2, 2, 1]);
        let a = assemble_salted(&g, 1);
        let b = assemble_salted(&g, 2);
        assert_ne!(a.binary, b.binary);
        assert_eq!(a.laid_out, b.laid_out);
        let la = crate::disasm::lift(&a.binary).unwrap();
        let lb = crate::disasm::lift(&b.binary).unwrap();
        assert_eq!(la.cfg, lb.cfg);
    }

    #[test]
    fn entry_not_first_block_is_respected() {
        let mut b = CfgBuilder::new();
        let other = b.add_block(0, 1);
        let entry = b.add_block(0, 1);
        b.add_edge(entry, other).unwrap();
        let g = b.build(entry).unwrap();
        let lowered = assemble(&g);
        // Block 0 (ret, 4 bytes) precedes the entry at offset 4.
        assert_eq!(lowered.binary.entry(), 4);
    }

    #[test]
    fn dead_fragment_decodes_cleanly_at_base() {
        let base = 0x100;
        let bytes = dead_fragment(base, 3);
        let mut off = 0;
        let mut jmps = 0;
        while off < bytes.len() {
            let insn = Instruction::decode(&bytes, off).unwrap();
            if let Instruction::Jmp { target } = insn {
                assert!(target >= base, "jump {target:#x} escapes fragment");
                jmps += 1;
            }
            off += insn.encoded_len();
        }
        assert_eq!(jmps, 2); // 3-block chain has 2 internal jumps
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn dead_fragment_rejects_zero_blocks() {
        let _ = dead_fragment(0, 0);
    }
}
