//! Corpus assembly: samples, class distributions, and stratified
//! train/test splits.

use crate::avclass::{self, ScanPanel};
use crate::binary::Binary;
use crate::families::Family;
use crate::generator::SampleGenerator;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use soteria_cfg::Cfg;

/// One corpus entry: a named binary with its ground-truth class, its
/// AVClass-assigned label, and its lifted CFG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    name: String,
    family: Family,
    av_label: Family,
    binary: Binary,
    cfg: Cfg,
}

impl Sample {
    /// Assembles a sample from already-lifted parts. `av_label` starts
    /// equal to the ground truth; [`Corpus::generate`] overwrites it with
    /// the simulated AVClass verdict.
    pub fn from_parts(name: String, family: Family, binary: Binary, cfg: Cfg) -> Self {
        Sample {
            name,
            family,
            av_label: family,
            binary,
            cfg,
        }
    }

    /// Unique sample name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ground-truth class.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The label the simulated VirusTotal/AVClass pipeline assigned (what a
    /// real experimenter would train on).
    pub fn av_label(&self) -> Family {
        self.av_label
    }

    /// Overrides the AV label (used by the labeling pipeline).
    pub fn set_av_label(&mut self, label: Family) {
        self.av_label = label;
    }

    /// The binary image.
    pub fn binary(&self) -> &Binary {
        &self.binary
    }

    /// The lifted CFG as cached at construction (may contain dead blocks).
    pub fn graph(&self) -> &Cfg {
        &self.cfg
    }

    /// Re-lifts the CFG from the binary (the canonical radare2-equivalent
    /// path; used by tests to check the cache is honest).
    ///
    /// # Errors
    ///
    /// Propagates disassembly failures.
    pub fn cfg(&self) -> Result<Cfg, crate::CorpusError> {
        Ok(crate::disasm::lift(&self.binary)?.cfg)
    }
}

/// Corpus composition: how many samples of each class to generate.
///
/// The paper's corpus (Table II) back-solves from the per-class test counts
/// to Benign 3,000 / Gafgyt 11,085 / Mirai 2,365 / Tsunami 260 at an 80/20
/// split; [`CorpusConfig::paper`] uses those numbers and
/// [`CorpusConfig::scaled`] shrinks them proportionally for fast runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Per-class sample counts in [`Family::ALL`] order.
    pub counts: [usize; 4],
    /// Master RNG seed.
    pub seed: u64,
    /// Noise rate of the simulated AV panel (0 disables label noise).
    pub av_noise: bool,
    /// Variant lineages per family (see
    /// [`SampleGenerator::with_lineages`]). Small corpora should use
    /// proportionally few lineages so each base still has several
    /// variants.
    pub lineages: usize,
}

impl CorpusConfig {
    /// The paper-scale corpus: 16,710 samples.
    pub fn paper(seed: u64) -> Self {
        CorpusConfig {
            counts: [3000, 11085, 2365, 260],
            seed,
            av_noise: true,
            lineages: crate::generator::DEFAULT_LINEAGES,
        }
    }

    /// The paper corpus scaled by `factor`. Each class keeps at least 40
    /// samples so the smallest family still has enough train/test
    /// representation for per-class statistics (the paper's Tsunami class
    /// is tiny in relative terms but still has 260 samples).
    pub fn scaled(factor: f64, seed: u64) -> Self {
        let paper = Self::paper(seed);
        let counts = paper
            .counts
            .map(|c| ((c as f64 * factor).round() as usize).max(40).min(c));
        // Keep several variants per lineage for the smallest class.
        let min_class = counts.iter().min().copied().unwrap_or(40);
        let lineages = (min_class / 5).clamp(2, crate::generator::DEFAULT_LINEAGES);
        CorpusConfig {
            counts,
            seed,
            av_noise: true,
            lineages,
        }
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// A fully generated corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    samples: Vec<Sample>,
    config: CorpusConfig,
}

/// Index-based train/test partition of a [`Corpus`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of test samples.
    pub test: Vec<usize>,
}

impl Corpus {
    /// Generates the corpus described by `config`, including simulated
    /// AVClass labels for every malware sample.
    ///
    /// # Example
    ///
    /// ```
    /// use soteria_corpus::{Corpus, CorpusConfig};
    ///
    /// let corpus = Corpus::generate(&CorpusConfig::scaled(0.005, 7));
    /// assert_eq!(corpus.len(), corpus.config().total());
    /// ```
    pub fn generate(config: &CorpusConfig) -> Self {
        let mut gen = SampleGenerator::with_lineages(config.seed, config.lineages);
        let panel = ScanPanel::standard();
        let mut label_rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xA5C1A55);
        let mut samples = Vec::with_capacity(config.total());
        for (fi, &count) in config.counts.iter().enumerate() {
            let family = Family::from_index(fi);
            for _ in 0..count {
                let mut s = gen.generate(family);
                if config.av_noise {
                    s.set_av_label(avclass::label_sample(&panel, family, &mut label_rng));
                }
                samples.push(s);
            }
        }
        Corpus {
            samples,
            config: *config,
        }
    }

    /// Wraps externally provided samples (e.g. loaded from disk) as a
    /// corpus. The config records the observed per-class counts.
    pub fn from_samples(samples: Vec<Sample>, seed: u64) -> Self {
        let mut counts = [0usize; 4];
        for s in &samples {
            counts[s.family().index()] += 1;
        }
        Corpus {
            samples,
            config: CorpusConfig {
                counts,
                seed,
                av_noise: false,
                lineages: crate::generator::DEFAULT_LINEAGES,
            },
        }
    }

    /// The generation config.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-class sample counts in [`Family::ALL`] order (by ground truth).
    pub fn class_counts(&self) -> [usize; 4] {
        let mut c = [0; 4];
        for s in &self.samples {
            c[s.family().index()] += 1;
        }
        c
    }

    /// Stratified split: `train_fraction` of each class goes to training,
    /// the rest to test, shuffled deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `(0, 1)`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> Split {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for family in Family::ALL {
            let mut idx: Vec<usize> = (0..self.samples.len())
                .filter(|&i| self.samples[i].family() == family)
                .collect();
            idx.shuffle(&mut rng);
            let cut = ((idx.len() as f64) * train_fraction).round() as usize;
            train.extend_from_slice(&idx[..cut]);
            test.extend_from_slice(&idx[cut..]);
        }
        train.sort_unstable();
        test.sort_unstable();
        Split { train, test }
    }

    /// Samples of a class within an index set.
    pub fn of_class<'a>(&'a self, indices: &'a [usize], family: Family) -> Vec<&'a Sample> {
        indices
            .iter()
            .map(|&i| &self.samples[i])
            .filter(|s| s.family() == family)
            .collect()
    }

    /// Min / median / max node count of a class's samples (the paper's
    /// Small / Medium / Large GEA target sizes), `None` if the class is
    /// empty.
    pub fn size_quantiles(&self, family: Family) -> Option<(usize, usize, usize)> {
        let mut sizes: Vec<usize> = self
            .samples
            .iter()
            .filter(|s| s.family() == family)
            .map(|s| s.graph().node_count())
            .collect();
        if sizes.is_empty() {
            return None;
        }
        sizes.sort_unstable();
        Some((
            sizes[0],
            sizes[sizes.len() / 2],
            *sizes.last().expect("non-empty"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        Corpus::generate(&CorpusConfig {
            counts: [12, 20, 12, 10],
            seed: 5,
            av_noise: true,
            lineages: 4,
        })
    }

    #[test]
    fn generate_honors_counts() {
        let c = tiny();
        assert_eq!(c.class_counts(), [12, 20, 12, 10]);
        assert_eq!(c.len(), 54);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.samples()[0].binary(), b.samples()[0].binary());
        assert_eq!(a.samples()[31].name(), b.samples()[31].name());
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let c = tiny();
        let split = c.split(0.8, 1);
        assert_eq!(split.train.len() + split.test.len(), c.len());
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), c.len(), "overlap between train and test");
        // Per class, test gets ~20%.
        for f in Family::ALL {
            let n_test = c.of_class(&split.test, f).len();
            let n_total = c.class_counts()[f.index()];
            let expect = (n_total as f64 * 0.2).round() as usize;
            assert!(
                (n_test as isize - expect as isize).abs() <= 1,
                "{f}: test {n_test}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn split_changes_with_seed_but_not_draw() {
        let c = tiny();
        assert_eq!(c.split(0.8, 9), c.split(0.8, 9));
        assert_ne!(c.split(0.8, 9), c.split(0.8, 10));
    }

    #[test]
    fn av_labels_mostly_match_truth() {
        let c = tiny();
        let agree = c
            .samples()
            .iter()
            .filter(|s| s.av_label() == s.family())
            .count();
        assert!(agree as f64 / c.len() as f64 > 0.9);
    }

    #[test]
    fn size_quantiles_are_ordered() {
        let c = tiny();
        for f in Family::ALL {
            let (lo, med, hi) = c.size_quantiles(f).expect("class present");
            assert!(lo <= med && med <= hi);
        }
    }

    #[test]
    fn paper_config_matches_documented_counts() {
        let cfg = CorpusConfig::paper(0);
        assert_eq!(cfg.counts, [3000, 11085, 2365, 260]);
        assert_eq!(cfg.total(), 16710);
    }

    #[test]
    fn scaled_config_keeps_minimums() {
        let cfg = CorpusConfig::scaled(0.0001, 0);
        assert!(cfg.counts.iter().all(|&c| c >= 10));
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        let c = tiny();
        let _ = c.split(1.0, 0);
    }

    #[test]
    fn sample_cfg_matches_cached_graph() {
        let c = tiny();
        let s = &c.samples()[0];
        assert_eq!(&s.cfg().unwrap(), s.graph());
    }
}
