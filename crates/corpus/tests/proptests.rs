//! Property-based tests: the assembler/disassembler round trip and the
//! generator's structural guarantees.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use soteria_corpus::{asm, disasm, motifs, Binary, Family, SampleGenerator};

proptest! {
    /// Any structured graph the motif grammar can produce must survive the
    /// assemble -> lift round trip exactly.
    #[test]
    fn structured_graphs_round_trip(seed in 0u64..500, target in 3usize..120,
                                    fam in 0usize..4) {
        let family = Family::from_index(fam);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = motifs::grow(&mut rng, &family.profile(), target);
        let lowered = asm::assemble(&cfg);
        let lifted = disasm::lift(&lowered.binary).expect("lift");
        prop_assert_eq!(lifted.cfg, lowered.laid_out);
        prop_assert_eq!(lifted.dead_block_count, 0);
        prop_assert!(lifted.data_ranges.is_empty());
    }

    /// Appending trailing junk never changes the lifted graph.
    #[test]
    fn trailing_junk_is_invisible(seed in 0u64..200, junk in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut gen = SampleGenerator::new(seed);
        let sample = gen.generate(Family::Gafgyt);
        let clean = disasm::lift(sample.binary()).expect("lift clean");

        let mut bytes = sample.binary().to_bytes();
        bytes.extend_from_slice(&junk);
        let dirty_bin = Binary::parse(&bytes).expect("still parses");
        let dirty = disasm::lift(&dirty_bin).expect("lift dirty");
        prop_assert_eq!(clean.cfg, dirty.cfg);
    }

    /// Dead-code injection grows the full graph but never the reachable
    /// view.
    #[test]
    fn dead_code_never_reaches_features(seed in 0u64..200, blocks in 1usize..6) {
        let mut gen = SampleGenerator::new(seed);
        let sample = gen.generate(Family::Mirai);
        let mut binary = sample.binary().clone();
        let base = binary.code().len() as u32;
        binary.append_dead_code(&asm::dead_fragment(base, blocks));

        let lifted = disasm::lift(&binary).expect("lift");
        prop_assert_eq!(lifted.dead_block_count, blocks);
        prop_assert_eq!(
            lifted.reachable_cfg().node_count(),
            sample.graph().node_count()
        );
    }

    /// The generator's samples always have levels for every node (fully
    /// reachable) and at least one exit block.
    #[test]
    fn generated_samples_are_well_formed(seed in 0u64..300, fam in 0usize..4) {
        let mut gen = SampleGenerator::new(seed);
        let s = gen.generate(Family::from_index(fam));
        let g = s.graph();
        prop_assert!(g.levels().iter().all(|l| l.is_some()));
        prop_assert!(!g.exits().is_empty());
        let p = Family::from_index(fam).profile();
        prop_assert!(g.node_count() >= p.min_nodes.min(3));
    }

    /// Structured motif growth always produces *reducible* graphs (all
    /// loops natural) — the property that makes the synthetic corpus look
    /// like compiler output.
    #[test]
    fn generated_graphs_are_reducible(seed in 0u64..200, fam in 0usize..4) {
        let mut gen = SampleGenerator::new(seed);
        let s = gen.generate(Family::from_index(fam));
        prop_assert!(soteria_cfg::dominators::is_reducible(s.graph()));
    }

    /// Binary serialization round-trips byte-for-byte.
    #[test]
    fn binary_bytes_round_trip(seed in 0u64..200) {
        let mut gen = SampleGenerator::new(seed);
        let s = gen.generate(Family::Tsunami);
        let parsed = Binary::parse(&s.binary().to_bytes()).expect("parse");
        prop_assert_eq!(&parsed, s.binary());
    }
}
