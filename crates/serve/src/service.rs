//! The concurrent screening service.
//!
//! # Architecture
//!
//! ```text
//!  submit(bytes) ──cache hit──────────────────────────────▶ Ticket(ready)
//!       │ miss
//!       ▼
//!  bounded queue ──▶ worker pool ──▶ batcher ──▶ verdict ──▶ Ticket(wait)
//!  (try_send:        parse + lift    collects       │
//!   Full ⇒           + extract,      a window,      └──▶ cache insert
//!   Rejected)        per-sample      one stacked
//!                    isolation       CNN pass
//! ```
//!
//! Workers do the embarrassingly parallel front half (container parsing,
//! lifting, feature extraction) with every fault confined to its sample.
//! A single batcher thread owns the trained [`Soteria`] and screens queued
//! samples together — reconstruction errors from one stacked matrix, both
//! CNNs one forward pass each — so the threaded matmul in `soteria-nn`
//! amortizes across concurrent requests.
//!
//! # Determinism
//!
//! Each request's walk seed is [`request_seed`]`(service_seed, bytes)` — a
//! pure function of the submitted content. Combined with the
//! row-independence of every inference stage, this makes the service's
//! verdict for given bytes *bit-identical* regardless of worker count,
//! batch window, arrival order, or whether the answer came from the cache.
//!
//! # Overload behavior
//!
//! Submissions that miss the cache pass through the
//! [`AdmissionController`](crate::admission::AdmissionController):
//! per-client token buckets, pressure-tiered shedding (full pipeline /
//! AE-only brownout / typed reject with `retry_after`), and a circuit
//! breaker fed by extraction faults. Each admitted request carries a
//! [`Deadline`] checked cooperatively at every stage boundary; expired
//! requests resolve to `Degraded(DeadlineExceeded)` instead of burning
//! further work. Load-derived outcomes (deadline, overload) never enter
//! the verdict cache, so accepted verdicts stay a pure function of
//! content. The default [`AdmissionConfig`] disables all of it.
//!
//! # Observability
//!
//! Every request unconditionally feeds per-stage latency histograms
//! (`serve.stage.{queue_wait, extract, batch_wait, infer, total,
//! cache_hit}`) and live gauges (`serve.queue.depth`, `serve.inflight`) —
//! all lock-free atomics. Shedding feeds `serve.shed.<reason>` counters,
//! deadline expiries `serve.deadline.expired`, the brownout tier
//! `serve.brownout.ae_only`, and the breaker a `serve.breaker.state`
//! gauge plus a `serve.breaker.trips` counter. When
//! [`ServeConfig::trace_sampling`] admits a request (a pure function of
//! its content key and the service seed, see
//! [`soteria_telemetry::sample_decision`]), a [`TraceBuilder`] travels
//! with the job through the pipeline and publishes a parent/child stage
//! timeline at verdict time. None of it feeds back into computation:
//! tracing on or off, verdicts are bit-identical.
//!
//! # Hot model swap
//!
//! [`ScreeningService::swap`] replaces the served model without dropping
//! a single request. Each swap advances a monotonically increasing
//! *epoch*: workers stamp every job with the epoch of the extractor they
//! used, the swap command travels through the same channel as the jobs,
//! and the batcher keeps every epoch's model alive until shutdown so
//! stragglers extracted under an old epoch are still screened by *their*
//! model. Batches never mix epochs, so every verdict during a swap is
//! bit-identical to either the old model's sequential answer or the new
//! model's — never a hybrid. The verdict cache is cleared at the swap
//! point and inserts are epoch-guarded, so a stale verdict can never
//! outlive the model that produced it.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision, RejectReason};
use crate::cache::{fnv1a64, CacheStats, VerdictCache};
use crate::deadline::Deadline;
use soteria::{Backend, Soteria, SoteriaState, StateError, Verdict};
use soteria_features::{FeatureExtractor, SampleFeatures};
use soteria_resilience::{FaultKind, ResourceGuards};
use soteria_telemetry::TraceBuilder;
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The walk seed the service uses for submitted content: the content hash
/// folded with the service seed. Deriving the seed from the bytes (rather
/// than from arrival order) is what makes verdicts a pure function of
/// content — and therefore cacheable and reproducible under any
/// concurrency.
pub fn request_seed(service_seed: u64, bytes: &[u8]) -> u64 {
    fnv1a64(bytes) ^ service_seed
}

/// Tuning knobs for [`ScreeningService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Extraction worker threads (minimum 1).
    pub workers: usize,
    /// Bounded submit-queue depth; a full queue rejects new work
    /// ([`Submit::Rejected`]) instead of buffering unboundedly.
    pub queue_capacity: usize,
    /// Total verdict-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Verdict-cache shard count.
    pub cache_shards: usize,
    /// How long the batcher waits for stragglers after the first queued
    /// sample of a batch. Zero means "batch only what is already queued" —
    /// still amortizing under load, never adding latency.
    pub batch_window: Duration,
    /// Most samples screened in one stacked pass.
    pub max_batch: usize,
    /// Service seed folded into every request seed.
    pub seed: u64,
    /// Fraction of requests that record a full stage-timeline trace
    /// (0.0 = never, 1.0 = every request). The decision is a pure
    /// function of the request's content key and the service seed, so
    /// the same corpus always samples the same requests. Stage
    /// *histograms* are recorded regardless of this rate.
    pub trace_sampling: f64,
    /// Admission control, deadlines, shedding, and breaker tuning. The
    /// default disables every mechanism (the only rejection is a full
    /// queue), so existing deployments see no behavior change.
    pub admission: AdmissionConfig,
    /// Inference compute backend for the batcher's forward passes.
    /// Requesting [`Backend::Int8`] on a system without calibrated int8
    /// weights falls back to [`Backend::F32`] and records
    /// `serve.backend.int8_fallback` in telemetry.
    pub backend: Backend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            seed: 0,
            trace_sampling: 0.0,
            admission: AdmissionConfig::default(),
            backend: Backend::F32,
        }
    }
}

/// Per-submission options for [`ScreeningService::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// This request's deadline budget; overrides the service-wide
    /// [`AdmissionConfig::default_deadline`]. `None` inherits it.
    pub deadline: Option<Duration>,
    /// Rate-limiting identity. Anonymous submissions (`None`) share one
    /// token bucket.
    pub client: Option<u64>,
}

/// Outcome of [`ScreeningService::submit`].
#[derive(Debug)]
pub enum Submit {
    /// The sample was admitted; the ticket resolves to its verdict.
    Accepted(Ticket),
    /// The sample was turned away before entering the pipeline.
    Rejected {
        /// Why (queue backpressure, rate limit, breaker, shedding, …).
        reason: RejectReason,
        /// How long the caller should wait before retrying, when the
        /// service can estimate it.
        retry_after: Option<Duration>,
    },
}

impl Submit {
    /// Whether the sample was turned away.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Submit::Rejected { .. })
    }

    /// The ticket, if the sample was admitted.
    pub fn into_ticket(self) -> Option<Ticket> {
        match self {
            Submit::Accepted(t) => Some(t),
            Submit::Rejected { .. } => None,
        }
    }
}

/// A claim on one submitted sample's verdict.
#[derive(Debug)]
pub struct Ticket {
    inner: TicketInner,
}

#[derive(Debug)]
enum TicketInner {
    /// Resolved at submit time from the verdict cache.
    Ready(Verdict),
    /// In flight; the pipeline replies on this channel.
    Pending(Receiver<Verdict>),
}

impl Ticket {
    /// Whether the verdict came from the cache (already resolved).
    pub fn is_cached(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }

    /// Blocks until the verdict is available. Every accepted submission
    /// resolves: if the service side dies before replying (it should not —
    /// all per-sample work is fault-isolated), the ticket degrades instead
    /// of hanging or panicking.
    pub fn wait(self) -> Verdict {
        match self.inner {
            TicketInner::Ready(verdict) => verdict,
            TicketInner::Pending(rx) => rx.recv().unwrap_or_else(|_| dropped_verdict()),
        }
    }

    /// Like [`wait`](Ticket::wait) but gives up after `timeout`,
    /// returning the still-pending ticket so the caller can keep waiting
    /// (or record a hang). A cached ticket always resolves immediately.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the verdict did not arrive in time.
    pub fn wait_for(self, timeout: Duration) -> Result<Verdict, Ticket> {
        match self.inner {
            TicketInner::Ready(verdict) => Ok(verdict),
            TicketInner::Pending(rx) => match rx.recv_timeout(timeout) {
                Ok(verdict) => Ok(verdict),
                Err(RecvTimeoutError::Disconnected) => Ok(dropped_verdict()),
                Err(RecvTimeoutError::Timeout) => Err(Ticket {
                    inner: TicketInner::Pending(rx),
                }),
            },
        }
    }
}

/// The degraded verdict a ticket resolves to if the service side dies
/// before replying (it should not — all per-sample work is
/// fault-isolated).
fn dropped_verdict() -> Verdict {
    Verdict::Degraded {
        reason: FaultKind::Panic {
            message: "screening service dropped the request".to_owned(),
        },
    }
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total [`submit`](ScreeningService::submit) calls.
    pub submitted: u64,
    /// Submissions turned away by backpressure.
    pub rejected: u64,
    /// Requests admitted to the pipeline whose verdict has not resolved
    /// yet (cache hits resolve at submit time and never count).
    pub in_flight: u64,
    /// Requests whose deadline expired before a verdict was computed.
    pub deadline_expired: u64,
    /// Requests answered by the AE-only brownout tier.
    pub brownout: u64,
    /// Times the extraction circuit breaker has tripped open.
    pub breaker_trips: u64,
    /// Current model epoch (0 until the first hot swap).
    pub epoch: u64,
    /// Completed [`swap`](ScreeningService::swap) calls.
    pub swaps: u64,
    /// Verdict-cache counters.
    pub cache: CacheStats,
}

/// Which screening tier an admitted job runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobMode {
    /// Detector + classifier (the normal path).
    Full,
    /// Detector only (brownout): bit-identical `Adversarial` verdicts,
    /// `Degraded(Overload)` where the classifier would have run.
    AeOnly,
}

/// Counters shared between the submit side and the pipeline threads.
#[derive(Debug, Default)]
struct SharedCounters {
    deadline_expired: AtomicU64,
    brownout: AtomicU64,
}

/// One queued request.
struct Job {
    bytes: Vec<u8>,
    key: u64,
    seed: u64,
    reply: Sender<Verdict>,
    /// When the request entered the bounded queue (queue-wait start).
    enqueued: Instant,
    deadline: Deadline,
    mode: JobMode,
    /// Stage timeline for sampled requests; travels with the job, so
    /// appending stages never synchronizes.
    trace: Option<TraceBuilder>,
}

/// A request after the worker half: extracted (or faulted) and waiting for
/// the batcher.
struct InferJob {
    key: u64,
    seed: u64,
    reply: Sender<Verdict>,
    features: Result<SampleFeatures, FaultKind>,
    /// When the request entered the queue (for end-to-end latency).
    enqueued: Instant,
    /// When extraction finished (batch-wait start).
    extracted: Instant,
    deadline: Deadline,
    mode: JobMode,
    /// Model epoch of the extractor that produced `features`; the batcher
    /// screens the job with the model of the same epoch, never another.
    epoch: u64,
    trace: Option<TraceBuilder>,
}

/// What travels from the workers (and the swap path) to the batcher.
/// Routing swaps through the same channel as jobs gives them a
/// well-defined position in the stream without a second synchronization
/// primitive.
// The large variant is the hot one: every job is moved through the
// channel exactly once, so boxing it to shrink the rare Swap variant
// would add an allocation per request for nothing.
#[allow(clippy::large_enum_variant)]
enum BatchMsg {
    /// An extracted request awaiting inference.
    Job(InferJob),
    /// Install `model` as the serving model for `epoch` and newer jobs.
    /// Boxed: a trained model is orders of magnitude larger than a job.
    Swap { epoch: u64, model: Box<Soteria> },
}

/// The shared (epoch, extractor) slot workers read per job. The mutex is
/// held only for the copy-out (and, on the swap path, the epoch bump), so
/// it is never contended for longer than two pointer copies.
type ExtractorSlot = Arc<Mutex<(u64, Arc<FeatureExtractor>)>>;

/// A running screening service wrapping one trained [`Soteria`].
///
/// Submissions are admitted through a bounded queue, extracted by a worker
/// pool, screened in micro-batches by a single batcher thread that owns the
/// model, and memoized in a content-addressed verdict cache. Dropping the
/// service (or calling [`shutdown`](ScreeningService::shutdown)) drains
/// every admitted sample before the threads exit.
#[derive(Debug)]
pub struct ScreeningService {
    submit_tx: Option<SyncSender<Job>>,
    /// The service's own sender into the batcher channel, used for swap
    /// commands. Dropped after the workers join so the batcher drains.
    infer_tx: Option<Sender<BatchMsg>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<Soteria>>,
    cache: Arc<VerdictCache>,
    admission: Arc<AdmissionController>,
    shared: Arc<SharedCounters>,
    slot: ExtractorSlot,
    backend: Backend,
    seed: u64,
    trace_sampling: f64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    swaps: AtomicU64,
    in_flight: Arc<AtomicU64>,
    started: Instant,
}

/// Index of the root `request` stage in every service trace (it is
/// always the first stage the builder opens).
const TRACE_ROOT: u32 = 0;

impl ScreeningService {
    /// Starts the worker pool and batcher around a trained system.
    pub fn start(soteria: Soteria, config: &ServeConfig) -> Self {
        // Spin up the shared compute pool before the first request so the
        // batcher's forward passes never pay thread-spawn latency.
        let _ = soteria_nn::backend::warm();
        let mut soteria = soteria;
        if soteria.set_backend(config.backend).is_err() {
            soteria_telemetry::counter("serve.backend.int8_fallback", 1);
            soteria
                .set_backend(Backend::F32)
                .expect("f32 backend always available");
        }
        let cache = Arc::new(VerdictCache::new(
            config.cache_capacity,
            config.cache_shards.max(1),
        ));
        let (submit_tx, submit_rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let submit_rx = Arc::new(Mutex::new(submit_rx));
        let (infer_tx, infer_rx) = mpsc::channel::<BatchMsg>();

        let slot: ExtractorSlot = Arc::new(Mutex::new((0, Arc::new(soteria.extractor().clone()))));
        let guards = soteria.config().guards.clone();
        // Worker and batcher threads inherit the registry that is active
        // on the *starting* thread, so a service started under a scoped
        // registry (tests, benches) records there, not globally.
        let telemetry = soteria_telemetry::RegistryHandle::current();
        let in_flight = Arc::new(AtomicU64::new(0));
        let admission = Arc::new(AdmissionController::new(
            config.admission.clone(),
            config.queue_capacity.max(1),
            config.workers.max(1),
        ));
        let shared = Arc::new(SharedCounters::default());
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let submit_rx = Arc::clone(&submit_rx);
                let infer_tx = infer_tx.clone();
                let slot = Arc::clone(&slot);
                let guards = guards.clone();
                let telemetry = telemetry.clone();
                let admission = Arc::clone(&admission);
                let shared = Arc::clone(&shared);
                let in_flight = Arc::clone(&in_flight);
                std::thread::Builder::new()
                    .name(format!("soteria-serve-worker-{i}"))
                    .spawn(move || {
                        let _telemetry = telemetry.attach();
                        worker_loop(
                            &submit_rx, &infer_tx, &slot, &guards, &admission, &shared, &in_flight,
                        )
                    })
                    .expect("spawn screening worker")
            })
            .collect();

        let batch_window = config.batch_window;
        let max_batch = config.max_batch.max(1);
        let batcher_cache = Arc::clone(&cache);
        let batcher_in_flight = Arc::clone(&in_flight);
        let batcher_telemetry = telemetry.clone();
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("soteria-serve-batcher".to_owned())
            .spawn(move || {
                let _telemetry = batcher_telemetry.attach();
                batcher_loop(
                    soteria,
                    &infer_rx,
                    batch_window,
                    max_batch,
                    &batcher_cache,
                    &batcher_in_flight,
                    &batcher_shared,
                )
            })
            .expect("spawn screening batcher");

        ScreeningService {
            submit_tx: Some(submit_tx),
            infer_tx: Some(infer_tx),
            workers,
            batcher: Some(batcher),
            cache,
            admission,
            shared,
            slot,
            backend: config.backend,
            seed: config.seed,
            trace_sampling: config.trace_sampling,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            in_flight,
            started: Instant::now(),
        }
    }

    /// Atomically replaces the served model with `soteria` without
    /// dropping a request, returning the new model epoch.
    ///
    /// In-flight requests extracted under the old model are still
    /// screened by it (bit-identical to its sequential answers); requests
    /// extracted after this call returns are screened by the new model.
    /// The verdict cache is cleared so no old-model verdict outlives the
    /// swap, and batches never mix the two models.
    ///
    /// If the new model cannot serve the configured backend (e.g. int8
    /// without calibrated weights) it falls back to [`Backend::F32`] and
    /// records `serve.backend.int8_fallback`, exactly like
    /// [`start`](ScreeningService::start).
    pub fn swap(&self, soteria: Soteria) -> u64 {
        let mut soteria = soteria;
        if soteria.set_backend(self.backend).is_err() {
            soteria_telemetry::counter("serve.backend.int8_fallback", 1);
            soteria
                .set_backend(Backend::F32)
                .expect("f32 backend always available");
        }
        // The slot mutex serializes concurrent swaps: the epoch bump, the
        // extractor publish, and the command send happen as one unit, so
        // epochs observed by workers and the batcher are both monotone.
        let epoch = {
            let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            let epoch = slot.0 + 1;
            *slot = (epoch, Arc::new(soteria.extractor().clone()));
            let send = self
                .infer_tx
                .as_ref()
                .expect("swap on a running service")
                .send(BatchMsg::Swap {
                    epoch,
                    model: Box::new(soteria),
                });
            debug_assert!(send.is_ok(), "batcher outlives the service handle");
            epoch
        };
        // Clear promptly so submit-side lookups stop answering with the
        // old model; the batcher clears again when it installs the new
        // model, catching any old-epoch insert that raced this clear.
        self.cache.clear();
        self.swaps.fetch_add(1, Ordering::Relaxed);
        soteria_telemetry::counter("serve.swap.requested", 1);
        epoch
    }

    /// [`swap`](ScreeningService::swap) from a state file on disk — a v3
    /// binary artifact or a v2 JSON envelope, sniffed automatically.
    ///
    /// # Errors
    ///
    /// Returns the [`StateError`] diagnosing an unreadable or corrupt
    /// file; the served model is untouched on error.
    pub fn swap_from_path(&self, path: &Path) -> Result<u64, StateError> {
        let state = SoteriaState::load_from_path(path)?;
        Ok(self.swap(Soteria::from_state(state)))
    }

    /// Time elapsed since [`start`](ScreeningService::start) returned.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Submits a binary for screening with default [`SubmitOptions`].
    /// Identical content always produces an identical verdict, so the
    /// content-addressed cache is consulted first; on a miss the sample
    /// passes admission control and enters the bounded queue. A full
    /// queue (or any shedding tier) pushes back with [`Submit::Rejected`].
    pub fn submit(&self, bytes: Vec<u8>) -> Submit {
        self.submit_with(bytes, SubmitOptions::default())
    }

    /// [`submit`](ScreeningService::submit) with a per-request deadline
    /// and rate-limiting client identity.
    pub fn submit_with(&self, bytes: Vec<u8>, options: SubmitOptions) -> Submit {
        let submit_start = Instant::now();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        soteria_telemetry::counter("serve.submitted", 1);
        let key = fnv1a64(&bytes);
        let sampled = soteria_telemetry::sample_decision(key, self.seed, self.trace_sampling);
        if let Some(verdict) = self.cache.get(key) {
            soteria_telemetry::record(
                "serve.stage.cache_hit",
                submit_start.elapsed().as_secs_f64() * 1e3,
            );
            if sampled {
                let mut trace = TraceBuilder::new(key);
                let root = trace.begin_at("request", None, submit_start);
                trace.stage("cache_hit", Some(root), submit_start, Instant::now());
                trace.end(root);
                soteria_telemetry::publish_trace(trace.finish());
            }
            return Submit::Accepted(Ticket {
                inner: TicketInner::Ready(verdict),
            });
        }
        let deadline = Deadline::from_budget(
            submit_start,
            options.deadline.or(self.admission.default_deadline()),
        );
        let mode = match self.admission.decide(
            submit_start,
            options.client,
            deadline.remaining(submit_start),
        ) {
            AdmissionDecision::Accept => JobMode::Full,
            AdmissionDecision::AeOnly => JobMode::AeOnly,
            AdmissionDecision::Reject {
                reason,
                retry_after,
            } => return self.reject(reason, retry_after),
        };
        let trace = sampled.then(|| {
            let mut trace = TraceBuilder::new(key);
            trace.begin_at("request", None, submit_start); // TRACE_ROOT
            trace.stage("enqueue", Some(TRACE_ROOT), submit_start, Instant::now());
            trace
        });
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            seed: key ^ self.seed,
            bytes,
            key,
            reply: reply_tx,
            enqueued: Instant::now(),
            deadline,
            mode,
            trace,
        };
        let submit_tx = self
            .submit_tx
            .as_ref()
            .expect("submit on a running service");
        // Count the job in *before* the send: a worker may dequeue it the
        // instant `try_send` returns, and its decrements must never land
        // on gauges that have not seen the increment (the transiently
        // negative `serve.queue.depth` bug). A rejected send rolls all
        // four back; the job never entered the queue, so no worker can
        // have consumed the increments.
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.admission.depth_add(1);
        soteria_telemetry::gauge_add("serve.queue.depth", 1);
        soteria_telemetry::gauge_add("serve.inflight", 1);
        match submit_tx.try_send(job) {
            Ok(()) => Submit::Accepted(Ticket {
                inner: TicketInner::Pending(reply_rx),
            }),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                self.admission.depth_add(-1);
                soteria_telemetry::gauge_add("serve.queue.depth", -1);
                soteria_telemetry::gauge_add("serve.inflight", -1);
                self.reject(RejectReason::QueueFull, None)
            }
        }
    }

    /// Accounts one rejection and builds its [`Submit`] value.
    fn reject(&self, reason: RejectReason, retry_after: Option<Duration>) -> Submit {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        soteria_telemetry::counter("serve.submit.rejected", 1);
        soteria_telemetry::counter(&format!("serve.shed.{}", reason.slug()), 1);
        Submit::Rejected {
            reason,
            retry_after,
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            deadline_expired: self.shared.deadline_expired.load(Ordering::Relaxed),
            brownout: self.shared.brownout.load(Ordering::Relaxed),
            breaker_trips: self.admission.breaker_trips(),
            epoch: self.epoch(),
            swaps: self.swaps.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// The current model epoch: 0 at start, +1 per hot swap.
    pub fn epoch(&self) -> u64 {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).0
    }

    /// The service seed (for deriving [`request_seed`] externally).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drains every admitted sample, stops the threads, and hands the
    /// current model back (the newest epoch, if the service was hot
    /// swapped).
    ///
    /// # Panics
    ///
    /// Panics if the batcher thread itself died (per-sample faults never
    /// kill it; this would indicate a bug in the batching scaffolding).
    pub fn shutdown(mut self) -> Soteria {
        self.stop_intake();
        let batcher = self.batcher.take().expect("batcher still attached");
        match batcher.join() {
            Ok(soteria) => soteria,
            Err(_) => panic!("screening batcher thread panicked"),
        }
    }

    /// Closes the queue and joins the workers (queued jobs drain first),
    /// then drops the service's own batcher sender so the batcher's
    /// channel closes once the workers' clones are gone too.
    fn stop_intake(&mut self) {
        drop(self.submit_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        drop(self.infer_tx.take());
    }
}

impl Drop for ScreeningService {
    fn drop(&mut self) {
        self.stop_intake();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

/// Worker half: pull a job, parse + lift + extract with per-sample fault
/// isolation, pass the result to the batcher. Expired jobs resolve
/// immediately (deadline degrade) without paying for extraction; fault
/// outcomes feed the admission breaker.
fn worker_loop(
    submit_rx: &Arc<Mutex<Receiver<Job>>>,
    infer_tx: &Sender<BatchMsg>,
    slot: &ExtractorSlot,
    guards: &ResourceGuards,
    admission: &AdmissionController,
    shared: &SharedCounters,
    in_flight: &AtomicU64,
) {
    loop {
        // Hold the lock only for the dequeue, never while working.
        let job = {
            let rx = submit_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(mut job) = job else { break };
        let dequeued = Instant::now();
        admission.depth_add(-1);
        soteria_telemetry::gauge_add("serve.queue.depth", -1);
        soteria_telemetry::record(
            "serve.stage.queue_wait",
            dequeued
                .saturating_duration_since(job.enqueued)
                .as_secs_f64()
                * 1e3,
        );
        if let Some(trace) = job.trace.as_mut() {
            trace.stage("queue_wait", Some(TRACE_ROOT), job.enqueued, dequeued);
        }
        if job.deadline.expired(dequeued) {
            resolve_expired(job, dequeued, shared, in_flight);
            continue;
        }
        // Snapshot the current (epoch, extractor) pair: the job is
        // extracted by this extractor and must be screened by this
        // epoch's model, even if a swap lands while extraction runs.
        let (epoch, extractor) = {
            let slot = slot.lock().unwrap_or_else(|e| e.into_inner());
            (slot.0, Arc::clone(&slot.1))
        };
        let features = extract_features(&extractor, guards, &job.bytes, job.seed);
        match &features {
            Ok(_) => admission.record_success(dequeued),
            Err(fault) => admission.record_fault(fault, Instant::now()),
        }
        let extracted = Instant::now();
        admission
            .observe_extract_ms(extracted.saturating_duration_since(dequeued).as_secs_f64() * 1e3);
        soteria_telemetry::record(
            "serve.stage.extract",
            extracted.saturating_duration_since(dequeued).as_secs_f64() * 1e3,
        );
        if let Some(trace) = job.trace.as_mut() {
            trace.stage("extract", Some(TRACE_ROOT), dequeued, extracted);
        }
        let handoff = infer_tx.send(BatchMsg::Job(InferJob {
            key: job.key,
            seed: job.seed,
            reply: job.reply,
            features,
            enqueued: job.enqueued,
            extracted,
            deadline: job.deadline,
            mode: job.mode,
            epoch,
            trace: job.trace,
        }));
        if handoff.is_err() {
            // Batcher gone; the job's reply sender just dropped, so its
            // ticket degrades rather than hangs.
            break;
        }
    }
}

/// Resolves a job whose deadline expired before extraction: one terminal
/// `Degraded(DeadlineExceeded)` outcome, full accounting, no cache entry
/// (the outcome is timing-derived, not content-derived).
fn resolve_expired(job: Job, now: Instant, shared: &SharedCounters, in_flight: &AtomicU64) {
    shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
    soteria_telemetry::counter("serve.deadline.expired", 1);
    soteria_telemetry::counter("serve.verdicts.degraded", 1);
    soteria_telemetry::record(
        "serve.stage.total",
        now.saturating_duration_since(job.enqueued).as_secs_f64() * 1e3,
    );
    if let Some(mut trace) = job.trace {
        trace.stage("deadline_expired", Some(TRACE_ROOT), job.enqueued, now);
        trace.end_at(TRACE_ROOT, now);
        soteria_telemetry::publish_trace(trace.finish());
    }
    in_flight.fetch_sub(1, Ordering::Relaxed);
    soteria_telemetry::gauge_add("serve.inflight", -1);
    let _ = job.reply.send(Verdict::Degraded {
        reason: job.deadline.fault(now),
    });
}

/// Parse → lift → extract with every failure confined to the sample —
/// exactly the front half of `Soteria::screen_binary`, so verdicts stay
/// bit-identical to the sequential path.
fn extract_features(
    extractor: &FeatureExtractor,
    guards: &ResourceGuards,
    bytes: &[u8],
    seed: u64,
) -> Result<SampleFeatures, FaultKind> {
    let lifted = soteria_resilience::isolate(AssertUnwindSafe(|| {
        // Serving-path chaos gate: lets the overload harness inject
        // worker faults (and exercise the breaker) deterministically per
        // content seed. A no-op unless chaos is armed.
        soteria_resilience::chaos_point("serve.extract", seed);
        let binary = soteria_corpus::Binary::parse(bytes).map_err(FaultKind::from)?;
        let lifted = soteria_corpus::disasm::lift(&binary).map_err(FaultKind::from)?;
        Ok(lifted.cfg)
    }));
    match lifted {
        Ok(Ok(cfg)) => extractor.try_extract(&cfg, seed, guards),
        Ok(Err(fault)) | Err(fault) => Err(fault),
    }
}

/// The batcher's view of the model fleet: one live model per epoch seen
/// so far, plus jobs stamped with an epoch whose model has not arrived
/// yet (a worker published the new extractor before the swap command
/// reached this thread — the command is in flight and will mature them).
struct EpochModels {
    /// Every epoch's model, kept alive until shutdown so a straggler
    /// extracted under an old epoch is screened by *its* model. Bounded
    /// by the number of swaps, which are explicit operator actions.
    models: Vec<(u64, Soteria)>,
    /// Highest epoch with an installed model.
    latest: u64,
    /// Jobs waiting for their epoch's model to arrive.
    premature: Vec<InferJob>,
}

impl EpochModels {
    /// Routes one channel message: jobs with a live epoch go to `ready`
    /// for batching, future-epoch jobs wait, and a swap installs its
    /// model, clears the cache, and matures any waiting jobs.
    fn accept(&mut self, msg: BatchMsg, ready: &mut VecDeque<InferJob>, cache: &VerdictCache) {
        match msg {
            BatchMsg::Job(job) => {
                if job.epoch <= self.latest {
                    ready.push_back(job);
                } else {
                    self.premature.push(job);
                }
            }
            BatchMsg::Swap { epoch, model } => {
                self.models.push((epoch, *model));
                self.latest = self.latest.max(epoch);
                // Drop every memoized verdict: entries inserted by an
                // old-epoch batch that raced the submit-side clear die
                // here, and the epoch guard in `process_batch` keeps any
                // still-running old batch from re-inserting.
                cache.clear();
                soteria_telemetry::counter("serve.swap.applied", 1);
                let latest = self.latest;
                let (matured, waiting): (Vec<_>, Vec<_>) = std::mem::take(&mut self.premature)
                    .into_iter()
                    .partition(|j| j.epoch <= latest);
                self.premature = waiting;
                ready.extend(matured);
            }
        }
    }

    /// The model for `epoch`, which is guaranteed live for any job that
    /// reached the ready queue.
    fn model_mut(&mut self, epoch: u64) -> &mut Soteria {
        self.models
            .iter_mut()
            .find(|(e, _)| *e == epoch)
            .map(|(_, m)| m)
            .expect("ready jobs only carry live epochs")
    }

    /// Hands back the newest model at shutdown.
    fn into_latest(self) -> Soteria {
        self.models
            .into_iter()
            .max_by_key(|(e, _)| *e)
            .map(|(_, m)| m)
            .expect("at least the starting model")
    }
}

/// Batcher half: own the model fleet, collect a latency-bounded window of
/// extracted samples, screen them per epoch in stacked passes, reply and
/// memoize. Each collected window is partitioned by model epoch — a batch
/// never mixes two models' samples.
fn batcher_loop(
    soteria: Soteria,
    infer_rx: &Receiver<BatchMsg>,
    window: Duration,
    max_batch: usize,
    cache: &VerdictCache,
    in_flight: &AtomicU64,
    shared: &SharedCounters,
) -> Soteria {
    let mut fleet = EpochModels {
        models: vec![(0, soteria)],
        latest: 0,
        premature: Vec::new(),
    };
    let mut ready: VecDeque<InferJob> = VecDeque::new();
    let mut open = true;
    loop {
        // Block for the batch's first sample; queue closed and ready
        // queue empty means drained.
        while ready.is_empty() {
            if !open {
                break;
            }
            match infer_rx.recv() {
                Ok(msg) => fleet.accept(msg, &mut ready, cache),
                Err(_) => open = false,
            }
        }
        let Some(first) = ready.pop_front() else {
            break;
        };
        let mut jobs = vec![first];
        // Whatever is already queued batches for free — amortization with
        // zero added latency, even with a zero window.
        while jobs.len() < max_batch {
            if let Some(job) = ready.pop_front() {
                jobs.push(job);
                continue;
            }
            match infer_rx.try_recv() {
                Ok(msg) => fleet.accept(msg, &mut ready, cache),
                Err(_) => break,
            }
        }
        // Then wait out the remaining window for stragglers.
        if open && !window.is_zero() && jobs.len() < max_batch {
            let deadline = Instant::now() + window;
            loop {
                if jobs.len() >= max_batch {
                    break;
                }
                if let Some(job) = ready.pop_front() {
                    jobs.push(job);
                    continue;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match infer_rx.recv_timeout(deadline - now) {
                    Ok(msg) => fleet.accept(msg, &mut ready, cache),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
        }
        // Partition by epoch so every stacked pass runs one model. The
        // BTreeMap keeps epoch order; arrival order within an epoch is
        // preserved (irrelevant to verdicts, kind to latency fairness).
        let mut by_epoch: BTreeMap<u64, Vec<InferJob>> = BTreeMap::new();
        for job in jobs {
            by_epoch.entry(job.epoch).or_default().push(job);
        }
        for (epoch, group) in by_epoch {
            let current = epoch == fleet.latest;
            process_batch(
                fleet.model_mut(epoch),
                group,
                cache,
                in_flight,
                shared,
                current,
            );
        }
    }
    // Defensive: a premature job whose swap command never arrived cannot
    // happen while the service holds its sender, but degrade rather than
    // hang if the invariant is ever broken.
    for job in fleet.premature.drain(..) {
        in_flight.fetch_sub(1, Ordering::Relaxed);
        soteria_telemetry::gauge_add("serve.inflight", -1);
        let _ = job.reply.send(dropped_verdict());
    }
    fleet.into_latest()
}

/// One batched request awaiting its verdict inside [`process_batch`].
struct PendingReply {
    key: u64,
    reply: Sender<Verdict>,
    verdict: Option<Verdict>,
    enqueued: Instant,
    trace: Option<TraceBuilder>,
    /// Whether the request went through inference (degraded ones skip it).
    inferred: bool,
}

/// Screens one collected batch (all one model epoch) and resolves its
/// tickets. Full-tier jobs run detector + classifier; brownout (AE-only)
/// jobs run the detector alone; jobs whose deadline expired in the queue
/// degrade uninferred. `current` is whether this epoch is the newest one:
/// verdicts from superseded models still answer their tickets but must
/// not enter the cache, where they would outlive their model.
fn process_batch(
    soteria: &mut Soteria,
    jobs: Vec<InferJob>,
    cache: &VerdictCache,
    in_flight: &AtomicU64,
    shared: &SharedCounters,
    current: bool,
) {
    let batch_start = Instant::now();
    let _span = soteria_telemetry::span("serve.batch");
    soteria_telemetry::record("serve.batch.size", jobs.len() as f64);
    let mut pending: Vec<PendingReply> = Vec::with_capacity(jobs.len());
    let mut items: Vec<(SampleFeatures, u64)> = Vec::new();
    let mut item_slots: Vec<usize> = Vec::new();
    let mut ae_items: Vec<(SampleFeatures, u64)> = Vec::new();
    let mut ae_slots: Vec<usize> = Vec::new();
    for mut job in jobs {
        soteria_telemetry::record(
            "serve.stage.batch_wait",
            batch_start
                .saturating_duration_since(job.extracted)
                .as_secs_f64()
                * 1e3,
        );
        if let Some(trace) = job.trace.as_mut() {
            trace.stage("batch_wait", Some(TRACE_ROOT), job.extracted, batch_start);
        }
        let (verdict, inferred) = match job.features {
            Ok(_) if job.deadline.expired(batch_start) => {
                shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::counter("serve.deadline.expired", 1);
                soteria_telemetry::counter("serve.verdicts.degraded", 1);
                (
                    Some(Verdict::Degraded {
                        reason: job.deadline.fault(batch_start),
                    }),
                    false,
                )
            }
            Ok(features) => {
                match job.mode {
                    JobMode::Full => {
                        item_slots.push(pending.len());
                        items.push((features, job.seed));
                    }
                    JobMode::AeOnly => {
                        shared.brownout.fetch_add(1, Ordering::Relaxed);
                        soteria_telemetry::counter("serve.brownout.ae_only", 1);
                        ae_slots.push(pending.len());
                        ae_items.push((features, job.seed));
                    }
                }
                (None, true)
            }
            Err(fault) => {
                soteria_telemetry::counter("serve.verdicts.degraded", 1);
                (Some(Verdict::Degraded { reason: fault }), false)
            }
        };
        pending.push(PendingReply {
            key: job.key,
            reply: job.reply,
            verdict,
            enqueued: job.enqueued,
            trace: job.trace,
            inferred,
        });
    }
    let infer_start = Instant::now();
    let screened = soteria.screen_features_batch(&items);
    let ae_screened = soteria.screen_features_batch_ae_only(&ae_items);
    let infer_end = Instant::now();
    let infer_ms = infer_end
        .saturating_duration_since(infer_start)
        .as_secs_f64()
        * 1e3;
    for (slot, verdict) in item_slots.into_iter().zip(screened) {
        pending[slot].verdict = Some(verdict);
    }
    for (slot, verdict) in ae_slots.into_iter().zip(ae_screened) {
        pending[slot].verdict = Some(verdict);
    }
    for p in pending {
        let verdict = p.verdict.expect("every batched job resolved");
        if p.inferred {
            // Attribute the stacked pass to each request it served: the
            // whole batch waited on the same forward passes.
            soteria_telemetry::record("serve.stage.infer", infer_ms);
        }
        // Memoize only content-derived outcomes: a verdict (or fault)
        // that is a pure function of the bytes answers future identical
        // submissions. Load/timing degrades (deadline, overload) must
        // not — the same bytes may succeed once pressure passes. And
        // only the newest epoch inserts: a superseded model's verdict in
        // the cache would survive the swap that retired it.
        let cacheable = current
            && match &verdict {
                Verdict::Degraded { reason } => reason.content_derived(),
                _ => true,
            };
        if cacheable {
            cache.insert(p.key, verdict.clone());
        }
        let resolve_end = Instant::now();
        soteria_telemetry::record(
            "serve.stage.total",
            resolve_end
                .saturating_duration_since(p.enqueued)
                .as_secs_f64()
                * 1e3,
        );
        if let Some(mut trace) = p.trace {
            if p.inferred {
                trace.stage("infer", Some(TRACE_ROOT), infer_start, infer_end);
            }
            trace.stage("resolve", Some(TRACE_ROOT), infer_end, resolve_end);
            trace.end_at(TRACE_ROOT, resolve_end);
            soteria_telemetry::publish_trace(trace.finish());
        }
        // Decrement before replying so a submitter that wakes on the reply
        // never reads a stale in-flight count. Every batched job was
        // counted at submit time, so this never underflows.
        in_flight.fetch_sub(1, Ordering::Relaxed);
        soteria_telemetry::gauge_add("serve.inflight", -1);
        // A dropped receiver just means the submitter stopped waiting.
        let _ = p.reply.send(verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria::SoteriaConfig;
    use soteria_corpus::{Corpus, CorpusConfig};

    fn trained() -> (Soteria, Vec<Vec<u8>>) {
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [8, 8, 8, 8],
            seed: 77,
            av_noise: false,
            lineages: 3,
        });
        let split = corpus.split(0.75, 1);
        let soteria =
            Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 5).expect("train");
        let binaries = split
            .test
            .iter()
            .map(|&i| corpus.samples()[i].binary().to_bytes())
            .collect();
        (soteria, binaries)
    }

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            cache_shards: 4,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            seed: 9,
            trace_sampling: 1.0,
            admission: AdmissionConfig::default(),
            backend: Backend::F32,
        }
    }

    #[test]
    fn service_matches_sequential_screening_and_shuts_down_clean() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let tickets: Vec<Ticket> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("queue has room")
            })
            .collect();
        let served: Vec<Verdict> = tickets.into_iter().map(Ticket::wait).collect();
        let mut soteria = service.shutdown();
        let sequential: Vec<Verdict> = binaries
            .iter()
            .map(|b| soteria.screen_binary(b, request_seed(9, b)))
            .collect();
        assert_eq!(served, sequential);
    }

    #[test]
    fn hot_swap_switches_models_and_clears_the_cache() {
        let (mut old, binaries) = trained();
        let old_oracle: Vec<Verdict> = binaries
            .iter()
            .map(|b| old.screen_binary(b, request_seed(9, b)))
            .collect();
        let service = ScreeningService::start(old, &config());
        let before: Vec<Verdict> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("accepted")
                    .wait()
            })
            .collect();
        assert_eq!(
            before, old_oracle,
            "pre-swap verdicts come from the old model"
        );
        assert!(
            service
                .submit(binaries[0].clone())
                .into_ticket()
                .expect("accepted")
                .is_cached(),
            "verdict memoized before the swap"
        );

        // A model trained from a different seed: same corpus, different
        // weights, so its verdicts are distinguishable from the old ones.
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [8, 8, 8, 8],
            seed: 77,
            av_noise: false,
            lineages: 3,
        });
        let split = corpus.split(0.75, 1);
        let new = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 11).expect("train");
        assert_eq!(service.epoch(), 0);
        let epoch = service.swap(new);
        assert_eq!(epoch, 1);
        assert_eq!(service.epoch(), 1);

        // The swap dropped every memoized verdict: identical content goes
        // back through the pipeline and is answered by the new model.
        let retry = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(!retry.is_cached(), "swap must clear the cache");
        let after: Vec<Verdict> = std::iter::once(retry.wait())
            .chain(binaries[1..].iter().map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("accepted")
                    .wait()
            }))
            .collect();
        let stats = service.stats();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.epoch, 1);
        let mut newest = service.shutdown();
        let new_oracle: Vec<Verdict> = binaries
            .iter()
            .map(|b| newest.screen_binary(b, request_seed(9, b)))
            .collect();
        assert_eq!(
            after, new_oracle,
            "post-swap verdicts come from the new model"
        );
        assert_ne!(
            old_oracle, new_oracle,
            "differently seeded training must be observable, or this test proves nothing"
        );
    }

    #[test]
    fn swap_from_path_loads_artifact_and_json_states() {
        let (soteria, binaries) = trained();
        let state = soteria.save_state().expect("state");
        let dir = std::env::temp_dir().join(format!(
            "soteria-swap-test-{}-{:x}",
            std::process::id(),
            fnv1a64(&binaries[0])
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let artifact = dir.join("model.soteria");
        let json = dir.join("model.json");
        state.save_artifact_to_path(&artifact).expect("artifact");
        state.save_to_path(&json).expect("json");

        let service = ScreeningService::start(Soteria::from_state(state), &config());
        let e1 = service.swap_from_path(&artifact).expect("artifact swap");
        assert_eq!(e1, 1);
        let e2 = service.swap_from_path(&json).expect("json swap");
        assert_eq!(e2, 2);
        let missing = service.swap_from_path(&dir.join("nope.soteria"));
        assert!(missing.is_err(), "missing file must not swap");
        assert_eq!(service.epoch(), 2, "failed swap leaves the epoch alone");
        // All three models are the same weights, so verdicts are stable
        // across every epoch that served them.
        let v = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted")
            .wait();
        let mut newest = service.shutdown();
        assert_eq!(
            v,
            newest.screen_binary(&binaries[0], request_seed(9, &binaries[0]))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmitting_identical_content_hits_the_cache() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let cold = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(!cold.is_cached());
        let cold_verdict = cold.wait();
        let warm = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(warm.is_cached(), "verdict should be memoized");
        assert_eq!(warm.wait(), cold_verdict);
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
        drop(service);
    }

    #[test]
    fn garbage_degrades_without_killing_the_service() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let garbage = service
            .submit(vec![0xA5u8; 64])
            .into_ticket()
            .expect("accepted")
            .wait();
        assert!(garbage.is_degraded(), "garbage must degrade: {garbage:?}");
        // The service keeps answering real requests afterwards.
        let real = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted")
            .wait();
        let mut soteria = service.shutdown();
        assert_eq!(
            real,
            soteria.screen_binary(&binaries[0], request_seed(9, &binaries[0]))
        );
    }

    #[test]
    fn traces_capture_the_stage_timeline_without_changing_verdicts() {
        let (soteria, binaries) = trained();
        // Everything records into a scoped registry: the service captures
        // it at start and attaches it in the worker/batcher threads.
        let scope = soteria_telemetry::scoped();
        let service = ScreeningService::start(soteria, &config());
        let traced: Vec<Verdict> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("accepted")
                    .wait()
            })
            .collect();
        assert_eq!(service.stats().in_flight, 0, "all requests resolved");
        let traces = soteria_telemetry::recent_traces(usize::MAX);
        assert_eq!(
            traces.len(),
            binaries.len(),
            "sampling 1.0 traces every request"
        );
        for t in &traces {
            let names: Vec<&str> = t.stages.iter().map(|s| s.name).collect();
            for want in ["request", "enqueue", "queue_wait", "extract", "infer"] {
                assert!(names.contains(&want), "stage {want} missing in {names:?}");
            }
            // Children hang off the root request stage.
            assert!(t.stages[1..].iter().all(|s| s.parent == Some(TRACE_ROOT)));
        }
        let report = soteria_telemetry::snapshot();
        for stage in ["queue_wait", "extract", "batch_wait", "infer", "total"] {
            let name = format!("serve.stage.{stage}");
            let s = report
                .span(&name)
                .unwrap_or_else(|| panic!("{name} recorded"));
            assert_eq!(s.count, binaries.len() as u64, "{name} count");
        }
        let soteria = service.shutdown();
        drop(scope);

        // Identical run with tracing off: verdicts must be bit-identical.
        let scope = soteria_telemetry::scoped();
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                trace_sampling: 0.0,
                ..config()
            },
        );
        let untraced: Vec<Verdict> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("accepted")
                    .wait()
            })
            .collect();
        assert_eq!(traced, untraced, "tracing changed a verdict");
        assert!(
            soteria_telemetry::recent_traces(usize::MAX).is_empty(),
            "sampling 0.0 must trace nothing"
        );
        drop(service);
        drop(scope);
    }

    #[test]
    fn expired_deadlines_degrade_and_never_enter_the_cache() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                admission: AdmissionConfig {
                    default_deadline: Some(Duration::ZERO),
                    ..AdmissionConfig::default()
                },
                ..config()
            },
        );
        let expired = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("admitted")
            .wait();
        match &expired {
            Verdict::Degraded { reason } => {
                assert_eq!(reason.slug(), "deadline", "unexpected fault: {reason}")
            }
            other => panic!("zero deadline must expire: {other:?}"),
        }
        assert_eq!(service.stats().deadline_expired, 1);
        // The degrade was timing-derived: an identical resubmission with a
        // workable deadline must go through the pipeline, not the cache.
        let retry = service
            .submit_with(
                binaries[0].clone(),
                SubmitOptions {
                    deadline: Some(Duration::from_secs(30)),
                    client: None,
                },
            )
            .into_ticket()
            .expect("admitted");
        assert!(!retry.is_cached(), "deadline degrade leaked into the cache");
        let verdict = retry.wait();
        assert!(!verdict.is_degraded(), "retry must resolve: {verdict:?}");
        let mut soteria = service.shutdown();
        assert_eq!(
            verdict,
            soteria.screen_binary(&binaries[0], request_seed(9, &binaries[0]))
        );
    }

    #[test]
    fn brownout_tier_sheds_clean_samples_without_caching() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                admission: AdmissionConfig {
                    // Pressure 0.0 >= 0.0: every admission is AE-only.
                    brownout_threshold: Some(0.0),
                    ..AdmissionConfig::default()
                },
                ..config()
            },
        );
        let first = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("admitted")
            .wait();
        match &first {
            Verdict::Degraded { reason } => {
                assert_eq!(reason.slug(), "overload", "unexpected fault: {reason}")
            }
            Verdict::Adversarial { .. } => {} // detector answered; also fine
            Verdict::Clean { .. } => panic!("ae-only tier can never answer Clean"),
        }
        assert!(service.stats().brownout >= 1);
        if first.is_degraded() {
            // Overload degrades are load-derived and must not be memoized.
            let again = service
                .submit(binaries[0].clone())
                .into_ticket()
                .expect("admitted");
            assert!(!again.is_cached(), "overload degrade leaked into cache");
            let _ = again.wait();
        }
        drop(service);
    }

    #[test]
    fn overload_rejections_carry_a_reason_and_leak_no_gauges() {
        let (soteria, binaries) = trained();
        let scope = soteria_telemetry::scoped();
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                admission: AdmissionConfig {
                    reject_threshold: Some(0.0), // reject everything
                    ..AdmissionConfig::default()
                },
                ..config()
            },
        );
        match service.submit(binaries[0].clone()) {
            Submit::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::Overloaded);
            }
            Submit::Accepted(_) => panic!("reject threshold 0.0 must shed"),
        }
        let stats = service.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.in_flight, 0);
        let report = soteria_telemetry::snapshot();
        assert_eq!(report.counter("serve.shed.overloaded"), Some(1));
        assert_eq!(report.gauge("serve.queue.depth").unwrap_or(0), 0);
        assert_eq!(report.gauge("serve.inflight").unwrap_or(0), 0);
        drop(service);
        drop(scope);
    }

    #[test]
    fn gauges_never_go_negative_under_concurrent_reject_and_drain() {
        let (soteria, binaries) = trained();
        let scope = soteria_telemetry::scoped();
        let handle = scope.handle();
        // A tiny queue with garbage (fast-failing) samples maximizes the
        // submit/dequeue race that used to drive serve.queue.depth below
        // zero: the increment landed after try_send, so a worker's
        // decrement could come first.
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                workers: 4,
                queue_capacity: 2,
                cache_capacity: 0, // every submit takes the queue path
                batch_window: Duration::ZERO,
                ..config()
            },
        );
        std::thread::scope(|ts| {
            for t in 0..4u8 {
                let service = &service;
                let handle = handle.clone();
                ts.spawn(move || {
                    let _attach = handle.attach();
                    for i in 0..200u32 {
                        let mut bytes = vec![0xA5u8; 32];
                        bytes[0] = t;
                        bytes[1] = i as u8;
                        bytes[2] = (i >> 8) as u8;
                        if let Submit::Accepted(ticket) = service.submit(bytes) {
                            let _ = ticket.wait();
                        }
                    }
                });
            }
            // Sample the gauges while the hammering runs: the invariant is
            // "never negative at any observable instant".
            for _ in 0..500 {
                let report = soteria_telemetry::snapshot();
                let depth = report.gauge("serve.queue.depth").unwrap_or(0);
                let inflight = report.gauge("serve.inflight").unwrap_or(0);
                assert!(depth >= 0, "queue depth went negative: {depth}");
                assert!(inflight >= 0, "inflight went negative: {inflight}");
            }
        });
        let _ = &binaries;
        let stats = service.stats();
        drop(service);
        let report = soteria_telemetry::snapshot();
        assert_eq!(report.gauge("serve.queue.depth"), Some(0));
        assert_eq!(report.gauge("serve.inflight"), Some(0));
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.submitted, 800);
        drop(scope);
    }

    #[test]
    fn wait_for_times_out_and_then_resolves() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let ticket = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("admitted");
        // An impossible timeout hands the ticket back; a generous retry
        // resolves it.
        let verdict = match ticket.wait_for(Duration::ZERO) {
            Ok(v) => v,
            Err(pending) => pending
                .wait_for(Duration::from_secs(30))
                .expect("verdict within 30s"),
        };
        assert!(!verdict.is_degraded(), "verdict: {verdict:?}");
        drop(service);
    }

    #[test]
    fn drop_without_shutdown_still_drains() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let ticket = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        drop(service);
        // The in-flight sample was drained before the threads exited, so
        // the ticket resolves to a real verdict (not a drop-degrade).
        let verdict = ticket.wait();
        assert!(!verdict.is_degraded(), "drained verdict: {verdict:?}");
    }
}
