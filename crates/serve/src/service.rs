//! The concurrent screening service.
//!
//! # Architecture
//!
//! ```text
//!  submit(bytes) ──cache hit──────────────────────────────▶ Ticket(ready)
//!       │ miss
//!       ▼
//!  bounded queue ──▶ worker pool ──▶ batcher ──▶ verdict ──▶ Ticket(wait)
//!  (try_send:        parse + lift    collects       │
//!   Full ⇒           + extract,      a window,      └──▶ cache insert
//!   Rejected)        per-sample      one stacked
//!                    isolation       CNN pass
//! ```
//!
//! Workers do the embarrassingly parallel front half (container parsing,
//! lifting, feature extraction) with every fault confined to its sample.
//! A single batcher thread owns the trained [`Soteria`] and screens queued
//! samples together — reconstruction errors from one stacked matrix, both
//! CNNs one forward pass each — so the threaded matmul in `soteria-nn`
//! amortizes across concurrent requests.
//!
//! # Determinism
//!
//! Each request's walk seed is [`request_seed`]`(service_seed, bytes)` — a
//! pure function of the submitted content. Combined with the
//! row-independence of every inference stage, this makes the service's
//! verdict for given bytes *bit-identical* regardless of worker count,
//! batch window, arrival order, or whether the answer came from the cache.

use crate::cache::{fnv1a64, CacheStats, VerdictCache};
use soteria::{Soteria, Verdict};
use soteria_features::{FeatureExtractor, SampleFeatures};
use soteria_resilience::{FaultKind, ResourceGuards};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The walk seed the service uses for submitted content: the content hash
/// folded with the service seed. Deriving the seed from the bytes (rather
/// than from arrival order) is what makes verdicts a pure function of
/// content — and therefore cacheable and reproducible under any
/// concurrency.
pub fn request_seed(service_seed: u64, bytes: &[u8]) -> u64 {
    fnv1a64(bytes) ^ service_seed
}

/// Tuning knobs for [`ScreeningService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Extraction worker threads (minimum 1).
    pub workers: usize,
    /// Bounded submit-queue depth; a full queue rejects new work
    /// ([`Submit::Rejected`]) instead of buffering unboundedly.
    pub queue_capacity: usize,
    /// Total verdict-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Verdict-cache shard count.
    pub cache_shards: usize,
    /// How long the batcher waits for stragglers after the first queued
    /// sample of a batch. Zero means "batch only what is already queued" —
    /// still amortizing under load, never adding latency.
    pub batch_window: Duration,
    /// Most samples screened in one stacked pass.
    pub max_batch: usize,
    /// Service seed folded into every request seed.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            seed: 0,
        }
    }
}

/// Outcome of [`ScreeningService::submit`].
#[derive(Debug)]
pub enum Submit {
    /// The sample was admitted; the ticket resolves to its verdict.
    Accepted(Ticket),
    /// The queue was full — backpressure. The caller decides whether to
    /// retry, shed, or block.
    Rejected,
}

impl Submit {
    /// Whether the sample was turned away.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Submit::Rejected)
    }

    /// The ticket, if the sample was admitted.
    pub fn into_ticket(self) -> Option<Ticket> {
        match self {
            Submit::Accepted(t) => Some(t),
            Submit::Rejected => None,
        }
    }
}

/// A claim on one submitted sample's verdict.
#[derive(Debug)]
pub struct Ticket {
    inner: TicketInner,
}

#[derive(Debug)]
enum TicketInner {
    /// Resolved at submit time from the verdict cache.
    Ready(Verdict),
    /// In flight; the pipeline replies on this channel.
    Pending(Receiver<Verdict>),
}

impl Ticket {
    /// Whether the verdict came from the cache (already resolved).
    pub fn is_cached(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }

    /// Blocks until the verdict is available. Every accepted submission
    /// resolves: if the service side dies before replying (it should not —
    /// all per-sample work is fault-isolated), the ticket degrades instead
    /// of hanging or panicking.
    pub fn wait(self) -> Verdict {
        match self.inner {
            TicketInner::Ready(verdict) => verdict,
            TicketInner::Pending(rx) => rx.recv().unwrap_or_else(|_| Verdict::Degraded {
                reason: FaultKind::Panic {
                    message: "screening service dropped the request".to_owned(),
                },
            }),
        }
    }
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total [`submit`](ScreeningService::submit) calls.
    pub submitted: u64,
    /// Submissions turned away by backpressure.
    pub rejected: u64,
    /// Verdict-cache counters.
    pub cache: CacheStats,
}

/// One queued request.
struct Job {
    bytes: Vec<u8>,
    key: u64,
    seed: u64,
    reply: Sender<Verdict>,
}

/// A request after the worker half: extracted (or faulted) and waiting for
/// the batcher.
struct InferJob {
    key: u64,
    seed: u64,
    reply: Sender<Verdict>,
    features: Result<SampleFeatures, FaultKind>,
}

/// A running screening service wrapping one trained [`Soteria`].
///
/// Submissions are admitted through a bounded queue, extracted by a worker
/// pool, screened in micro-batches by a single batcher thread that owns the
/// model, and memoized in a content-addressed verdict cache. Dropping the
/// service (or calling [`shutdown`](ScreeningService::shutdown)) drains
/// every admitted sample before the threads exit.
#[derive(Debug)]
pub struct ScreeningService {
    submit_tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<Soteria>>,
    cache: Arc<VerdictCache>,
    seed: u64,
    submitted: AtomicU64,
    rejected: AtomicU64,
}

impl ScreeningService {
    /// Starts the worker pool and batcher around a trained system.
    pub fn start(soteria: Soteria, config: &ServeConfig) -> Self {
        // Spin up the shared compute pool before the first request so the
        // batcher's forward passes never pay thread-spawn latency.
        let _ = soteria_nn::backend::warm();
        let cache = Arc::new(VerdictCache::new(
            config.cache_capacity,
            config.cache_shards.max(1),
        ));
        let (submit_tx, submit_rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let submit_rx = Arc::new(Mutex::new(submit_rx));
        let (infer_tx, infer_rx) = mpsc::channel::<InferJob>();

        let extractor = soteria.extractor().clone();
        let guards = soteria.config().guards.clone();
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let submit_rx = Arc::clone(&submit_rx);
                let infer_tx = infer_tx.clone();
                let extractor = extractor.clone();
                let guards = guards.clone();
                std::thread::Builder::new()
                    .name(format!("soteria-serve-worker-{i}"))
                    .spawn(move || worker_loop(&submit_rx, &infer_tx, &extractor, &guards))
                    .expect("spawn screening worker")
            })
            .collect();
        // Workers hold the only remaining senders: once they exit, the
        // batcher's queue closes and it drains to completion.
        drop(infer_tx);

        let batch_window = config.batch_window;
        let max_batch = config.max_batch.max(1);
        let batcher_cache = Arc::clone(&cache);
        let batcher = std::thread::Builder::new()
            .name("soteria-serve-batcher".to_owned())
            .spawn(move || {
                batcher_loop(soteria, &infer_rx, batch_window, max_batch, &batcher_cache)
            })
            .expect("spawn screening batcher");

        ScreeningService {
            submit_tx: Some(submit_tx),
            workers,
            batcher: Some(batcher),
            cache,
            seed: config.seed,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Submits a binary for screening. Identical content always produces an
    /// identical verdict, so the content-addressed cache is consulted
    /// first; on a miss the sample enters the bounded queue, and a full
    /// queue pushes back with [`Submit::Rejected`].
    pub fn submit(&self, bytes: Vec<u8>) -> Submit {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        soteria_telemetry::counter("serve.submitted", 1);
        let key = fnv1a64(&bytes);
        if let Some(verdict) = self.cache.get(key) {
            return Submit::Accepted(Ticket {
                inner: TicketInner::Ready(verdict),
            });
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            seed: key ^ self.seed,
            bytes,
            key,
            reply: reply_tx,
        };
        let submit_tx = self
            .submit_tx
            .as_ref()
            .expect("submit on a running service");
        match submit_tx.try_send(job) {
            Ok(()) => Submit::Accepted(Ticket {
                inner: TicketInner::Pending(reply_rx),
            }),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::counter("serve.submit.rejected", 1);
                Submit::Rejected
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// The service seed (for deriving [`request_seed`] externally).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drains every admitted sample, stops the threads, and hands the model
    /// back.
    ///
    /// # Panics
    ///
    /// Panics if the batcher thread itself died (per-sample faults never
    /// kill it; this would indicate a bug in the batching scaffolding).
    pub fn shutdown(mut self) -> Soteria {
        self.stop_intake();
        let batcher = self.batcher.take().expect("batcher still attached");
        match batcher.join() {
            Ok(soteria) => soteria,
            Err(_) => panic!("screening batcher thread panicked"),
        }
    }

    /// Closes the queue and joins the workers (queued jobs drain first).
    fn stop_intake(&mut self) {
        drop(self.submit_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ScreeningService {
    fn drop(&mut self) {
        self.stop_intake();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

/// Worker half: pull a job, parse + lift + extract with per-sample fault
/// isolation, pass the result to the batcher.
fn worker_loop(
    submit_rx: &Arc<Mutex<Receiver<Job>>>,
    infer_tx: &Sender<InferJob>,
    extractor: &FeatureExtractor,
    guards: &ResourceGuards,
) {
    loop {
        // Hold the lock only for the dequeue, never while working.
        let job = {
            let rx = submit_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else { break };
        let _span = soteria_telemetry::span("serve.worker.extract");
        let features = extract_features(extractor, guards, &job.bytes, job.seed);
        let handoff = infer_tx.send(InferJob {
            key: job.key,
            seed: job.seed,
            reply: job.reply,
            features,
        });
        if handoff.is_err() {
            // Batcher gone; the job's reply sender just dropped, so its
            // ticket degrades rather than hangs.
            break;
        }
    }
}

/// Parse → lift → extract with every failure confined to the sample —
/// exactly the front half of `Soteria::screen_binary`, so verdicts stay
/// bit-identical to the sequential path.
fn extract_features(
    extractor: &FeatureExtractor,
    guards: &ResourceGuards,
    bytes: &[u8],
    seed: u64,
) -> Result<SampleFeatures, FaultKind> {
    let lifted = soteria_resilience::isolate(AssertUnwindSafe(|| {
        let binary = soteria_corpus::Binary::parse(bytes).map_err(FaultKind::from)?;
        let lifted = soteria_corpus::disasm::lift(&binary).map_err(FaultKind::from)?;
        Ok(lifted.cfg)
    }));
    match lifted {
        Ok(Ok(cfg)) => extractor.try_extract(&cfg, seed, guards),
        Ok(Err(fault)) | Err(fault) => Err(fault),
    }
}

/// Batcher half: own the model, collect a latency-bounded window of
/// extracted samples, screen them in one stacked pass, reply and memoize.
fn batcher_loop(
    mut soteria: Soteria,
    infer_rx: &Receiver<InferJob>,
    window: Duration,
    max_batch: usize,
    cache: &VerdictCache,
) -> Soteria {
    loop {
        // Block for the batch's first sample; queue closed means drained.
        let first = match infer_rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        // Whatever is already queued batches for free — amortization with
        // zero added latency, even with a zero window.
        while jobs.len() < max_batch {
            match infer_rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Then wait out the remaining window for stragglers.
        if !window.is_zero() && jobs.len() < max_batch {
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline || jobs.len() >= max_batch {
                    break;
                }
                match infer_rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        process_batch(&mut soteria, jobs, cache);
    }
    soteria
}

/// Screens one collected batch and resolves its tickets.
fn process_batch(soteria: &mut Soteria, jobs: Vec<InferJob>, cache: &VerdictCache) {
    let _span = soteria_telemetry::span("serve.batch");
    soteria_telemetry::record("serve.batch.size", jobs.len() as f64);
    let mut pending: Vec<(u64, Sender<Verdict>, Option<Verdict>)> = Vec::with_capacity(jobs.len());
    let mut items: Vec<(SampleFeatures, u64)> = Vec::new();
    let mut item_slots: Vec<usize> = Vec::new();
    for job in jobs {
        match job.features {
            Ok(features) => {
                item_slots.push(pending.len());
                items.push((features, job.seed));
                pending.push((job.key, job.reply, None));
            }
            Err(fault) => {
                soteria_telemetry::counter("serve.verdicts.degraded", 1);
                pending.push((
                    job.key,
                    job.reply,
                    Some(Verdict::Degraded { reason: fault }),
                ));
            }
        }
    }
    let screened = soteria.screen_features_batch(&items);
    for (slot, verdict) in item_slots.into_iter().zip(screened) {
        pending[slot].2 = Some(verdict);
    }
    for (key, reply, verdict) in pending {
        let verdict = verdict.expect("every batched job resolved");
        cache.insert(key, verdict.clone());
        // A dropped receiver just means the submitter stopped waiting.
        let _ = reply.send(verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria::SoteriaConfig;
    use soteria_corpus::{Corpus, CorpusConfig};

    fn trained() -> (Soteria, Vec<Vec<u8>>) {
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [8, 8, 8, 8],
            seed: 77,
            av_noise: false,
            lineages: 3,
        });
        let split = corpus.split(0.75, 1);
        let soteria =
            Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 5).expect("train");
        let binaries = split
            .test
            .iter()
            .map(|&i| corpus.samples()[i].binary().to_bytes())
            .collect();
        (soteria, binaries)
    }

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            cache_shards: 4,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            seed: 9,
        }
    }

    #[test]
    fn service_matches_sequential_screening_and_shuts_down_clean() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let tickets: Vec<Ticket> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("queue has room")
            })
            .collect();
        let served: Vec<Verdict> = tickets.into_iter().map(Ticket::wait).collect();
        let mut soteria = service.shutdown();
        let sequential: Vec<Verdict> = binaries
            .iter()
            .map(|b| soteria.screen_binary(b, request_seed(9, b)))
            .collect();
        assert_eq!(served, sequential);
    }

    #[test]
    fn resubmitting_identical_content_hits_the_cache() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let cold = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(!cold.is_cached());
        let cold_verdict = cold.wait();
        let warm = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(warm.is_cached(), "verdict should be memoized");
        assert_eq!(warm.wait(), cold_verdict);
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
        drop(service);
    }

    #[test]
    fn garbage_degrades_without_killing_the_service() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let garbage = service
            .submit(vec![0xA5u8; 64])
            .into_ticket()
            .expect("accepted")
            .wait();
        assert!(garbage.is_degraded(), "garbage must degrade: {garbage:?}");
        // The service keeps answering real requests afterwards.
        let real = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted")
            .wait();
        let mut soteria = service.shutdown();
        assert_eq!(
            real,
            soteria.screen_binary(&binaries[0], request_seed(9, &binaries[0]))
        );
    }

    #[test]
    fn drop_without_shutdown_still_drains() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let ticket = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        drop(service);
        // The in-flight sample was drained before the threads exited, so
        // the ticket resolves to a real verdict (not a drop-degrade).
        let verdict = ticket.wait();
        assert!(!verdict.is_degraded(), "drained verdict: {verdict:?}");
    }
}
