//! The concurrent screening service.
//!
//! # Architecture
//!
//! ```text
//!  submit(bytes) ──cache hit──────────────────────────────▶ Ticket(ready)
//!       │ miss
//!       ▼
//!  bounded queue ──▶ worker pool ──▶ batcher ──▶ verdict ──▶ Ticket(wait)
//!  (try_send:        parse + lift    collects       │
//!   Full ⇒           + extract,      a window,      └──▶ cache insert
//!   Rejected)        per-sample      one stacked
//!                    isolation       CNN pass
//! ```
//!
//! Workers do the embarrassingly parallel front half (container parsing,
//! lifting, feature extraction) with every fault confined to its sample.
//! A single batcher thread owns the trained [`Soteria`] and screens queued
//! samples together — reconstruction errors from one stacked matrix, both
//! CNNs one forward pass each — so the threaded matmul in `soteria-nn`
//! amortizes across concurrent requests.
//!
//! # Determinism
//!
//! Each request's walk seed is [`request_seed`]`(service_seed, bytes)` — a
//! pure function of the submitted content. Combined with the
//! row-independence of every inference stage, this makes the service's
//! verdict for given bytes *bit-identical* regardless of worker count,
//! batch window, arrival order, or whether the answer came from the cache.
//!
//! # Observability
//!
//! Every request unconditionally feeds per-stage latency histograms
//! (`serve.stage.{queue_wait, extract, batch_wait, infer, total,
//! cache_hit}`) and live gauges (`serve.queue.depth`, `serve.inflight`) —
//! all lock-free atomics. When [`ServeConfig::trace_sampling`] admits a
//! request (a pure function of its content key and the service seed, see
//! [`soteria_telemetry::sample_decision`]), a [`TraceBuilder`] travels
//! with the job through the pipeline and publishes a parent/child stage
//! timeline at verdict time. None of it feeds back into computation:
//! tracing on or off, verdicts are bit-identical.

use crate::cache::{fnv1a64, CacheStats, VerdictCache};
use soteria::{Soteria, Verdict};
use soteria_features::{FeatureExtractor, SampleFeatures};
use soteria_resilience::{FaultKind, ResourceGuards};
use soteria_telemetry::TraceBuilder;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The walk seed the service uses for submitted content: the content hash
/// folded with the service seed. Deriving the seed from the bytes (rather
/// than from arrival order) is what makes verdicts a pure function of
/// content — and therefore cacheable and reproducible under any
/// concurrency.
pub fn request_seed(service_seed: u64, bytes: &[u8]) -> u64 {
    fnv1a64(bytes) ^ service_seed
}

/// Tuning knobs for [`ScreeningService::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Extraction worker threads (minimum 1).
    pub workers: usize,
    /// Bounded submit-queue depth; a full queue rejects new work
    /// ([`Submit::Rejected`]) instead of buffering unboundedly.
    pub queue_capacity: usize,
    /// Total verdict-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Verdict-cache shard count.
    pub cache_shards: usize,
    /// How long the batcher waits for stragglers after the first queued
    /// sample of a batch. Zero means "batch only what is already queued" —
    /// still amortizing under load, never adding latency.
    pub batch_window: Duration,
    /// Most samples screened in one stacked pass.
    pub max_batch: usize,
    /// Service seed folded into every request seed.
    pub seed: u64,
    /// Fraction of requests that record a full stage-timeline trace
    /// (0.0 = never, 1.0 = every request). The decision is a pure
    /// function of the request's content key and the service seed, so
    /// the same corpus always samples the same requests. Stage
    /// *histograms* are recorded regardless of this rate.
    pub trace_sampling: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            seed: 0,
            trace_sampling: 0.0,
        }
    }
}

/// Outcome of [`ScreeningService::submit`].
#[derive(Debug)]
pub enum Submit {
    /// The sample was admitted; the ticket resolves to its verdict.
    Accepted(Ticket),
    /// The queue was full — backpressure. The caller decides whether to
    /// retry, shed, or block.
    Rejected,
}

impl Submit {
    /// Whether the sample was turned away.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Submit::Rejected)
    }

    /// The ticket, if the sample was admitted.
    pub fn into_ticket(self) -> Option<Ticket> {
        match self {
            Submit::Accepted(t) => Some(t),
            Submit::Rejected => None,
        }
    }
}

/// A claim on one submitted sample's verdict.
#[derive(Debug)]
pub struct Ticket {
    inner: TicketInner,
}

#[derive(Debug)]
enum TicketInner {
    /// Resolved at submit time from the verdict cache.
    Ready(Verdict),
    /// In flight; the pipeline replies on this channel.
    Pending(Receiver<Verdict>),
}

impl Ticket {
    /// Whether the verdict came from the cache (already resolved).
    pub fn is_cached(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }

    /// Blocks until the verdict is available. Every accepted submission
    /// resolves: if the service side dies before replying (it should not —
    /// all per-sample work is fault-isolated), the ticket degrades instead
    /// of hanging or panicking.
    pub fn wait(self) -> Verdict {
        match self.inner {
            TicketInner::Ready(verdict) => verdict,
            TicketInner::Pending(rx) => rx.recv().unwrap_or_else(|_| Verdict::Degraded {
                reason: FaultKind::Panic {
                    message: "screening service dropped the request".to_owned(),
                },
            }),
        }
    }
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total [`submit`](ScreeningService::submit) calls.
    pub submitted: u64,
    /// Submissions turned away by backpressure.
    pub rejected: u64,
    /// Requests admitted to the pipeline whose verdict has not resolved
    /// yet (cache hits resolve at submit time and never count).
    pub in_flight: u64,
    /// Verdict-cache counters.
    pub cache: CacheStats,
}

/// One queued request.
struct Job {
    bytes: Vec<u8>,
    key: u64,
    seed: u64,
    reply: Sender<Verdict>,
    /// When the request entered the bounded queue (queue-wait start).
    enqueued: Instant,
    /// Stage timeline for sampled requests; travels with the job, so
    /// appending stages never synchronizes.
    trace: Option<TraceBuilder>,
}

/// A request after the worker half: extracted (or faulted) and waiting for
/// the batcher.
struct InferJob {
    key: u64,
    seed: u64,
    reply: Sender<Verdict>,
    features: Result<SampleFeatures, FaultKind>,
    /// When the request entered the queue (for end-to-end latency).
    enqueued: Instant,
    /// When extraction finished (batch-wait start).
    extracted: Instant,
    trace: Option<TraceBuilder>,
}

/// A running screening service wrapping one trained [`Soteria`].
///
/// Submissions are admitted through a bounded queue, extracted by a worker
/// pool, screened in micro-batches by a single batcher thread that owns the
/// model, and memoized in a content-addressed verdict cache. Dropping the
/// service (or calling [`shutdown`](ScreeningService::shutdown)) drains
/// every admitted sample before the threads exit.
#[derive(Debug)]
pub struct ScreeningService {
    submit_tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<Soteria>>,
    cache: Arc<VerdictCache>,
    seed: u64,
    trace_sampling: f64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    in_flight: Arc<AtomicU64>,
    started: Instant,
}

/// Index of the root `request` stage in every service trace (it is
/// always the first stage the builder opens).
const TRACE_ROOT: u32 = 0;

impl ScreeningService {
    /// Starts the worker pool and batcher around a trained system.
    pub fn start(soteria: Soteria, config: &ServeConfig) -> Self {
        // Spin up the shared compute pool before the first request so the
        // batcher's forward passes never pay thread-spawn latency.
        let _ = soteria_nn::backend::warm();
        let cache = Arc::new(VerdictCache::new(
            config.cache_capacity,
            config.cache_shards.max(1),
        ));
        let (submit_tx, submit_rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let submit_rx = Arc::new(Mutex::new(submit_rx));
        let (infer_tx, infer_rx) = mpsc::channel::<InferJob>();

        let extractor = soteria.extractor().clone();
        let guards = soteria.config().guards.clone();
        // Worker and batcher threads inherit the registry that is active
        // on the *starting* thread, so a service started under a scoped
        // registry (tests, benches) records there, not globally.
        let telemetry = soteria_telemetry::RegistryHandle::current();
        let in_flight = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let submit_rx = Arc::clone(&submit_rx);
                let infer_tx = infer_tx.clone();
                let extractor = extractor.clone();
                let guards = guards.clone();
                let telemetry = telemetry.clone();
                std::thread::Builder::new()
                    .name(format!("soteria-serve-worker-{i}"))
                    .spawn(move || {
                        let _telemetry = telemetry.attach();
                        worker_loop(&submit_rx, &infer_tx, &extractor, &guards)
                    })
                    .expect("spawn screening worker")
            })
            .collect();
        // Workers hold the only remaining senders: once they exit, the
        // batcher's queue closes and it drains to completion.
        drop(infer_tx);

        let batch_window = config.batch_window;
        let max_batch = config.max_batch.max(1);
        let batcher_cache = Arc::clone(&cache);
        let batcher_in_flight = Arc::clone(&in_flight);
        let batcher_telemetry = telemetry.clone();
        let batcher = std::thread::Builder::new()
            .name("soteria-serve-batcher".to_owned())
            .spawn(move || {
                let _telemetry = batcher_telemetry.attach();
                batcher_loop(
                    soteria,
                    &infer_rx,
                    batch_window,
                    max_batch,
                    &batcher_cache,
                    &batcher_in_flight,
                )
            })
            .expect("spawn screening batcher");

        ScreeningService {
            submit_tx: Some(submit_tx),
            workers,
            batcher: Some(batcher),
            cache,
            seed: config.seed,
            trace_sampling: config.trace_sampling,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            in_flight,
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`start`](ScreeningService::start) returned.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Submits a binary for screening. Identical content always produces an
    /// identical verdict, so the content-addressed cache is consulted
    /// first; on a miss the sample enters the bounded queue, and a full
    /// queue pushes back with [`Submit::Rejected`].
    pub fn submit(&self, bytes: Vec<u8>) -> Submit {
        let submit_start = Instant::now();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        soteria_telemetry::counter("serve.submitted", 1);
        let key = fnv1a64(&bytes);
        let sampled = soteria_telemetry::sample_decision(key, self.seed, self.trace_sampling);
        if let Some(verdict) = self.cache.get(key) {
            soteria_telemetry::record(
                "serve.stage.cache_hit",
                submit_start.elapsed().as_secs_f64() * 1e3,
            );
            if sampled {
                let mut trace = TraceBuilder::new(key);
                let root = trace.begin_at("request", None, submit_start);
                trace.stage("cache_hit", Some(root), submit_start, Instant::now());
                trace.end(root);
                soteria_telemetry::publish_trace(trace.finish());
            }
            return Submit::Accepted(Ticket {
                inner: TicketInner::Ready(verdict),
            });
        }
        let trace = sampled.then(|| {
            let mut trace = TraceBuilder::new(key);
            trace.begin_at("request", None, submit_start); // TRACE_ROOT
            trace.stage("enqueue", Some(TRACE_ROOT), submit_start, Instant::now());
            trace
        });
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            seed: key ^ self.seed,
            bytes,
            key,
            reply: reply_tx,
            enqueued: Instant::now(),
            trace,
        };
        let submit_tx = self
            .submit_tx
            .as_ref()
            .expect("submit on a running service");
        match submit_tx.try_send(job) {
            Ok(()) => {
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::gauge_add("serve.queue.depth", 1);
                soteria_telemetry::gauge_add("serve.inflight", 1);
                Submit::Accepted(Ticket {
                    inner: TicketInner::Pending(reply_rx),
                })
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::counter("serve.submit.rejected", 1);
                Submit::Rejected
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// The service seed (for deriving [`request_seed`] externally).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drains every admitted sample, stops the threads, and hands the model
    /// back.
    ///
    /// # Panics
    ///
    /// Panics if the batcher thread itself died (per-sample faults never
    /// kill it; this would indicate a bug in the batching scaffolding).
    pub fn shutdown(mut self) -> Soteria {
        self.stop_intake();
        let batcher = self.batcher.take().expect("batcher still attached");
        match batcher.join() {
            Ok(soteria) => soteria,
            Err(_) => panic!("screening batcher thread panicked"),
        }
    }

    /// Closes the queue and joins the workers (queued jobs drain first).
    fn stop_intake(&mut self) {
        drop(self.submit_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ScreeningService {
    fn drop(&mut self) {
        self.stop_intake();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

/// Worker half: pull a job, parse + lift + extract with per-sample fault
/// isolation, pass the result to the batcher.
fn worker_loop(
    submit_rx: &Arc<Mutex<Receiver<Job>>>,
    infer_tx: &Sender<InferJob>,
    extractor: &FeatureExtractor,
    guards: &ResourceGuards,
) {
    loop {
        // Hold the lock only for the dequeue, never while working.
        let job = {
            let rx = submit_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(mut job) = job else { break };
        let dequeued = Instant::now();
        soteria_telemetry::gauge_add("serve.queue.depth", -1);
        soteria_telemetry::record(
            "serve.stage.queue_wait",
            dequeued
                .saturating_duration_since(job.enqueued)
                .as_secs_f64()
                * 1e3,
        );
        if let Some(trace) = job.trace.as_mut() {
            trace.stage("queue_wait", Some(TRACE_ROOT), job.enqueued, dequeued);
        }
        let features = extract_features(extractor, guards, &job.bytes, job.seed);
        let extracted = Instant::now();
        soteria_telemetry::record(
            "serve.stage.extract",
            extracted.saturating_duration_since(dequeued).as_secs_f64() * 1e3,
        );
        if let Some(trace) = job.trace.as_mut() {
            trace.stage("extract", Some(TRACE_ROOT), dequeued, extracted);
        }
        let handoff = infer_tx.send(InferJob {
            key: job.key,
            seed: job.seed,
            reply: job.reply,
            features,
            enqueued: job.enqueued,
            extracted,
            trace: job.trace,
        });
        if handoff.is_err() {
            // Batcher gone; the job's reply sender just dropped, so its
            // ticket degrades rather than hangs.
            break;
        }
    }
}

/// Parse → lift → extract with every failure confined to the sample —
/// exactly the front half of `Soteria::screen_binary`, so verdicts stay
/// bit-identical to the sequential path.
fn extract_features(
    extractor: &FeatureExtractor,
    guards: &ResourceGuards,
    bytes: &[u8],
    seed: u64,
) -> Result<SampleFeatures, FaultKind> {
    let lifted = soteria_resilience::isolate(AssertUnwindSafe(|| {
        let binary = soteria_corpus::Binary::parse(bytes).map_err(FaultKind::from)?;
        let lifted = soteria_corpus::disasm::lift(&binary).map_err(FaultKind::from)?;
        Ok(lifted.cfg)
    }));
    match lifted {
        Ok(Ok(cfg)) => extractor.try_extract(&cfg, seed, guards),
        Ok(Err(fault)) | Err(fault) => Err(fault),
    }
}

/// Batcher half: own the model, collect a latency-bounded window of
/// extracted samples, screen them in one stacked pass, reply and memoize.
fn batcher_loop(
    mut soteria: Soteria,
    infer_rx: &Receiver<InferJob>,
    window: Duration,
    max_batch: usize,
    cache: &VerdictCache,
    in_flight: &AtomicU64,
) -> Soteria {
    loop {
        // Block for the batch's first sample; queue closed means drained.
        let first = match infer_rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        // Whatever is already queued batches for free — amortization with
        // zero added latency, even with a zero window.
        while jobs.len() < max_batch {
            match infer_rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Then wait out the remaining window for stragglers.
        if !window.is_zero() && jobs.len() < max_batch {
            let deadline = Instant::now() + window;
            loop {
                let now = Instant::now();
                if now >= deadline || jobs.len() >= max_batch {
                    break;
                }
                match infer_rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        process_batch(&mut soteria, jobs, cache, in_flight);
    }
    soteria
}

/// One batched request awaiting its verdict inside [`process_batch`].
struct PendingReply {
    key: u64,
    reply: Sender<Verdict>,
    verdict: Option<Verdict>,
    enqueued: Instant,
    trace: Option<TraceBuilder>,
    /// Whether the request went through inference (degraded ones skip it).
    inferred: bool,
}

/// Screens one collected batch and resolves its tickets.
fn process_batch(
    soteria: &mut Soteria,
    jobs: Vec<InferJob>,
    cache: &VerdictCache,
    in_flight: &AtomicU64,
) {
    let batch_start = Instant::now();
    let _span = soteria_telemetry::span("serve.batch");
    soteria_telemetry::record("serve.batch.size", jobs.len() as f64);
    let mut pending: Vec<PendingReply> = Vec::with_capacity(jobs.len());
    let mut items: Vec<(SampleFeatures, u64)> = Vec::new();
    let mut item_slots: Vec<usize> = Vec::new();
    for mut job in jobs {
        soteria_telemetry::record(
            "serve.stage.batch_wait",
            batch_start
                .saturating_duration_since(job.extracted)
                .as_secs_f64()
                * 1e3,
        );
        if let Some(trace) = job.trace.as_mut() {
            trace.stage("batch_wait", Some(TRACE_ROOT), job.extracted, batch_start);
        }
        let (verdict, inferred) = match job.features {
            Ok(features) => {
                item_slots.push(pending.len());
                items.push((features, job.seed));
                (None, true)
            }
            Err(fault) => {
                soteria_telemetry::counter("serve.verdicts.degraded", 1);
                (Some(Verdict::Degraded { reason: fault }), false)
            }
        };
        pending.push(PendingReply {
            key: job.key,
            reply: job.reply,
            verdict,
            enqueued: job.enqueued,
            trace: job.trace,
            inferred,
        });
    }
    let infer_start = Instant::now();
    let screened = soteria.screen_features_batch(&items);
    let infer_end = Instant::now();
    let infer_ms = infer_end
        .saturating_duration_since(infer_start)
        .as_secs_f64()
        * 1e3;
    for (slot, verdict) in item_slots.into_iter().zip(screened) {
        pending[slot].verdict = Some(verdict);
    }
    for p in pending {
        let verdict = p.verdict.expect("every batched job resolved");
        if p.inferred {
            // Attribute the stacked pass to each request it served: the
            // whole batch waited on the same forward passes.
            soteria_telemetry::record("serve.stage.infer", infer_ms);
        }
        cache.insert(p.key, verdict.clone());
        let resolve_end = Instant::now();
        soteria_telemetry::record(
            "serve.stage.total",
            resolve_end
                .saturating_duration_since(p.enqueued)
                .as_secs_f64()
                * 1e3,
        );
        if let Some(mut trace) = p.trace {
            if p.inferred {
                trace.stage("infer", Some(TRACE_ROOT), infer_start, infer_end);
            }
            trace.stage("resolve", Some(TRACE_ROOT), infer_end, resolve_end);
            trace.end_at(TRACE_ROOT, resolve_end);
            soteria_telemetry::publish_trace(trace.finish());
        }
        // Decrement before replying so a submitter that wakes on the reply
        // never reads a stale in-flight count. Every batched job was
        // counted at submit time, so this never underflows.
        in_flight.fetch_sub(1, Ordering::Relaxed);
        soteria_telemetry::gauge_add("serve.inflight", -1);
        // A dropped receiver just means the submitter stopped waiting.
        let _ = p.reply.send(verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria::SoteriaConfig;
    use soteria_corpus::{Corpus, CorpusConfig};

    fn trained() -> (Soteria, Vec<Vec<u8>>) {
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [8, 8, 8, 8],
            seed: 77,
            av_noise: false,
            lineages: 3,
        });
        let split = corpus.split(0.75, 1);
        let soteria =
            Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 5).expect("train");
        let binaries = split
            .test
            .iter()
            .map(|&i| corpus.samples()[i].binary().to_bytes())
            .collect();
        (soteria, binaries)
    }

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            cache_shards: 4,
            batch_window: Duration::from_millis(1),
            max_batch: 8,
            seed: 9,
            trace_sampling: 1.0,
        }
    }

    #[test]
    fn service_matches_sequential_screening_and_shuts_down_clean() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let tickets: Vec<Ticket> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("queue has room")
            })
            .collect();
        let served: Vec<Verdict> = tickets.into_iter().map(Ticket::wait).collect();
        let mut soteria = service.shutdown();
        let sequential: Vec<Verdict> = binaries
            .iter()
            .map(|b| soteria.screen_binary(b, request_seed(9, b)))
            .collect();
        assert_eq!(served, sequential);
    }

    #[test]
    fn resubmitting_identical_content_hits_the_cache() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let cold = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(!cold.is_cached());
        let cold_verdict = cold.wait();
        let warm = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        assert!(warm.is_cached(), "verdict should be memoized");
        assert_eq!(warm.wait(), cold_verdict);
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
        drop(service);
    }

    #[test]
    fn garbage_degrades_without_killing_the_service() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let garbage = service
            .submit(vec![0xA5u8; 64])
            .into_ticket()
            .expect("accepted")
            .wait();
        assert!(garbage.is_degraded(), "garbage must degrade: {garbage:?}");
        // The service keeps answering real requests afterwards.
        let real = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted")
            .wait();
        let mut soteria = service.shutdown();
        assert_eq!(
            real,
            soteria.screen_binary(&binaries[0], request_seed(9, &binaries[0]))
        );
    }

    #[test]
    fn traces_capture_the_stage_timeline_without_changing_verdicts() {
        let (soteria, binaries) = trained();
        // Everything records into a scoped registry: the service captures
        // it at start and attaches it in the worker/batcher threads.
        let scope = soteria_telemetry::scoped();
        let service = ScreeningService::start(soteria, &config());
        let traced: Vec<Verdict> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("accepted")
                    .wait()
            })
            .collect();
        assert_eq!(service.stats().in_flight, 0, "all requests resolved");
        let traces = soteria_telemetry::recent_traces(usize::MAX);
        assert_eq!(
            traces.len(),
            binaries.len(),
            "sampling 1.0 traces every request"
        );
        for t in &traces {
            let names: Vec<&str> = t.stages.iter().map(|s| s.name).collect();
            for want in ["request", "enqueue", "queue_wait", "extract", "infer"] {
                assert!(names.contains(&want), "stage {want} missing in {names:?}");
            }
            // Children hang off the root request stage.
            assert!(t.stages[1..].iter().all(|s| s.parent == Some(TRACE_ROOT)));
        }
        let report = soteria_telemetry::snapshot();
        for stage in ["queue_wait", "extract", "batch_wait", "infer", "total"] {
            let name = format!("serve.stage.{stage}");
            let s = report
                .span(&name)
                .unwrap_or_else(|| panic!("{name} recorded"));
            assert_eq!(s.count, binaries.len() as u64, "{name} count");
        }
        let soteria = service.shutdown();
        drop(scope);

        // Identical run with tracing off: verdicts must be bit-identical.
        let scope = soteria_telemetry::scoped();
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                trace_sampling: 0.0,
                ..config()
            },
        );
        let untraced: Vec<Verdict> = binaries
            .iter()
            .map(|b| {
                service
                    .submit(b.clone())
                    .into_ticket()
                    .expect("accepted")
                    .wait()
            })
            .collect();
        assert_eq!(traced, untraced, "tracing changed a verdict");
        assert!(
            soteria_telemetry::recent_traces(usize::MAX).is_empty(),
            "sampling 0.0 must trace nothing"
        );
        drop(service);
        drop(scope);
    }

    #[test]
    fn drop_without_shutdown_still_drains() {
        let (soteria, binaries) = trained();
        let service = ScreeningService::start(soteria, &config());
        let ticket = service
            .submit(binaries[0].clone())
            .into_ticket()
            .expect("accepted");
        drop(service);
        // The in-flight sample was drained before the threads exited, so
        // the ticket resolves to a real verdict (not a drop-degrade).
        let verdict = ticket.wait();
        assert!(!verdict.is_degraded(), "drained verdict: {verdict:?}");
    }
}
