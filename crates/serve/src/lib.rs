//! # soteria-serve — concurrent screening as a service
//!
//! Wraps a trained [`Soteria`](soteria::Soteria) behind a bounded work
//! queue, a worker pool, and a micro-batching inference thread, with a
//! sharded content-addressed verdict cache in front:
//!
//! - [`ScreeningService`] — the service itself: `start` → `submit` →
//!   [`Ticket::wait`] → `shutdown`.
//! - [`VerdictCache`] — FNV-keyed, sharded, LRU-per-shard memoization of
//!   verdicts by exact binary content.
//! - [`protocol`] — the line protocol (path or hex in, JSON verdict out)
//!   used by `soteria-cli serve`.
//! - [`admin`] — in-band observability verbs (`METRICS`, `TRACES`,
//!   `HEALTH`) any front end can answer between screening requests.
//! - [`admission`] / [`deadline`] — overload hardening: per-request
//!   deadlines, per-client rate limits, pressure-tiered shedding with an
//!   AE-only brownout tier, and a circuit breaker over extraction
//!   faults. All disabled by default.
//!
//! ## Why caching and batching cannot change an answer
//!
//! The service seeds each sample's random walks from its *content*
//! ([`request_seed`]), and every inference stage is row-independent, so a
//! verdict is a pure function of `(model, bytes, service seed)`. Worker
//! count, batch window, arrival order, and cache hits are all invisible in
//! the output — the equivalence suite in the workspace `tests/` directory
//! asserts this bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod admission;
pub mod cache;
pub mod deadline;
pub mod protocol;
mod service;

pub use admin::handle_admin;
pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, RateLimit, RejectReason,
};
pub use cache::{fnv1a64, CacheStats, VerdictCache};
pub use deadline::Deadline;
pub use service::{
    request_seed, ScreeningService, ServeConfig, ServiceStats, Submit, SubmitOptions, Ticket,
};
pub use soteria_resilience::BreakerConfig;
