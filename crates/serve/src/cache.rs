//! Sharded, content-addressed verdict cache.
//!
//! Keys are [`fnv1a64`] hashes of the raw binary bytes, so two submissions
//! with identical content share one entry. Because the service derives each
//! sample's walk seed from the same hash (see
//! [`request_seed`](crate::request_seed)), a cached verdict is *bit-identical*
//! to what the cold path would recompute — caching never changes an answer,
//! only its latency.
//!
//! The map is split into shards, each behind its own mutex, so concurrent
//! submitters rarely contend. Within a shard, eviction is LRU by a per-shard
//! access tick.

use soteria::Verdict;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit hash over the byte length (little-endian) followed by the
/// bytes themselves. Folding the length in keeps pathological
/// prefix-padding inputs from colliding trivially.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in (bytes.len() as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Point-in-time counters of a [`VerdictCache`].
///
/// `lookups == hits + misses` always holds, even under concurrent access:
/// every lookup increments exactly one of the two outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total [`get`](VerdictCache::get) calls.
    pub lookups: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Total [`insert`](VerdictCache::insert) calls that stored an entry.
    pub inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

struct Entry {
    verdict: Verdict,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A sharded LRU map from content hash to [`Verdict`].
pub struct VerdictCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl std::fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerdictCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl VerdictCache {
    /// Creates a cache holding at most `capacity` entries across `shards`
    /// shards (both rounded up so every shard holds at least one entry).
    /// A `capacity` of zero disables caching: every lookup misses and
    /// inserts are dropped.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        VerdictCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The multiplicative FNV mix leaves the high bits best distributed.
        let i = (key >> 32) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Looks up a verdict by content hash, refreshing its recency.
    pub fn get(&self, key: u64) -> Option<Verdict> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            soteria_telemetry::counter("serve.cache.misses", 1);
            return None;
        }
        let mut shard = lock(self.shard(key));
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let verdict = entry.verdict.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::counter("serve.cache.hits", 1);
                Some(verdict)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::counter("serve.cache.misses", 1);
                None
            }
        }
    }

    /// Stores a verdict, evicting the shard's least-recently-used entry if
    /// the shard is full.
    pub fn insert(&self, key: u64, verdict: Verdict) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = lock(self.shard(key));
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // O(shard) scan; shards are small enough that a heap or
            // intrusive list would cost more than it saves.
            if let Some(&lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                soteria_telemetry::counter("serve.cache.evictions", 1);
                soteria_telemetry::gauge_add("serve.cache.entries", -1);
            }
        }
        let fresh = shard
            .map
            .insert(
                key,
                Entry {
                    verdict,
                    last_used: tick,
                },
            )
            .is_none();
        self.inserts.fetch_add(1, Ordering::Relaxed);
        soteria_telemetry::counter("serve.cache.inserts", 1);
        if fresh {
            // Residency gauge: +1 per new key; evictions decrement above,
            // so the gauge tracks `len()` without a cross-shard scan.
            soteria_telemetry::gauge_add("serve.cache.entries", 1);
        }
    }

    /// Drops every resident entry (counters are preserved). Used by hot
    /// model swap: a cached verdict must not outlive the model that
    /// computed it. Shards are cleared one at a time, so a concurrent
    /// reader may still hit an entry in a not-yet-cleared shard — callers
    /// that need strict cutover must also guard inserts (the service's
    /// epoch check).
    pub fn clear(&self) {
        let mut dropped = 0i64;
        for shard in &self.shards {
            let mut shard = lock(shard);
            dropped += shard.map.len() as i64;
            shard.map.clear();
        }
        if dropped > 0 {
            soteria_telemetry::gauge_add("serve.cache.entries", -dropped);
        }
        soteria_telemetry::counter("serve.cache.clears", 1);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Locks a shard, recovering from a poisoned mutex: cache state is a plain
/// map that is valid after any interrupted operation, so a panicking peer
/// must not wedge every later request.
fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_resilience::FaultKind;

    fn verdict(tag: f64) -> Verdict {
        Verdict::Adversarial {
            reconstruction_error: tag,
        }
    }

    #[test]
    fn fnv_distinguishes_length_and_content() {
        assert_ne!(fnv1a64(b""), fnv1a64(b"\0"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_eq!(fnv1a64(b"soteria"), fnv1a64(b"soteria"));
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = VerdictCache::new(8, 2);
        assert_eq!(cache.get(1), None);
        cache.insert(1, verdict(0.5));
        assert_eq!(cache.get(1), Some(verdict(0.5)));
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Single shard so eviction order is fully observable.
        let cache = VerdictCache::new(2, 1);
        cache.insert(1, verdict(1.0));
        cache.insert(2, verdict(2.0));
        assert_eq!(cache.get(1), Some(verdict(1.0))); // refresh 1; 2 is now LRU
        cache.insert(3, verdict(3.0));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(2), None, "cold entry should have been evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinserting_a_resident_key_does_not_evict() {
        let cache = VerdictCache::new(2, 1);
        cache.insert(1, verdict(1.0));
        cache.insert(2, verdict(2.0));
        cache.insert(1, verdict(9.0));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1), Some(verdict(9.0)));
        assert_eq!(cache.get(2), Some(verdict(2.0)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = VerdictCache::new(0, 4);
        cache.insert(1, verdict(1.0));
        assert_eq!(cache.get(1), None);
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn clear_empties_every_shard_and_keeps_counters() {
        let scope = soteria_telemetry::scoped();
        let cache = VerdictCache::new(16, 4);
        // Shards hash on the high 32 bits; spread the keys across them.
        for k in 0..10u64 {
            cache.insert(k << 32, verdict(k as f64));
        }
        assert_eq!(cache.len(), 10);
        cache.clear();
        assert!(cache.is_empty());
        for k in 0..10u64 {
            assert_eq!(cache.get(k << 32), None);
        }
        let stats = cache.stats();
        assert_eq!(stats.inserts, 10, "clear must not rewind counters");
        assert_eq!(stats.entries, 0);
        let report = soteria_telemetry::snapshot();
        assert_eq!(report.gauge("serve.cache.entries"), Some(0));
        assert_eq!(report.counter("serve.cache.clears"), Some(1));
        drop(scope);
    }

    #[test]
    fn caches_degraded_verdicts_too() {
        let cache = VerdictCache::new(4, 1);
        let v = Verdict::Degraded {
            reason: FaultKind::Panic {
                message: "boom".to_owned(),
            },
        };
        cache.insert(7, v.clone());
        assert_eq!(cache.get(7), Some(v));
    }

    #[test]
    fn stats_are_consistent_under_concurrent_hammering() {
        let cache = std::sync::Arc::new(VerdictCache::new(16, 4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let key = (t * 31 + i) % 40;
                        if cache.get(key).is_none() {
                            cache.insert(key, verdict(key as f64));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups, 800);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert!(
            stats.entries <= 16 + 3,
            "entries {} over cap",
            stats.entries
        );
    }
}
