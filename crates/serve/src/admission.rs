//! Admission control and tiered load shedding for the screening service.
//!
//! Every submission that misses the verdict cache passes through the
//! [`AdmissionController`], which decides one of three tiers:
//!
//! 1. **Accept** — full pipeline (extract → batch → infer).
//! 2. **AE-only brownout** — under pressure, the request is admitted but
//!    screened by the detector alone. Detector-flagged samples get the
//!    *bit-identical* `Adversarial` verdict the full path would produce
//!    (the classifier is never consulted past the detector — see
//!    `Soteria::screen_features_batch_ae_only`); detector-passed samples
//!    degrade with `FaultKind::Overload` instead of queueing behind the
//!    heavy classifier.
//! 3. **Reject** — a typed [`RejectReason`] plus a `retry_after` hint, so
//!    callers can back off instead of hammering a saturated queue.
//!
//! The decision inputs are all live and lock-free on the accept path: the
//! mirrored queue depth (the same value the `serve.queue.depth` gauge
//! shows), an EWMA of extraction latency, a per-client token bucket, and
//! an optional [`CircuitBreaker`] fed by extraction-worker fault
//! outcomes.
//!
//! The [`AdmissionConfig::default`] disables every mechanism, so a
//! service configured without explicit admission tuning behaves exactly
//! as before this layer existed: the only rejection is a full queue.

use soteria_resilience::{BreakerConfig, BreakerState, CircuitBreaker, FaultKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a submission was turned away (the typed half of
/// `Submit::Rejected`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded submit queue was full (classic backpressure).
    QueueFull,
    /// The client exceeded its token-bucket rate.
    RateLimited,
    /// The extraction circuit breaker is open after a panic burst.
    BreakerOpen,
    /// Queue pressure crossed the reject threshold.
    Overloaded,
    /// The request carried a deadline the current backlog cannot meet,
    /// so admitting it would only waste work.
    DeadlineUnmeetable,
}

impl RejectReason {
    /// Stable identifier: the `serve.shed.<slug>` counter suffix and the
    /// wire-protocol `reason` field.
    pub fn slug(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::RateLimited => "rate_limited",
            RejectReason::BreakerOpen => "breaker_open",
            RejectReason::Overloaded => "overloaded",
            RejectReason::DeadlineUnmeetable => "deadline_unmeetable",
        }
    }
}

/// Per-client token-bucket tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained requests per second per client.
    pub rate_per_sec: f64,
    /// Burst capacity (bucket size) in requests.
    pub burst: f64,
}

/// Tuning for the [`AdmissionController`]. The default disables every
/// mechanism — no deadlines, no rate limit, no shedding tiers, no
/// breaker — preserving pre-admission service behavior exactly.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Deadline applied to submissions that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Per-client token bucket (`None` disables rate limiting).
    pub rate_limit: Option<RateLimit>,
    /// Queue pressure (depth / capacity, so in `[0, 1]`) at or above
    /// which admissions drop to the AE-only brownout tier. Values above
    /// `1.0` (including the default `0.0 → disabled` sentinel handling
    /// below) disable the tier.
    pub brownout_threshold: Option<f64>,
    /// Queue pressure at or above which admissions are rejected with
    /// [`RejectReason::Overloaded`]. `None` disables.
    pub reject_threshold: Option<f64>,
    /// Circuit breaker over extraction faults (`None` disables).
    pub breaker: Option<BreakerConfig>,
}

impl AdmissionConfig {
    /// Whether every mechanism is disabled (the default).
    pub fn is_disabled(&self) -> bool {
        self.default_deadline.is_none()
            && self.rate_limit.is_none()
            && self.brownout_threshold.is_none()
            && self.reject_threshold.is_none()
            && self.breaker.is_none()
    }
}

/// The controller's verdict on one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit to the full pipeline.
    Accept,
    /// Admit, but screen with the AE detector only (brownout tier).
    AeOnly,
    /// Turn the submission away.
    Reject {
        /// Why.
        reason: RejectReason,
        /// How long the caller should wait before retrying, when the
        /// controller can estimate it.
        retry_after: Option<Duration>,
    },
}

/// A classic token bucket; `tokens` refills lazily on each take.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(now: Instant, burst: f64) -> TokenBucket {
        TokenBucket {
            tokens: burst,
            last: now,
        }
    }

    /// Takes one token, or reports how long until one is available.
    fn take(&mut self, now: Instant, limit: &RateLimit) -> Result<(), Duration> {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * limit.rate_per_sec).min(limit.burst.max(1.0));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if limit.rate_per_sec > 0.0 {
            Err(Duration::from_secs_f64(
                (1.0 - self.tokens) / limit.rate_per_sec,
            ))
        } else {
            Err(Duration::from_secs(1))
        }
    }
}

/// A lock-free exponentially weighted moving average (value stored as
/// `f64` bits in an atomic; `u64::MAX` is the "no samples yet" sentinel,
/// which no finite latency encodes to).
#[derive(Debug)]
struct Ewma {
    bits: AtomicU64,
    alpha: f64,
}

const EWMA_EMPTY: u64 = u64::MAX;

impl Ewma {
    fn new(alpha: f64) -> Ewma {
        Ewma {
            bits: AtomicU64::new(EWMA_EMPTY),
            alpha,
        }
    }

    fn update(&self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = if current == EWMA_EMPTY {
                sample
            } else {
                f64::from_bits(current) * (1.0 - self.alpha) + sample * self.alpha
            };
            match self.bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    fn get(&self) -> Option<f64> {
        match self.bits.load(Ordering::Relaxed) {
            EWMA_EMPTY => None,
            bits => Some(f64::from_bits(bits)),
        }
    }
}

/// Live admission state shared by submitters and pipeline threads. See
/// the [module docs](self).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    queue_capacity: usize,
    workers: usize,
    /// Mirror of the `serve.queue.depth` gauge (the gauge itself lives in
    /// whatever registry is active, so decisions read this instead).
    depth: AtomicI64,
    /// EWMA of per-sample extraction latency in milliseconds.
    extract_ms: Ewma,
    /// Per-client token buckets; anonymous submissions (no client id)
    /// share bucket 0.
    buckets: Mutex<HashMap<u64, TokenBucket>>,
    breaker: Option<CircuitBreaker>,
    /// Breaker trips already mirrored into the telemetry counter.
    trips_mirrored: AtomicU64,
}

impl AdmissionController {
    /// Builds a controller for a service with the given queue capacity
    /// and worker count.
    pub fn new(config: AdmissionConfig, queue_capacity: usize, workers: usize) -> Self {
        let breaker = config.breaker.clone().map(CircuitBreaker::new);
        AdmissionController {
            config,
            queue_capacity: queue_capacity.max(1),
            workers: workers.max(1),
            depth: AtomicI64::new(0),
            extract_ms: Ewma::new(0.2),
            buckets: Mutex::new(HashMap::new()),
            breaker,
            trips_mirrored: AtomicU64::new(0),
        }
    }

    /// The configured default deadline for submissions without one.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.config.default_deadline
    }

    /// Adjusts the mirrored queue depth (callers keep it in lockstep with
    /// the `serve.queue.depth` gauge).
    pub fn depth_add(&self, delta: i64) {
        self.depth.fetch_add(delta, Ordering::Relaxed);
    }

    /// The mirrored queue depth (never negative under the gauge-ordering
    /// discipline: increment before enqueue, roll back on rejection).
    pub fn depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Feeds one extraction latency observation (milliseconds).
    pub fn observe_extract_ms(&self, ms: f64) {
        self.extract_ms.update(ms);
    }

    /// Records a request fault from the extraction/inference path into
    /// the breaker (panic-class faults only count — the breaker itself
    /// filters) and mirrors breaker telemetry.
    pub fn record_fault(&self, fault: &FaultKind, now: Instant) {
        if let Some(breaker) = &self.breaker {
            breaker.record_fault(fault, now);
            self.mirror_breaker(breaker);
        }
    }

    /// Records a successful request outcome (closes half-open probes).
    pub fn record_success(&self, now: Instant) {
        if let Some(breaker) = &self.breaker {
            breaker.record_success(now);
            self.mirror_breaker(breaker);
        }
    }

    /// The breaker's current state, if one is configured.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(CircuitBreaker::state)
    }

    /// Total breaker trips so far (0 when no breaker is configured).
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.as_ref().map_or(0, CircuitBreaker::trips)
    }

    /// Pushes breaker state/trip telemetry (gauge + counter delta).
    fn mirror_breaker(&self, breaker: &CircuitBreaker) {
        soteria_telemetry::gauge_set("serve.breaker.state", breaker.state().gauge());
        let trips = breaker.trips();
        let seen = self.trips_mirrored.swap(trips, Ordering::Relaxed);
        if trips > seen {
            soteria_telemetry::counter("serve.breaker.trips", trips - seen);
        }
    }

    /// Estimated time for the current backlog to drain through the
    /// worker pool (`None` until extraction latency has been observed).
    fn estimated_wait(&self) -> Option<Duration> {
        let ewma = self.extract_ms.get()?;
        let depth = self.depth().max(0) as f64;
        Some(Duration::from_secs_f64(
            (depth * ewma / self.workers as f64 / 1e3).max(0.0),
        ))
    }

    /// Decides the tier for one submission at `now`. `deadline` is the
    /// request's remaining budget, when it carries one.
    pub fn decide(
        &self,
        now: Instant,
        client: Option<u64>,
        deadline: Option<Duration>,
    ) -> AdmissionDecision {
        if let Some(breaker) = &self.breaker {
            let admit = breaker.admit(now);
            self.mirror_breaker(breaker);
            if let Err(retry_after) = admit {
                return AdmissionDecision::Reject {
                    reason: RejectReason::BreakerOpen,
                    retry_after: Some(retry_after),
                };
            }
        }
        if let Some(limit) = &self.config.rate_limit {
            let key = client.unwrap_or(0);
            let mut buckets = self
                .buckets
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let bucket = buckets
                .entry(key)
                .or_insert_with(|| TokenBucket::new(now, limit.burst));
            if let Err(retry_after) = bucket.take(now, limit) {
                return AdmissionDecision::Reject {
                    reason: RejectReason::RateLimited,
                    retry_after: Some(retry_after),
                };
            }
        }
        let pressure = self.depth().max(0) as f64 / self.queue_capacity as f64;
        if let Some(threshold) = self.config.reject_threshold {
            if pressure >= threshold {
                return AdmissionDecision::Reject {
                    reason: RejectReason::Overloaded,
                    retry_after: self.estimated_wait(),
                };
            }
        }
        if let (Some(remaining), Some(wait)) = (deadline, self.estimated_wait()) {
            if wait > remaining {
                return AdmissionDecision::Reject {
                    reason: RejectReason::DeadlineUnmeetable,
                    retry_after: None,
                };
            }
        }
        if let Some(threshold) = self.config.brownout_threshold {
            if pressure >= threshold {
                return AdmissionDecision::AeOnly;
            }
        }
        AdmissionDecision::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_always_accepts() {
        let c = AdmissionController::new(AdmissionConfig::default(), 4, 1);
        assert!(AdmissionConfig::default().is_disabled());
        let now = Instant::now();
        c.depth_add(4); // fully saturated queue
        for i in 0..100 {
            assert_eq!(c.decide(now, Some(i), None), AdmissionDecision::Accept);
        }
    }

    #[test]
    fn token_bucket_enforces_rate_and_refills() {
        let limit = RateLimit {
            rate_per_sec: 10.0,
            burst: 2.0,
        };
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(t0, limit.burst);
        assert!(bucket.take(t0, &limit).is_ok());
        assert!(bucket.take(t0, &limit).is_ok());
        let wait = bucket.take(t0, &limit).unwrap_err();
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // After the advertised wait a token is available again.
        assert!(bucket
            .take(t0 + wait + Duration::from_millis(1), &limit)
            .is_ok());
    }

    #[test]
    fn rate_limit_is_per_client() {
        let c = AdmissionController::new(
            AdmissionConfig {
                rate_limit: Some(RateLimit {
                    rate_per_sec: 1.0,
                    burst: 1.0,
                }),
                ..AdmissionConfig::default()
            },
            4,
            1,
        );
        let now = Instant::now();
        assert_eq!(c.decide(now, Some(1), None), AdmissionDecision::Accept);
        assert!(matches!(
            c.decide(now, Some(1), None),
            AdmissionDecision::Reject {
                reason: RejectReason::RateLimited,
                retry_after: Some(_)
            }
        ));
        // A different client has its own bucket.
        assert_eq!(c.decide(now, Some(2), None), AdmissionDecision::Accept);
    }

    #[test]
    fn pressure_tiers_brownout_then_reject() {
        let c = AdmissionController::new(
            AdmissionConfig {
                brownout_threshold: Some(0.5),
                reject_threshold: Some(0.75),
                ..AdmissionConfig::default()
            },
            8,
            1,
        );
        let now = Instant::now();
        assert_eq!(c.decide(now, None, None), AdmissionDecision::Accept);
        c.depth_add(4); // pressure 0.5
        assert_eq!(c.decide(now, None, None), AdmissionDecision::AeOnly);
        c.depth_add(2); // pressure 0.75
        assert!(matches!(
            c.decide(now, None, None),
            AdmissionDecision::Reject {
                reason: RejectReason::Overloaded,
                ..
            }
        ));
        c.depth_add(-6);
        assert_eq!(c.decide(now, None, None), AdmissionDecision::Accept);
    }

    #[test]
    fn unmeetable_deadlines_are_rejected_up_front() {
        let c = AdmissionController::new(
            AdmissionConfig {
                default_deadline: Some(Duration::from_millis(5)),
                ..AdmissionConfig::default()
            },
            8,
            1,
        );
        let now = Instant::now();
        c.depth_add(8);
        // No latency data yet: cannot estimate, so admit.
        assert_eq!(
            c.decide(now, None, Some(Duration::from_millis(5))),
            AdmissionDecision::Accept
        );
        c.observe_extract_ms(10.0); // backlog estimate: 8 * 10ms = 80ms
        assert!(matches!(
            c.decide(now, None, Some(Duration::from_millis(5))),
            AdmissionDecision::Reject {
                reason: RejectReason::DeadlineUnmeetable,
                retry_after: None
            }
        ));
        // A generous deadline still gets through.
        assert_eq!(
            c.decide(now, None, Some(Duration::from_secs(1))),
            AdmissionDecision::Accept
        );
    }

    #[test]
    fn breaker_trips_on_fault_burst_and_recovers() {
        let c = AdmissionController::new(
            AdmissionConfig {
                breaker: Some(BreakerConfig {
                    fault_threshold: 2,
                    window: Duration::from_millis(100),
                    base_backoff: Duration::from_millis(20),
                    max_backoff: Duration::from_millis(100),
                    half_open_probes: 1,
                    success_to_close: 1,
                    jitter_seed: 3,
                }),
                ..AdmissionConfig::default()
            },
            8,
            1,
        );
        let t0 = Instant::now();
        assert_eq!(c.decide(t0, None, None), AdmissionDecision::Accept);
        let fault = FaultKind::Panic {
            message: "boom".into(),
        };
        c.record_fault(&fault, t0);
        c.record_fault(&fault, t0 + Duration::from_millis(1));
        assert_eq!(c.breaker_state(), Some(BreakerState::Open));
        assert_eq!(c.breaker_trips(), 1);
        assert!(matches!(
            c.decide(t0 + Duration::from_millis(2), None, None),
            AdmissionDecision::Reject {
                reason: RejectReason::BreakerOpen,
                retry_after: Some(_)
            }
        ));
        // Past the backoff a probe is admitted; success closes.
        let later = t0 + Duration::from_millis(60);
        assert_eq!(c.decide(later, None, None), AdmissionDecision::Accept);
        c.record_success(later);
        assert_eq!(c.breaker_state(), Some(BreakerState::Closed));
    }

    #[test]
    fn ewma_converges_and_ignores_garbage() {
        let e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.update(f64::NAN);
        assert_eq!(e.get(), None);
        e.update(10.0);
        assert_eq!(e.get(), Some(10.0));
        e.update(20.0);
        assert_eq!(e.get(), Some(15.0));
    }

    #[test]
    fn reject_reason_slugs_are_distinct() {
        let reasons = [
            RejectReason::QueueFull,
            RejectReason::RateLimited,
            RejectReason::BreakerOpen,
            RejectReason::Overloaded,
            RejectReason::DeadlineUnmeetable,
        ];
        let slugs: std::collections::BTreeSet<&str> = reasons.iter().map(|r| r.slug()).collect();
        assert_eq!(slugs.len(), reasons.len());
    }
}
