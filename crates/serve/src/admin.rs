//! Admin verbs for the serve line protocol: live metrics, trace, and
//! health exposition.
//!
//! Any front end (stdin or TCP) can interleave these with screening
//! requests:
//!
//! | verb           | response                                           |
//! |----------------|----------------------------------------------------|
//! | `METRICS`      | text exposition lines, terminated by `# EOF`       |
//! | `METRICS json` | the full [`MetricsReport`] as one JSON line        |
//! | `TRACES [n]`   | up to `n` recent traces as JSON lines + `# EOF`    |
//! | `HEALTH`       | one JSON line of liveness counters                 |
//! | `SWAP <path>`  | hot-swaps the served model from a state file       |
//!
//! Verbs are upper-case to stay disjoint from request lines (filesystem
//! paths and `hex:` payloads). Malformed arguments answer with the same
//! single-line `{"error":…}` shape the screening protocol uses — an
//! admin typo must never kill a connection.

use crate::service::{ScreeningService, ServiceStats};
use soteria_telemetry::MetricsReport;
use std::time::Duration;

/// Most traces one `TRACES` request will return (matches the sink's
/// retention bound).
pub const TRACES_MAX: usize = 512;

/// Traces returned when `TRACES` is given without a count.
pub const TRACES_DEFAULT: usize = 16;

/// Answers `line` if it is an admin verb, reading live state from the
/// service; `None` hands the line back to the screening protocol.
///
/// `SWAP <path>` is handled here (not in [`respond`]) because it mutates
/// the service: it loads a state file — v3 binary artifact or v2 JSON,
/// sniffed automatically — and atomically installs it as the serving
/// model. A load failure answers with the usual `{"error":…}` line and
/// leaves the current model serving.
pub fn handle_admin(service: &ScreeningService, line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    if parts.next() == Some("SWAP") {
        let response = match (parts.next(), parts.next()) {
            (Some(path), None) => match service.swap_from_path(std::path::Path::new(path)) {
                Ok(epoch) => format!("{{\"swapped\":true,\"epoch\":{epoch}}}"),
                Err(e) => error_line(&format!("swap failed: {e}")),
            },
            _ => error_line("SWAP wants exactly one state-file path"),
        };
        soteria_telemetry::counter("serve.admin.requests", 1);
        return Some(response);
    }
    respond(&service.stats(), service.uptime(), line)
}

/// The verb dispatcher behind [`handle_admin`], taking the service state
/// as plain values so tests can drive it without a trained model.
/// Telemetry is read from the caller's active registry.
pub fn respond(stats: &ServiceStats, uptime: Duration, line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    let response = match parts.next()? {
        "METRICS" => match (parts.next(), parts.next()) {
            (None, _) => metrics_text(),
            (Some("json"), None) => metrics_json(),
            _ => error_line("METRICS takes no argument or the word json"),
        },
        "TRACES" => match (parts.next(), parts.next()) {
            (None, _) => traces_text(TRACES_DEFAULT),
            (Some(n), None) => match n.parse::<usize>() {
                Ok(n) => traces_text(n.min(TRACES_MAX)),
                Err(_) => error_line("TRACES wants a non-negative count"),
            },
            _ => error_line("TRACES takes at most one argument"),
        },
        "HEALTH" => {
            if parts.next().is_some() {
                error_line("HEALTH takes no arguments")
            } else {
                health_json(stats, uptime)
            }
        }
        _ => return None,
    };
    soteria_telemetry::counter("serve.admin.requests", 1);
    Some(response)
}

/// `{"error":"…"}` — the same malformed-input shape screening uses.
fn error_line(message: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}",
        crate::protocol::escape_json(message)
    )
}

/// The text exposition of the current snapshot, `# EOF`-terminated so
/// stream clients know the response is complete.
fn metrics_text() -> String {
    let mut out = soteria_telemetry::snapshot().render_text();
    out.push_str("# EOF");
    out
}

/// The current snapshot as one JSON line.
fn metrics_json() -> String {
    let report = soteria_telemetry::snapshot();
    serde_json::to_string(&report)
        .unwrap_or_else(|e| error_line(&format!("metrics serialization failed: {e}")))
}

/// Up to `n` recent traces, one JSON line each, `# EOF`-terminated.
fn traces_text(n: usize) -> String {
    let mut out = String::new();
    for trace in soteria_telemetry::recent_traces(n) {
        out.push_str(&trace.to_json_line());
        out.push('\n');
    }
    out.push_str("# EOF");
    out
}

/// One JSON line of liveness state (integers only, so the line is stable
/// to parse from any client). Besides service counters this surfaces the
/// telemetry registry's own saturation signals — `dropped_ops`
/// (name-table exhaustion / kind conflicts) and `events_overflow`
/// (event-ring wrap-around) — so a registry silently losing data is
/// visible from the same probe that watches the service.
fn health_json(stats: &ServiceStats, uptime: Duration) -> String {
    format!(
        "{{\"status\":\"ok\",\"uptime_ms\":{},\"submitted\":{},\"rejected\":{},\
         \"in_flight\":{},\"deadline_expired\":{},\"brownout\":{},\"breaker_trips\":{},\
         \"epoch\":{},\"swaps\":{},\
         \"cache_entries\":{},\"cache_hits\":{},\"cache_lookups\":{},\
         \"telemetry_dropped_ops\":{},\"telemetry_events_overflow\":{}}}",
        uptime.as_millis(),
        stats.submitted,
        stats.rejected,
        stats.in_flight,
        stats.deadline_expired,
        stats.brownout,
        stats.breaker_trips,
        stats.epoch,
        stats.swaps,
        stats.cache.entries,
        stats.cache.hits,
        stats.cache.lookups,
        soteria_telemetry::dropped_ops(),
        soteria_telemetry::events_overflow()
    )
}

/// Parses a `METRICS` text response back into a report (strips the
/// `# EOF` terminator first). What `soteria-cli metrics --connect` uses.
///
/// # Errors
///
/// Returns a message naming the malformed line.
pub fn parse_metrics_response(text: &str) -> Result<MetricsReport, String> {
    MetricsReport::parse_text(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    fn stats() -> ServiceStats {
        ServiceStats {
            submitted: 10,
            rejected: 1,
            in_flight: 2,
            deadline_expired: 3,
            brownout: 4,
            breaker_trips: 1,
            epoch: 2,
            swaps: 2,
            cache: CacheStats {
                lookups: 10,
                hits: 4,
                misses: 6,
                evictions: 0,
                inserts: 6,
                entries: 6,
            },
        }
    }

    #[test]
    fn non_admin_lines_fall_through() {
        let s = stats();
        for line in [
            "",
            "hex:00ff",
            "/some/path",
            "metrics",
            "Traces 5",
            "health",
        ] {
            assert_eq!(respond(&s, Duration::ZERO, line), None, "line {line:?}");
        }
    }

    #[test]
    fn health_is_one_json_line_of_integers() {
        let _scope = soteria_telemetry::scoped();
        let line = respond(&stats(), Duration::from_millis(1234), "HEALTH").expect("admin verb");
        assert!(!line.contains('\n'));
        assert!(line.contains("\"uptime_ms\":1234"));
        assert!(line.contains("\"in_flight\":2"));
        assert!(line.contains("\"cache_entries\":6"));
        assert!(line.contains("\"deadline_expired\":3"));
        assert!(line.contains("\"brownout\":4"));
        assert!(line.contains("\"breaker_trips\":1"));
        assert!(line.contains("\"epoch\":2"));
        assert!(line.contains("\"swaps\":2"));
        assert!(line.contains("\"telemetry_dropped_ops\":0"));
        assert!(line.contains("\"telemetry_events_overflow\":0"));
    }

    #[test]
    fn health_surfaces_registry_saturation() {
        let _scope = soteria_telemetry::scoped();
        // Force a kind conflict (one dropped op) and an event-ring wrap.
        soteria_telemetry::counter("admin.conflict", 1);
        soteria_telemetry::record("admin.conflict", 1.0);
        for i in 0..1030u64 {
            soteria_telemetry::event("admin.flood", i as f64);
        }
        let line = respond(&stats(), Duration::ZERO, "HEALTH").expect("admin verb");
        assert!(
            line.contains("\"telemetry_dropped_ops\":1"),
            "dropped op invisible: {line}"
        );
        assert!(
            line.contains("\"telemetry_events_overflow\":6"),
            "ring overflow invisible: {line}"
        );
    }

    #[test]
    fn metrics_text_round_trips_and_terminates() {
        let _scope = soteria_telemetry::scoped();
        soteria_telemetry::counter("admin.test.c", 5);
        soteria_telemetry::record("admin.test.h", 1.5);
        let text = respond(&stats(), Duration::ZERO, "METRICS").expect("admin verb");
        assert!(text.ends_with("# EOF"));
        let parsed = parse_metrics_response(&text).expect("parses");
        assert_eq!(parsed.counter("admin.test.c"), Some(5));
        assert_eq!(parsed.span("admin.test.h").map(|s| s.count), Some(1));
    }

    #[test]
    fn metrics_json_is_one_line() {
        let _scope = soteria_telemetry::scoped();
        soteria_telemetry::counter("admin.json.c", 1);
        let line = respond(&stats(), Duration::ZERO, "METRICS json").expect("admin verb");
        assert!(!line.contains('\n'));
        let report: MetricsReport = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(report.counter("admin.json.c"), Some(1));
    }

    #[test]
    fn traces_respects_bounds_and_rejects_garbage() {
        let _scope = soteria_telemetry::scoped();
        for i in 0..5u64 {
            let mut b = soteria_telemetry::TraceBuilder::new(i);
            let root = b.begin("request", None);
            b.end(root);
            soteria_telemetry::publish_trace(b.finish());
        }
        let s = stats();
        let two = respond(&s, Duration::ZERO, "TRACES 2").expect("admin verb");
        assert_eq!(two.lines().count(), 3, "2 traces + EOF: {two}");
        let zero = respond(&s, Duration::ZERO, "TRACES 0").expect("admin verb");
        assert_eq!(zero, "# EOF");
        let all = respond(&s, Duration::ZERO, "TRACES 99999").expect("admin verb");
        assert_eq!(all.lines().count(), 6, "clamped, 5 traces + EOF");
        for bad in [
            "TRACES -1",
            "TRACES x",
            "TRACES 1 2",
            "METRICS yaml",
            "HEALTH now",
        ] {
            let r = respond(&s, Duration::ZERO, bad).expect("recognized verb");
            assert!(r.starts_with("{\"error\":"), "{bad} -> {r}");
        }
    }

    #[test]
    fn metrics_under_concurrent_load_stays_parseable() {
        let scope = soteria_telemetry::scoped();
        let handle = scope.handle();
        let s = stats();
        std::thread::scope(|ts| {
            for t in 0..4 {
                let handle = handle.clone();
                ts.spawn(move || {
                    let _attach = handle.attach();
                    for i in 0..5000u64 {
                        soteria_telemetry::counter("admin.load.c", 1);
                        soteria_telemetry::record("admin.load.h", (t * 5000 + i) as f64);
                    }
                });
            }
            // Snapshot and parse while the writers are still hammering.
            for _ in 0..20 {
                let text = respond(&s, Duration::ZERO, "METRICS").expect("admin verb");
                let parsed = parse_metrics_response(&text).expect("parses mid-load");
                if let Some(h) = parsed.span("admin.load.h") {
                    assert!(h.count <= 20_000, "count overshoot: {}", h.count);
                    assert!(h.max_ms <= 19_999.0);
                }
            }
        });
        let final_text = respond(&s, Duration::ZERO, "METRICS").expect("admin verb");
        let parsed = parse_metrics_response(&final_text).expect("parses");
        assert_eq!(parsed.counter("admin.load.c"), Some(20_000));
        assert_eq!(parsed.span("admin.load.h").map(|h| h.count), Some(20_000));
    }
}
