//! Line protocol helpers for the serving front ends.
//!
//! One request per line (a filesystem path or `hex:`-prefixed bytes), one
//! JSON verdict per line back. The encoder is hand-rolled over the small,
//! closed [`Verdict`] shape so the wire format stays explicit and
//! dependency-free.

use crate::admission::RejectReason;
use soteria::Verdict;
use std::time::Duration;

/// Encodes a verdict as a single-line JSON object.
///
/// Shapes:
/// - `{"verdict":"adversarial","reconstruction_error":…}`
/// - `{"verdict":"clean","family":"mirai","reconstruction_error":…,"votes":[…]}`
/// - `{"verdict":"degraded","kind":"panic","reason":"…"}`
pub fn verdict_json(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Adversarial {
            reconstruction_error,
        } => format!(
            "{{\"verdict\":\"adversarial\",\"reconstruction_error\":{}}}",
            json_f64(*reconstruction_error)
        ),
        Verdict::Clean {
            family,
            reconstruction_error,
            report,
        } => {
            let votes: Vec<String> = report.votes.iter().map(ToString::to_string).collect();
            format!(
                "{{\"verdict\":\"clean\",\"family\":\"{}\",\"reconstruction_error\":{},\"votes\":[{}]}}",
                family.name(),
                json_f64(*reconstruction_error),
                votes.join(",")
            )
        }
        Verdict::Degraded { reason } => format!(
            "{{\"verdict\":\"degraded\",\"kind\":\"{}\",\"reason\":\"{}\"}}",
            reason.slug(),
            escape_json(&reason.to_string())
        ),
    }
}

/// Encodes a rejected submission as a single-line JSON object:
/// `{"verdict":"rejected","reason":"queue_full","retry_after_ms":12}`
/// (the `retry_after_ms` field is omitted when the service has no
/// estimate).
pub fn reject_json(reason: RejectReason, retry_after: Option<Duration>) -> String {
    match retry_after {
        Some(wait) => format!(
            "{{\"verdict\":\"rejected\",\"reason\":\"{}\",\"retry_after_ms\":{}}}",
            reason.slug(),
            wait.as_millis().max(1)
        ),
        None => format!(
            "{{\"verdict\":\"rejected\",\"reason\":\"{}\"}}",
            reason.slug()
        ),
    }
}

/// A finite float in JSON spelling (`null` for NaN/∞, which JSON cannot
/// carry as numbers).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // Rust's shortest-roundtrip float formatting is valid JSON.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Decodes an even-length hex string (case-insensitive) into bytes.
pub fn parse_hex(s: &str) -> Option<Vec<u8>> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Encodes bytes as lowercase hex (the inverse of [`parse_hex`]).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_resilience::FaultKind;

    #[test]
    fn hex_round_trips() {
        let bytes = vec![0x00, 0xA5, 0xff, 0x10];
        assert_eq!(parse_hex(&to_hex(&bytes)), Some(bytes.clone()));
        assert_eq!(parse_hex("00A5FF10"), Some(bytes));
        assert_eq!(parse_hex("abc"), None, "odd length");
        assert_eq!(parse_hex("zz"), None, "non-hex digit");
        assert_eq!(parse_hex(""), Some(Vec::new()));
    }

    #[test]
    fn adversarial_and_degraded_encode_stably() {
        let adv = Verdict::Adversarial {
            reconstruction_error: 0.25,
        };
        assert_eq!(
            verdict_json(&adv),
            "{\"verdict\":\"adversarial\",\"reconstruction_error\":0.25}"
        );
        let deg = Verdict::Degraded {
            reason: FaultKind::Panic {
                message: "say \"hi\"\n".to_owned(),
            },
        };
        let line = verdict_json(&deg);
        assert!(line.starts_with("{\"verdict\":\"degraded\",\"kind\":\"panic\""));
        assert!(line.contains("\\\"hi\\\""), "quotes escaped: {line}");
        assert!(line.contains("\\n"), "newline escaped: {line}");
    }

    #[test]
    fn rejections_encode_reason_and_optional_retry() {
        assert_eq!(
            reject_json(RejectReason::QueueFull, None),
            "{\"verdict\":\"rejected\",\"reason\":\"queue_full\"}"
        );
        assert_eq!(
            reject_json(RejectReason::RateLimited, Some(Duration::from_millis(250))),
            "{\"verdict\":\"rejected\",\"reason\":\"rate_limited\",\"retry_after_ms\":250}"
        );
        // Sub-millisecond hints round up so clients never busy-spin.
        assert!(
            reject_json(RejectReason::BreakerOpen, Some(Duration::from_micros(10)))
                .contains("\"retry_after_ms\":1")
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape_json("a\u{01}b"), "a\\u0001b");
        assert_eq!(escape_json("plain"), "plain");
    }
}
