//! Per-request deadlines, propagated through every pipeline stage.
//!
//! A [`Deadline`] travels with its job from admission to verdict. Stages
//! check it *cooperatively* at their boundaries (worker dequeue, batch
//! assembly): an expired request resolves immediately to
//! `Degraded(FaultKind::DeadlineExceeded)` instead of burning extraction
//! or inference work whose answer nobody is waiting for. Cooperative
//! checking means a verdict whose computation straddles the expiry
//! instant is still delivered — the deadline bounds *wasted* work, it
//! does not preempt useful work already in flight.
//!
//! Deadline outcomes are timing-derived, never content-derived, so they
//! are excluded from the verdict cache (see
//! [`FaultKind::content_derived`]).

use soteria_resilience::FaultKind;
use std::time::{Duration, Instant};

/// A request's deadline: the admission instant plus an optional budget.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline that never expires (the default for requests submitted
    /// without one).
    pub fn unbounded(started: Instant) -> Deadline {
        Deadline {
            started,
            budget: None,
        }
    }

    /// Expires `budget` after `started`.
    pub fn after(started: Instant, budget: Duration) -> Deadline {
        Deadline {
            started,
            budget: Some(budget),
        }
    }

    /// Builds from an optional budget (`None` = unbounded).
    pub fn from_budget(started: Instant, budget: Option<Duration>) -> Deadline {
        Deadline { started, budget }
    }

    /// Whether the deadline had passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        match self.budget {
            Some(budget) => now.saturating_duration_since(self.started) > budget,
            None => false,
        }
    }

    /// Time left at `now` (`None` = unbounded, `Some(ZERO)` = expired).
    pub fn remaining(&self, now: Instant) -> Option<Duration> {
        self.budget
            .map(|b| b.saturating_sub(now.saturating_duration_since(self.started)))
    }

    /// The fault carried by a verdict degraded on this deadline.
    pub fn fault(&self, now: Instant) -> FaultKind {
        FaultKind::DeadlineExceeded {
            elapsed_ms: now.saturating_duration_since(self.started).as_millis() as u64,
            deadline_ms: self
                .budget
                .map(|b| b.as_millis() as u64)
                .unwrap_or(u64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires_and_has_no_remaining() {
        let t0 = Instant::now();
        let d = Deadline::unbounded(t0);
        assert!(!d.expired(t0 + Duration::from_secs(3600)));
        assert_eq!(d.remaining(t0), None);
    }

    #[test]
    fn bounded_expires_exactly_past_the_budget() {
        let t0 = Instant::now();
        let d = Deadline::after(t0, Duration::from_millis(10));
        assert!(!d.expired(t0));
        assert!(!d.expired(t0 + Duration::from_millis(10)));
        assert!(d.expired(t0 + Duration::from_millis(11)));
        assert_eq!(
            d.remaining(t0 + Duration::from_millis(4)),
            Some(Duration::from_millis(6))
        );
        assert_eq!(
            d.remaining(t0 + Duration::from_secs(1)),
            Some(Duration::ZERO)
        );
        let fault = d.fault(t0 + Duration::from_millis(25));
        assert!(matches!(
            fault,
            FaultKind::DeadlineExceeded {
                elapsed_ms: 25,
                deadline_ms: 10
            }
        ));
        assert!(!fault.content_derived());
    }
}
