//! Property test: the `METRICS` text exposition is lossless.
//!
//! Generates arbitrary reports, renders them through the same path the
//! admin verb uses, and asserts the parse reconstructs the exact report —
//! floats included, because the exposition uses Rust's shortest
//! round-trip float formatting.

use proptest::prelude::*;
use soteria_serve::admin::parse_metrics_response;
use soteria_telemetry::{CounterStats, GaugeStats, MetricsReport, SpanStats};

fn counters() -> impl Strategy<Value = Vec<CounterStats>> {
    proptest::collection::vec((0u32..100, 0u64..u64::MAX), 0..8).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(id, value)| CounterStats {
                name: format!("prop.counter.{id}"),
                value,
            })
            .collect()
    })
}

fn gauges() -> impl Strategy<Value = Vec<GaugeStats>> {
    proptest::collection::vec((0u32..100, i64::MIN..i64::MAX), 0..8).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(id, value)| GaugeStats {
                name: format!("prop.gauge.{id}"),
                value,
            })
            .collect()
    })
}

fn spans() -> impl Strategy<Value = Vec<SpanStats>> {
    let span = (
        (0u32..100, 1u64..1_000_000, 0.0f64..1e9),
        (
            0.0f64..1e9,
            0.0f64..1e9,
            0.0f64..1e9,
            0.0f64..1e9,
            0.0f64..1e9,
        ),
    )
        .prop_map(
            |((id, count, total_ms), (min_ms, max_ms, p50_ms, p90_ms, p95_ms))| {
                SpanStats {
                    name: format!("prop.span.{id}"),
                    count,
                    total_ms,
                    // The exposition omits the mean and recomputes it as
                    // total/count on parse; mirror that here so equality of
                    // the whole struct is the property under test.
                    mean_ms: total_ms / count as f64,
                    min_ms,
                    max_ms,
                    p50_ms,
                    p90_ms,
                    p95_ms,
                    p99_ms: max_ms,
                }
            },
        );
    proptest::collection::vec(span, 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposition_round_trips_bit_identically(
        counters in counters(),
        gauges in gauges(),
        spans in spans(),
    ) {
        let report = MetricsReport { counters, gauges, spans };
        // The admin METRICS response is render_text plus the terminator.
        let wire = format!("{}# EOF", report.render_text());
        let parsed = parse_metrics_response(&wire).expect("well-formed exposition parses");
        prop_assert_eq!(parsed, report);
    }
}
