//! Workspace-wide observability: lock-free counters, log-linear latency
//! histograms, gauges, RAII span timers, a sampled event ring, and
//! per-request traces.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Recording never touches any RNG and never feeds
//!    back into computation, so enabling or disabling telemetry cannot
//!    change a verdict, a loss, or a feature vector (there is a test for
//!    this in `soteria`). Sampling decisions are pure functions of
//!    `(key, seed, rate)` — see [`sample_decision`].
//! 2. **Mutex-free hot path.** [`counter`], [`record`], the gauges, and
//!    the event ring touch only atomics (plus a one-time allocation when
//!    a name is first interned). The only mutex in the crate guards the
//!    finished-trace sink, which is written once per *sampled request*,
//!    never per stage.
//! 3. **Cheap when off.** With recording disabled every call reduces to
//!    a thread-local read plus one relaxed atomic load, and allocates
//!    nothing (`tests/alloc_free.rs` asserts this with a counting
//!    allocator).
//! 4. **No new dependencies.** Built on `std` atomics + `serde`, which
//!    the workspace already carries.
//!
//! # Usage
//!
//! ```
//! use soteria_telemetry as telemetry;
//!
//! telemetry::counter("samples.analyzed", 3);
//! {
//!     let _span = telemetry::span("pipeline.analyze");
//!     // ... timed work ...
//! } // duration recorded on drop, in milliseconds
//! let report = telemetry::snapshot();
//! assert_eq!(report.counter("samples.analyzed"), Some(3));
//! assert!(report.span("pipeline.analyze").is_some());
//! ```
//!
//! Span names are dot-separated paths (`features.extract.walks`); the
//! summary table and JSON export sort by name, so related spans group
//! together.
//!
//! # Registries and scoping
//!
//! All free functions act on the *active* registry: the top of a
//! thread-local stack, falling back to a process-wide default. Tests
//! create an isolated registry with [`scoped`] (so they run in parallel
//! without a lock), and hand it to worker threads via
//! [`ScopedRegistry::handle`] + [`RegistryHandle::attach`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod hist;
mod registry;
mod report;
mod trace;

pub use events::EventRecord;
pub use registry::Registry;
pub use report::{CounterStats, GaugeStats, MetricsReport, SpanStats};
pub use trace::{flame_view, sample_decision, Trace, TraceBuilder, TraceStage};

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

thread_local! {
    /// Per-thread stack of scoped registries; the top is "active".
    static STACK: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` against the active registry without cloning the `Arc`.
fn with_active<R>(f: impl FnOnce(&Registry) -> R) -> R {
    STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            Some(reg) => f(reg),
            None => f(global()),
        }
    })
}

/// Pushes a fresh, isolated [`Registry`] as this thread's active
/// registry until the returned guard drops. Scopes nest (LIFO). The
/// guard is not `Send`: it must drop on the thread that created it.
///
/// This is how tests isolate their metrics from each other and run in
/// parallel — nothing they record reaches the process-wide registry.
pub fn scoped() -> ScopedRegistry {
    let reg = Arc::new(Registry::new());
    STACK.with(|s| s.borrow_mut().push(reg.clone()));
    ScopedRegistry {
        reg,
        _not_send: PhantomData,
    }
}

/// Guard returned by [`scoped`]; the scope ends when it drops.
pub struct ScopedRegistry {
    reg: Arc<Registry>,
    _not_send: PhantomData<*const ()>,
}

impl ScopedRegistry {
    /// A handle to this scope's registry, for attaching worker threads.
    pub fn handle(&self) -> RegistryHandle {
        RegistryHandle(Some(self.reg.clone()))
    }
}

impl std::ops::Deref for ScopedRegistry {
    type Target = Registry;

    fn deref(&self) -> &Registry {
        &self.reg
    }
}

impl Drop for ScopedRegistry {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|r| Arc::ptr_eq(r, &self.reg)) {
                stack.remove(pos);
            }
        });
    }
}

/// A cloneable, sendable reference to a registry, used to carry the
/// caller's active registry into spawned threads: capture
/// [`RegistryHandle::current`] before spawning, then [`attach`] inside
/// the thread.
///
/// [`attach`]: RegistryHandle::attach
#[derive(Clone)]
pub struct RegistryHandle(Option<Arc<Registry>>);

impl RegistryHandle {
    /// The calling thread's active registry (`None` means the process
    /// default, which every thread already sees — attaching is then a
    /// no-op).
    pub fn current() -> RegistryHandle {
        RegistryHandle(STACK.with(|s| s.borrow().last().cloned()))
    }

    /// Makes this handle's registry the calling thread's active registry
    /// until the returned guard drops (not `Send`; drop it on the same
    /// thread).
    pub fn attach(&self) -> AttachGuard {
        let active = match &self.0 {
            Some(reg) => {
                STACK.with(|s| s.borrow_mut().push(reg.clone()));
                Some(reg.clone())
            }
            None => None,
        };
        AttachGuard {
            reg: active,
            _not_send: PhantomData,
        }
    }
}

/// Guard returned by [`RegistryHandle::attach`].
pub struct AttachGuard {
    reg: Option<Arc<Registry>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if let Some(reg) = self.reg.take() {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|r| Arc::ptr_eq(r, &reg)) {
                    stack.remove(pos);
                }
            });
        }
    }
}

/// Enables or disables all recording on the active registry.
pub fn set_enabled(enabled: bool) {
    with_active(|r| r.set_enabled(enabled));
}

/// Whether recording is currently enabled on the active registry.
pub fn enabled() -> bool {
    with_active(|r| r.enabled())
}

/// Adds `delta` to the named monotonic counter. Lock-free: an FNV probe
/// to the interned cell plus one relaxed striped `fetch_add`.
pub fn counter(name: &str, delta: u64) {
    with_active(|r| {
        if r.enabled() {
            r.counter(name, delta);
        }
    });
}

/// Records one raw histogram observation under `name` (same stream the
/// span timers write their millisecond durations to). Lock-free.
pub fn record(name: &str, value: f64) {
    with_active(|r| {
        if r.enabled() {
            r.record(name, value);
        }
    });
}

/// Sets the named gauge to an absolute value (instantaneous state such
/// as a thread-pool size). Lock-free.
pub fn gauge_set(name: &str, value: i64) {
    with_active(|r| {
        if r.enabled() {
            r.gauge_set(name, value);
        }
    });
}

/// Adds `delta` (possibly negative) to the named gauge — the increment/
/// decrement form used for queue depth and in-flight tracking. Lock-free.
pub fn gauge_add(name: &str, delta: i64) {
    with_active(|r| {
        if r.enabled() {
            r.gauge_add(name, delta);
        }
    });
}

/// Records a sampled diagnostic event into the bounded lock-free ring.
pub fn event(name: &str, value: f64) {
    with_active(|r| {
        if !r.enabled() {
            return;
        }
        if let Some(slot) = r.intern_event(name) {
            let time_us = r.epoch.elapsed().as_micros() as u64;
            r.events.try_push(time_us, slot as u64, value);
        }
    });
}

/// Configures event-ring admission sampling on the active registry
/// (`rate` clamped to `[0, 1]`; decisions are a pure function of the
/// attempt index and `seed`).
pub fn set_event_sampling(rate: f64, seed: u64) {
    with_active(|r| r.events.configure(rate, seed));
}

/// Snapshots the event ring, oldest first, with names resolved.
pub fn events_snapshot() -> Vec<EventRecord> {
    with_active(|r| {
        r.events
            .collect()
            .into_iter()
            .map(|e| EventRecord {
                seq: e.seq,
                time_us: e.time_us,
                name: r
                    .node(e.name_slot as usize)
                    .map(|n| n.name.clone())
                    .unwrap_or_default(),
                value: e.value,
            })
            .collect()
    })
}

/// Publishes a finished trace into the active registry's bounded sink
/// (dropped when recording is disabled).
pub fn publish_trace(trace: Trace) {
    with_active(|r| {
        if r.enabled() {
            r.traces.publish(trace);
        }
    });
}

/// Up to `n` most recent finished traces, oldest first.
pub fn recent_traces(n: usize) -> Vec<Trace> {
    with_active(|r| r.traces.recent(n))
}

/// Number of traces currently retained.
pub fn trace_count() -> usize {
    with_active(|r| r.traces.len())
}

/// Operations dropped by the active registry (name-table exhaustion or a
/// name reused with a different metric kind).
pub fn dropped_ops() -> u64 {
    with_active(|r| r.dropped_ops())
}

/// Events lost to ring wrap-around in the active registry. Monotone over
/// the registry's lifetime (a snapshot reset does not rewind it), so a
/// non-zero value means the event ring has been saturated at least once.
pub fn events_overflow() -> u64 {
    with_active(|r| r.events_overflow())
}

/// Starts an RAII span timer; the elapsed wall time in milliseconds is
/// recorded under `name` when the guard drops. The guard pins the
/// registry that was active at creation, so it can safely drop on
/// another thread. Disabled telemetry returns an inert guard without
/// allocating.
pub fn span(name: &str) -> Span {
    STACK.with(|s| {
        let stack = s.borrow();
        let reg = match stack.last() {
            Some(reg) => reg,
            None => global(),
        };
        if !reg.enabled() {
            return Span { active: None };
        }
        match reg.hist_slot(name) {
            Some(slot) => Span {
                active: Some(SpanTarget {
                    reg: reg.clone(),
                    slot,
                    start: Instant::now(),
                }),
            },
            None => Span { active: None },
        }
    })
}

struct SpanTarget {
    reg: Arc<Registry>,
    slot: usize,
    start: Instant,
}

/// Guard returned by [`span`]. Records on drop; [`Span::cancel`] discards
/// the measurement instead.
#[must_use = "a span records its duration when dropped; binding it to `_` drops immediately"]
pub struct Span {
    active: Option<SpanTarget>,
}

impl Span {
    /// Discards the measurement.
    pub fn cancel(mut self) {
        self.active = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t) = self.active.take() {
            t.reg
                .record_at(t.slot, t.start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Clears the active registry's counters, histograms, events, and traces
/// (gauges mirror live state and are left alone; the enabled flag is
/// unchanged). Race-safe: recording from other threads may land on
/// either side of the reset but is never torn.
pub fn reset() {
    with_active(|r| r.reset());
}

/// Takes a point-in-time copy of everything recorded so far. Each metric
/// is read atomically; there is no cross-metric linearization point.
pub fn snapshot() -> MetricsReport {
    with_active(|r| r.snapshot())
}

/// Prints the summary table to stderr when `SOTERIA_METRICS=summary` is
/// set. Binaries call this once before exiting.
pub fn print_summary_if_requested() {
    if std::env::var("SOTERIA_METRICS").as_deref() == Ok("summary") {
        eprintln!("--- telemetry summary ---");
        eprint!("{}", snapshot().summary_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test pins its own scoped registry, so they run in parallel
    // with no shared state and no lock.

    #[test]
    fn counters_accumulate_and_reset() {
        let _scope = scoped();
        counter("t.a", 2);
        counter("t.a", 3);
        counter("t.b", 1);
        let report = snapshot();
        assert_eq!(report.counter("t.a"), Some(5));
        assert_eq!(report.counter("t.b"), Some(1));
        assert_eq!(report.counter("t.missing"), None);
        reset();
        // Zeroed counters drop out of the report, as before the rewrite.
        assert_eq!(snapshot().counter("t.a"), None);
    }

    #[test]
    fn histogram_aggregates_are_exact_and_quantiles_tight() {
        let _scope = scoped();
        // 1..=100 in scrambled order.
        for i in 0..100u64 {
            record("t.h", ((i * 37 + 11) % 100 + 1) as f64);
        }
        let report = snapshot();
        let s = report.span("t.h").expect("histogram exists");
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.total_ms, 5050.0);
        assert_eq!(s.mean_ms, 50.5);
        // Nearest-rank targets 51 / 90 / 95 / 99; the log-linear buckets
        // answer within their ~1.6% resolution.
        for (got, want) in [
            (s.p50_ms, 51.0),
            (s.p90_ms, 90.0),
            (s.p95_ms, 95.0),
            (s.p99_ms, 99.0),
        ] {
            let rel = (got - want).abs() / want;
            assert!(rel < 0.02, "quantile {got} vs {want}: rel err {rel}");
        }
    }

    #[test]
    fn events_overflow_counts_wrapped_writes() {
        let _scope = scoped();
        assert_eq!(events_overflow(), 0);
        // The ring holds 1024 events; 1100 writes lose the oldest 76.
        for i in 0..1100u64 {
            event("t.overflow", i as f64);
        }
        assert_eq!(events_overflow(), 76);
        reset();
        assert_eq!(events_overflow(), 76, "monotone across resets");
    }

    #[test]
    fn span_records_on_drop_and_cancel_discards() {
        let _scope = scoped();
        {
            let _s = span("t.span");
        }
        span("t.cancelled").cancel();
        let report = snapshot();
        assert_eq!(report.span("t.span").map(|s| s.count), Some(1));
        assert!(report.span("t.span").expect("exists").total_ms >= 0.0);
        assert!(report.span("t.cancelled").is_none());
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _scope = scoped();
        set_enabled(false);
        counter("t.off", 1);
        record("t.off.h", 1.0);
        gauge_set("t.off.g", 5);
        event("t.off.e", 1.0);
        let s = span("t.off.span");
        drop(s);
        set_enabled(true);
        let report = snapshot();
        assert_eq!(report.counter("t.off"), None);
        assert!(report.span("t.off.h").is_none());
        assert_eq!(report.gauge("t.off.g"), None);
        assert!(report.span("t.off.span").is_none());
        assert!(events_snapshot().is_empty());
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let scope = scoped();
        let handle = scope.handle();
        std::thread::scope(|s| {
            for t in 0..8 {
                let handle = handle.clone();
                s.spawn(move || {
                    let _attach = handle.attach();
                    for i in 0..1000u64 {
                        counter("t.conc", 1);
                        record("t.conc.h", (t * 1000 + i) as f64);
                    }
                });
            }
        });
        let report = snapshot();
        assert_eq!(report.counter("t.conc"), Some(8000));
        let h = report.span("t.conc.h").expect("histogram exists");
        assert_eq!(h.count, 8000);
        assert_eq!(h.min_ms, 0.0);
        assert_eq!(h.max_ms, 7999.0);
        // Small-integer sums are order-independent in f64, so the striped
        // sum is exact regardless of interleaving.
        assert_eq!(h.total_ms, (7999.0 * 8000.0) / 2.0);
    }

    #[test]
    fn scoped_registries_isolate_and_nest() {
        let outer = scoped();
        counter("t.scope", 1);
        {
            let _inner = scoped();
            counter("t.scope", 10);
            assert_eq!(snapshot().counter("t.scope"), Some(10));
        }
        assert_eq!(snapshot().counter("t.scope"), Some(1));
        drop(outer);
    }

    #[test]
    fn spans_survive_scope_teardown_on_other_threads() {
        // A span created under a scope pins that registry, so dropping it
        // after the scope ends must not panic or write elsewhere.
        let s = {
            let _scope = scoped();
            span("t.pin")
        };
        drop(s);
    }

    #[test]
    fn gauges_track_instantaneous_state() {
        let _scope = scoped();
        gauge_add("t.depth", 3);
        gauge_add("t.depth", -1);
        gauge_set("t.threads", 8);
        let report = snapshot();
        assert_eq!(report.gauge("t.depth"), Some(2));
        assert_eq!(report.gauge("t.threads"), Some(8));
        // Reset leaves gauges alone: they mirror live state.
        reset();
        assert_eq!(snapshot().gauge("t.threads"), Some(8));
    }

    #[test]
    fn events_flow_through_the_ring() {
        let _scope = scoped();
        event("t.ev", 1.5);
        event("t.ev", 2.5);
        let events = events_snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "t.ev");
        assert_eq!(events[0].value, 1.5);
        assert!(events[0].seq < events[1].seq);
        reset();
        assert!(events_snapshot().is_empty());
    }

    #[test]
    fn traces_publish_and_expose() {
        let _scope = scoped();
        let mut b = TraceBuilder::new(7);
        let root = b.begin("request", None);
        b.end(root);
        publish_trace(b.finish());
        assert_eq!(trace_count(), 1);
        let traces = recent_traces(10);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].id, 7);
        reset();
        assert_eq!(trace_count(), 0);
    }

    #[test]
    fn kind_conflicts_are_counted_not_corrupting() {
        let _scope = scoped();
        counter("t.kind", 1);
        record("t.kind", 2.0); // same name, different kind → dropped
        let report = snapshot();
        assert_eq!(report.counter("t.kind"), Some(1));
        assert!(report.span("t.kind").is_none());
        assert!(dropped_ops() >= 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let _scope = scoped();
        counter("t.json", 7);
        gauge_set("t.json.g", -2);
        record("t.json.h", 1.25);
        record("t.json.h", 2.5);
        let report = snapshot();
        let json = report.to_json().expect("serializes");
        let back: MetricsReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn exposition_round_trips_from_live_snapshot() {
        let _scope = scoped();
        counter("t.expo", 3);
        gauge_add("t.expo.g", 4);
        record("t.expo.h", 0.125);
        record("t.expo.h", 7.5);
        let report = snapshot();
        let back = MetricsReport::parse_text(&report.render_text()).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn summary_table_lists_everything() {
        let _scope = scoped();
        counter("t.table.c", 4);
        gauge_set("t.table.g", 2);
        record("t.table.h", 3.0);
        let table = snapshot().summary_table();
        assert!(table.contains("t.table.c"));
        assert!(table.contains("t.table.g"));
        assert!(table.contains("t.table.h"));
        let empty = scoped();
        assert!(snapshot().summary_table().contains("no metrics"));
        drop(empty);
    }

    #[test]
    fn large_histograms_keep_aggregates_exact() {
        let _scope = scoped();
        let n = 100_000u64;
        for i in 0..n {
            record("t.cap", i as f64);
        }
        let report = snapshot();
        let h = report.span("t.cap").expect("histogram exists");
        assert_eq!(h.count, n);
        assert_eq!(h.max_ms, (n - 1) as f64);
        assert_eq!(h.total_ms, (n * (n - 1) / 2) as f64);
    }
}
