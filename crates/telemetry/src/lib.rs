//! Workspace-wide observability: counters, latency histograms, and RAII
//! span timers behind one thread-safe global registry.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Recording never touches any RNG and never feeds
//!    back into computation, so enabling or disabling telemetry cannot
//!    change a verdict, a loss, or a feature vector (there is a test for
//!    this in `soteria`).
//! 2. **Cheap when off.** [`set_enabled`]`(false)` reduces every
//!    recording call to one relaxed atomic load.
//! 3. **No new dependencies.** Built on `parking_lot` + `serde`, which
//!    the workspace already carries.
//!
//! # Usage
//!
//! ```
//! use soteria_telemetry as telemetry;
//!
//! telemetry::counter("samples.analyzed", 3);
//! {
//!     let _span = telemetry::span("pipeline.analyze");
//!     // ... timed work ...
//! } // duration recorded on drop, in milliseconds
//! let report = telemetry::snapshot();
//! assert_eq!(report.counter("samples.analyzed"), Some(3));
//! assert!(report.span("pipeline.analyze").is_some());
//! ```
//!
//! Span names are dot-separated paths (`features.extract.walks`); the
//! summary table and JSON export sort by name, so related spans group
//! together.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Raw samples kept per histogram for quantile estimation. Aggregates
/// (count/sum/min/max) stay exact past the cap; quantiles then describe
/// the first `SAMPLE_CAP` observations.
const SAMPLE_CAP: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(true);
static REGISTRY: Mutex<Option<Inner>> = Mutex::new(None);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Default)]
struct Histogram {
    samples: Vec<f64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(value);
        }
    }

    fn entry(&self, name: &str) -> SpanStats {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        SpanStats {
            name: name.to_string(),
            count: self.count,
            total_ms: self.sum,
            mean_ms: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            min_ms: if self.count == 0 { 0.0 } else { self.min },
            max_ms: if self.count == 0 { 0.0 } else { self.max },
            p50_ms: quantile(&sorted, 0.50),
            p90_ms: quantile(&sorted, 0.90),
            p99_ms: quantile(&sorted, 0.99),
        }
    }
}

/// Nearest-rank quantile over an ascending slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn with_inner<R>(f: impl FnOnce(&mut Inner) -> R) -> R {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Inner::default))
}

/// Globally enables or disables all recording.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to the named monotonic counter.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Records one raw histogram observation under `name` (same stream the
/// span timers write their millisecond durations to).
pub fn record(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_inner(|inner| {
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    });
}

/// Starts an RAII span timer; the elapsed wall time in milliseconds is
/// recorded under `name` when the guard drops.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    Span {
        active: Some((name.to_string(), Instant::now())),
    }
}

/// Guard returned by [`span`]. Records on drop; [`Span::cancel`] discards
/// the measurement instead.
#[must_use = "a span records its duration when dropped; binding it to `_` drops immediately"]
pub struct Span {
    active: Option<(String, Instant)>,
}

impl Span {
    /// Discards the measurement.
    pub fn cancel(mut self) {
        self.active = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.active.take() {
            record(&name, start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Clears all recorded metrics (the enabled flag is unchanged).
pub fn reset() {
    *REGISTRY.lock() = None;
}

/// Takes a consistent copy of everything recorded so far.
pub fn snapshot() -> MetricsReport {
    with_inner(|inner| MetricsReport {
        counters: inner
            .counters
            .iter()
            .map(|(name, value)| CounterStats {
                name: name.clone(),
                value: *value,
            })
            .collect(),
        spans: inner
            .histograms
            .iter()
            .map(|(name, h)| h.entry(name))
            .collect(),
    })
}

/// A point-in-time export of the registry. Serializes to stable JSON:
/// both lists are sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Monotonic counters.
    pub counters: Vec<CounterStats>,
    /// Histogram/span statistics (milliseconds for span-recorded names).
    pub spans: Vec<SpanStats>,
}

/// One counter in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStats {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Summary statistics for one histogram in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub total_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Smallest observation.
    pub min_ms: f64,
    /// Largest observation.
    pub max_ms: f64,
    /// Median (nearest rank).
    pub p50_ms: f64,
    /// 90th percentile (nearest rank).
    pub p90_ms: f64,
    /// 99th percentile (nearest rank).
    pub p99_ms: f64,
}

impl MetricsReport {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up span statistics by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the serializer's message (the report model cannot actually
    /// fail to serialize).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Writes the report as pretty JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path on I/O failure.
    pub fn write_json(&self, path: &std::path::Path) -> Result<(), String> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Renders a human-readable summary table (spans first, then
    /// counters; empty sections are omitted).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>11} {:>11} {:>11} {:>11} {:>12}\n",
                "span", "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "total_ms"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>12.1}\n",
                    s.name, s.count, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms, s.total_ms
                ));
            }
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<44} {:>12}\n", "counter", "value"));
            for c in &self.counters {
                out.push_str(&format!("{:<44} {:>12}\n", c.name, c.value));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Prints the summary table to stderr when `SOTERIA_METRICS=summary` is
/// set. Binaries call this once before exiting.
pub fn print_summary_if_requested() {
    if std::env::var("SOTERIA_METRICS").as_deref() == Ok("summary") {
        eprintln!("--- telemetry summary ---");
        eprint!("{}", snapshot().summary_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is global, so tests that reset it must not run
    /// concurrently with each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_accumulate_and_reset() {
        let _l = TEST_LOCK.lock();
        reset();
        counter("t.a", 2);
        counter("t.a", 3);
        counter("t.b", 1);
        let report = snapshot();
        assert_eq!(report.counter("t.a"), Some(5));
        assert_eq!(report.counter("t.b"), Some(1));
        assert_eq!(report.counter("t.missing"), None);
        reset();
        assert_eq!(snapshot().counter("t.a"), None);
    }

    #[test]
    fn histogram_quantiles_are_exact() {
        let _l = TEST_LOCK.lock();
        reset();
        // 1..=100 in scrambled order: quantiles are known exactly.
        for i in 0..100u64 {
            record("t.h", ((i * 37 + 11) % 100 + 1) as f64);
        }
        let report = snapshot();
        let s = report.span("t.h").expect("histogram exists");
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.total_ms, 5050.0);
        assert_eq!(s.mean_ms, 50.5);
        // Nearest-rank: index round(0.5 * 99) = 50 of the ascending
        // 1..=100 sequence.
        assert_eq!(s.p50_ms, 51.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p99_ms, 99.0);
    }

    #[test]
    fn span_records_on_drop_and_cancel_discards() {
        let _l = TEST_LOCK.lock();
        reset();
        {
            let _s = span("t.span");
        }
        span("t.cancelled").cancel();
        let report = snapshot();
        assert_eq!(report.span("t.span").map(|s| s.count), Some(1));
        assert!(report.span("t.span").unwrap().total_ms >= 0.0);
        assert!(report.span("t.cancelled").is_none());
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _l = TEST_LOCK.lock();
        reset();
        set_enabled(false);
        counter("t.off", 1);
        record("t.off.h", 1.0);
        let _s = span("t.off.span");
        drop(_s);
        set_enabled(true);
        let report = snapshot();
        assert_eq!(report.counter("t.off"), None);
        assert!(report.span("t.off.h").is_none());
        assert!(report.span("t.off.span").is_none());
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let _l = TEST_LOCK.lock();
        reset();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    for i in 0..1000u64 {
                        counter("t.conc", 1);
                        record("t.conc.h", (t * 1000 + i) as f64);
                    }
                });
            }
        });
        let report = snapshot();
        assert_eq!(report.counter("t.conc"), Some(8000));
        let h = report.span("t.conc.h").unwrap();
        assert_eq!(h.count, 8000);
        assert_eq!(h.min_ms, 0.0);
        assert_eq!(h.max_ms, 7999.0);
        // Sum of 0..8000 regardless of interleaving.
        assert_eq!(h.total_ms, (7999.0 * 8000.0) / 2.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let _l = TEST_LOCK.lock();
        reset();
        counter("t.json", 7);
        record("t.json.h", 1.25);
        record("t.json.h", 2.5);
        let report = snapshot();
        let json = report.to_json().unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn summary_table_lists_everything() {
        let _l = TEST_LOCK.lock();
        reset();
        counter("t.table.c", 4);
        record("t.table.h", 3.0);
        let table = snapshot().summary_table();
        assert!(table.contains("t.table.c"));
        assert!(table.contains("t.table.h"));
        reset();
        assert!(snapshot().summary_table().contains("no metrics"));
    }

    #[test]
    fn sample_cap_keeps_aggregates_exact() {
        let _l = TEST_LOCK.lock();
        reset();
        let n = (SAMPLE_CAP + 100) as u64;
        for i in 0..n {
            record("t.cap", i as f64);
        }
        let report = snapshot();
        let h = report.span("t.cap").unwrap();
        assert_eq!(h.count, n);
        assert_eq!(h.max_ms, (n - 1) as f64);
        assert_eq!(h.total_ms, (n * (n - 1) / 2) as f64);
    }
}
