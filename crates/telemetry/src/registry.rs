//! The metric registry: a fixed-capacity, lock-free interning table from
//! metric name to typed metric cell.
//!
//! The hot path (`counter` / `record` / gauge updates) is mutex-free: a
//! name lookup is an FNV hash plus a linear probe over `OnceLock` slots
//! (each probe is one `Acquire` load), and the metric update itself is a
//! relaxed atomic op on the found cell. First use of a new name allocates
//! its node once; every later hit is allocation-free.
//!
//! Counters are striped across [`STRIPES`] cache-line-padded cells chosen
//! by a per-thread index, so eight threads hammering one counter touch
//! eight different cache lines; a snapshot sums the stripes.

use crate::events::EventRing;
use crate::hist::Hist;
use crate::report::{CounterStats, GaugeStats, MetricsReport, SpanStats};
use crate::trace::TraceSink;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Slots in the interning table. Power of two; at a fill ratio past ~75%
/// probes lengthen, but the workspace registers well under 200 names.
const TABLE_CAP: usize = 2048;

/// Stripes per counter / histogram sum (power of two).
pub(crate) const STRIPES: usize = 8;

/// A cache-line-padded atomic cell (avoids false sharing between stripes).
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

/// Monotonic source of per-thread stripe indices.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// This thread's stripe index, assigned round-robin on first use.
pub(crate) fn stripe_id() -> usize {
    STRIPE.with(|s| {
        let mut id = s.get();
        if id == usize::MAX {
            id = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
            s.set(id);
        }
        id
    })
}

/// FNV-1a over the metric name.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What kind of metric a name refers to. One name maps to exactly one
/// kind; reusing a name with a different kind drops the operation (and
/// counts it in [`Registry::dropped_ops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Histogram,
    Gauge,
    Event,
}

/// A monotonic counter striped over padded cells.
pub(crate) struct Striped {
    cells: [PaddedU64; STRIPES],
}

impl Striped {
    fn new() -> Striped {
        Striped {
            cells: std::array::from_fn(|_| PaddedU64::default()),
        }
    }

    fn add(&self, delta: u64) {
        self.cells[stripe_id()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// The typed payload of one interned name.
pub(crate) enum Metric {
    Counter(Box<Striped>),
    Histogram(Box<Hist>),
    Gauge(AtomicI64),
    /// Event names carry no aggregate; the ring buffer stores occurrences.
    Event,
}

impl Metric {
    fn new(kind: Kind) -> Metric {
        match kind {
            Kind::Counter => Metric::Counter(Box::new(Striped::new())),
            Kind::Histogram => Metric::Histogram(Box::new(Hist::new())),
            Kind::Gauge => Metric::Gauge(AtomicI64::new(0)),
            Kind::Event => Metric::Event,
        }
    }

    fn kind(&self) -> Kind {
        match self {
            Metric::Counter(_) => Kind::Counter,
            Metric::Histogram(_) => Kind::Histogram,
            Metric::Gauge(_) => Kind::Gauge,
            Metric::Event => Kind::Event,
        }
    }
}

/// One interned name plus its metric cell.
pub(crate) struct Node {
    pub(crate) name: String,
    pub(crate) metric: Metric,
}

/// An isolated metric registry. The process-wide default lives behind the
/// crate's free functions; tests and embedders can create their own with
/// [`Registry::new`] and install it per-thread via
/// [`RegistryHandle::attach`](crate::RegistryHandle::attach).
pub struct Registry {
    slots: Box<[OnceLock<Node>]>,
    /// Operations dropped because the table was full or a name was reused
    /// with a different metric kind.
    dropped: AtomicU64,
    enabled: AtomicBool,
    /// Creation instant; event timestamps are microseconds since this.
    pub(crate) epoch: Instant,
    pub(crate) traces: TraceSink,
    pub(crate) events: EventRing,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Registry {
        Registry {
            slots: (0..TABLE_CAP).map(|_| OnceLock::new()).collect(),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            traces: TraceSink::new(),
            events: EventRing::new(),
        }
    }

    /// Whether recording is enabled for this registry.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables all recording into this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Operations dropped by table exhaustion or kind conflicts.
    pub fn dropped_ops(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around (monotone; see the events module).
    pub fn events_overflow(&self) -> u64 {
        self.events.overflow()
    }

    /// Interns `name` as `kind` and returns its slot index. Lock-free on
    /// the hit path; first use of a name allocates its node (losing an
    /// insertion race allocates a node that is immediately discarded,
    /// which is harmless and rare).
    pub(crate) fn intern(&self, name: &str, kind: Kind) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = (fnv1a(name) as usize) & mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[i];
            if slot.get().is_none() {
                let _ = slot.set(Node {
                    name: name.to_owned(),
                    metric: Metric::new(kind),
                });
            }
            let node = slot.get().expect("slot initialized above");
            if node.name == name {
                if node.metric.kind() == kind {
                    return Some(i);
                }
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            i = (i + 1) & mask;
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// The node at a slot index previously returned by [`intern`].
    pub(crate) fn node(&self, slot: usize) -> Option<&Node> {
        self.slots.get(slot).and_then(|s| s.get())
    }

    /// Adds `delta` to the named counter.
    pub(crate) fn counter(&self, name: &str, delta: u64) {
        if let Some(i) = self.intern(name, Kind::Counter) {
            if let Some(Node {
                metric: Metric::Counter(c),
                ..
            }) = self.node(i)
            {
                c.add(delta);
            }
        }
    }

    /// Records one histogram observation under `name`.
    pub(crate) fn record(&self, name: &str, value: f64) {
        if let Some(i) = self.intern(name, Kind::Histogram) {
            self.record_at(i, value);
        }
    }

    /// Interns an event name, returning its slot for the event ring.
    pub(crate) fn intern_event(&self, name: &str) -> Option<usize> {
        self.intern(name, Kind::Event)
    }

    /// Interns a histogram name, returning its slot for repeated
    /// hash-free recording (the span timers use this).
    pub(crate) fn hist_slot(&self, name: &str) -> Option<usize> {
        self.intern(name, Kind::Histogram)
    }

    /// Records into a histogram slot returned by [`hist_slot`].
    pub(crate) fn record_at(&self, slot: usize, value: f64) {
        if let Some(Node {
            metric: Metric::Histogram(h),
            ..
        }) = self.node(slot)
        {
            h.record(value);
        }
    }

    /// Sets the named gauge to an absolute value.
    pub(crate) fn gauge_set(&self, name: &str, value: i64) {
        if let Some(i) = self.intern(name, Kind::Gauge) {
            if let Some(Node {
                metric: Metric::Gauge(g),
                ..
            }) = self.node(i)
            {
                g.store(value, Ordering::Relaxed);
            }
        }
    }

    /// Adds `delta` (may be negative) to the named gauge.
    pub(crate) fn gauge_add(&self, name: &str, delta: i64) {
        if let Some(i) = self.intern(name, Kind::Gauge) {
            if let Some(Node {
                metric: Metric::Gauge(g),
                ..
            }) = self.node(i)
            {
                g.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }

    /// Takes a point-in-time copy of every metric. Each individual metric
    /// reads atomically; metrics recorded concurrently with the snapshot
    /// land on one side of it per metric (there is no cross-metric
    /// linearization point — and no lock that would provide one).
    pub fn snapshot(&self) -> MetricsReport {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut spans = Vec::new();
        for slot in self.slots.iter() {
            let Some(node) = slot.get() else { continue };
            // Zero-activity counters/histograms stay out of the report:
            // interning alone (e.g. a cancelled span) is not a metric.
            match &node.metric {
                Metric::Counter(c) => {
                    let value = c.sum();
                    if value == 0 {
                        continue;
                    }
                    counters.push(CounterStats {
                        name: node.name.clone(),
                        value,
                    });
                }
                Metric::Gauge(g) => gauges.push(GaugeStats {
                    name: node.name.clone(),
                    value: g.load(Ordering::Relaxed),
                }),
                Metric::Histogram(h) => {
                    let s = h.load();
                    if s.count == 0 {
                        continue;
                    }
                    spans.push(SpanStats {
                        name: node.name.clone(),
                        count: s.count,
                        total_ms: s.sum,
                        mean_ms: if s.count == 0 {
                            0.0
                        } else {
                            s.sum / s.count as f64
                        },
                        min_ms: s.min,
                        max_ms: s.max,
                        p50_ms: s.quantile(0.50),
                        p90_ms: s.quantile(0.90),
                        p95_ms: s.quantile(0.95),
                        p99_ms: s.quantile(0.99),
                    });
                }
                Metric::Event => {}
            }
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsReport {
            counters,
            gauges,
            spans,
        }
    }

    /// Clears counters and histograms (names stay interned), the event
    /// ring, and the trace sink. Gauges are *not* cleared: they mirror
    /// live state (queue depth, residency) that a metrics reset does not
    /// change. Race-safe: operations concurrent with a reset land on one
    /// side of it without tearing any metric, so no external lock is
    /// needed to call this while other threads record.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            let Some(node) = slot.get() else { continue };
            match &node.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Histogram(h) => h.reset(),
                Metric::Gauge(_) | Metric::Event => {}
            }
        }
        self.events.clear();
        self.traces.clear();
    }
}
