//! The snapshot model: what a registry looks like frozen at an instant,
//! plus its JSON and text-exposition serializations.
//!
//! The text exposition is a line protocol (one metric per line, space
//! separated) designed to round-trip exactly: floats render with Rust's
//! shortest-round-trip formatting, so `parse_text(render)` reconstructs
//! the identical snapshot — a property the serve admin tests assert by
//! proptest.

use serde::{Deserialize, Serialize};

/// A point-in-time export of a registry. Serializes to stable JSON: all
/// lists are sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Monotonic counters.
    pub counters: Vec<CounterStats>,
    /// Instantaneous gauges (absent in reports written by older builds).
    #[serde(default)]
    pub gauges: Vec<GaugeStats>,
    /// Histogram/span statistics (milliseconds for span-recorded names).
    pub spans: Vec<SpanStats>,
}

/// One counter in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStats {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeStats {
    /// Gauge name.
    pub name: String,
    /// Instantaneous value (signed: deltas may transiently dip below 0).
    pub value: i64,
}

/// Summary statistics for one histogram in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (exact).
    pub total_ms: f64,
    /// Arithmetic mean (exact).
    pub mean_ms: f64,
    /// Smallest observation (exact).
    pub min_ms: f64,
    /// Largest observation (exact).
    pub max_ms: f64,
    /// Median, within the ~1.6% bucket resolution.
    pub p50_ms: f64,
    /// 90th percentile, within the bucket resolution.
    pub p90_ms: f64,
    /// 95th percentile (absent in reports written by older builds).
    #[serde(default)]
    pub p95_ms: f64,
    /// 99th percentile, within the bucket resolution.
    pub p99_ms: f64,
}

impl MetricsReport {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up span statistics by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the serializer's message (the report model cannot actually
    /// fail to serialize).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Writes the report as pretty JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path on I/O failure.
    pub fn write_json(&self, path: &std::path::Path) -> Result<(), String> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Renders the text exposition: one metric per line,
    ///
    /// ```text
    /// counter <name> <value>
    /// gauge <name> <value>
    /// histogram <name> <count> <total> <min> <max> <p50> <p90> <p95> <p99>
    /// ```
    ///
    /// Floats use shortest-round-trip formatting, so [`parse_text`]
    /// reconstructs this exact report. Metric names contain no
    /// whitespace by construction (they are code literals).
    ///
    /// [`parse_text`]: MetricsReport::parse_text
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("counter {} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("gauge {} {}\n", g.name, g.value));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "histogram {} {} {} {} {} {} {} {} {}\n",
                s.name,
                s.count,
                s.total_ms,
                s.min_ms,
                s.max_ms,
                s.p50_ms,
                s.p90_ms,
                s.p95_ms,
                s.p99_ms
            ));
        }
        out
    }

    /// Parses the text exposition produced by [`render_text`]. Blank
    /// lines and `#`-prefixed comment lines are skipped; the mean is
    /// recomputed as `total / count` (bit-identical to how the snapshot
    /// computed it).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    ///
    /// [`render_text`]: MetricsReport::render_text
    pub fn parse_text(text: &str) -> Result<MetricsReport, String> {
        let mut report = MetricsReport {
            counters: Vec::new(),
            gauges: Vec::new(),
            spans: Vec::new(),
        };
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            match fields.first().copied() {
                Some("counter") => {
                    let [_, name, value] = fields[..] else {
                        return Err(bad("counter wants 2 fields"));
                    };
                    let value: u64 = value.parse().map_err(|_| bad("bad counter value"))?;
                    report.counters.push(CounterStats {
                        name: name.to_owned(),
                        value,
                    });
                }
                Some("gauge") => {
                    let [_, name, value] = fields[..] else {
                        return Err(bad("gauge wants 2 fields"));
                    };
                    let value: i64 = value.parse().map_err(|_| bad("bad gauge value"))?;
                    report.gauges.push(GaugeStats {
                        name: name.to_owned(),
                        value,
                    });
                }
                Some("histogram") => {
                    let [_, name, count, total, min, max, p50, p90, p95, p99] = fields[..] else {
                        return Err(bad("histogram wants 9 fields"));
                    };
                    let count: u64 = count.parse().map_err(|_| bad("bad histogram count"))?;
                    let f = |s: &str| -> Result<f64, String> {
                        s.parse().map_err(|_| bad("bad histogram float"))
                    };
                    let total = f(total)?;
                    report.spans.push(SpanStats {
                        name: name.to_owned(),
                        count,
                        total_ms: total,
                        mean_ms: if count == 0 {
                            0.0
                        } else {
                            total / count as f64
                        },
                        min_ms: f(min)?,
                        max_ms: f(max)?,
                        p50_ms: f(p50)?,
                        p90_ms: f(p90)?,
                        p95_ms: f(p95)?,
                        p99_ms: f(p99)?,
                    });
                }
                Some(other) => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
                None => {}
            }
        }
        Ok(report)
    }

    /// Renders a human-readable summary table (spans first, then gauges,
    /// then counters; empty sections are omitted).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>11} {:>11} {:>11} {:>11} {:>12}\n",
                "span", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "total_ms"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>12.1}\n",
                    s.name, s.count, s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.total_ms
                ));
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<44} {:>12}\n", "gauge", "value"));
            for g in &self.gauges {
                out.push_str(&format!("{:<44} {:>12}\n", g.name, g.value));
            }
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<44} {:>12}\n", "counter", "value"));
            for c in &self.counters {
                out.push_str(&format!("{:<44} {:>12}\n", c.name, c.value));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        MetricsReport {
            counters: vec![CounterStats {
                name: "t.c".into(),
                value: 42,
            }],
            gauges: vec![GaugeStats {
                name: "t.g".into(),
                value: -3,
            }],
            spans: vec![SpanStats {
                name: "t.h".into(),
                count: 3,
                total_ms: 6.75,
                mean_ms: 6.75 / 3.0,
                min_ms: 0.25,
                max_ms: 4.0,
                p50_ms: 2.5,
                p90_ms: 4.0,
                p95_ms: 4.0,
                p99_ms: 4.0,
            }],
        }
    }

    #[test]
    fn exposition_round_trips_exactly() {
        let report = sample();
        let text = report.render_text();
        let back = MetricsReport::parse_text(&text).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn exposition_skips_comments_and_rejects_garbage() {
        let ok = MetricsReport::parse_text("# comment\n\ncounter a 1\n").expect("parses");
        assert_eq!(ok.counter("a"), Some(1));
        assert!(MetricsReport::parse_text("counter a\n").is_err());
        assert!(MetricsReport::parse_text("blob a 1\n").is_err());
        assert!(MetricsReport::parse_text("histogram h 1 2 3\n").is_err());
        assert!(MetricsReport::parse_text("gauge g notanumber\n").is_err());
    }

    #[test]
    fn old_json_without_new_fields_still_parses() {
        let legacy = r#"{
            "counters": [{"name": "a", "value": 1}],
            "spans": [{
                "name": "h", "count": 1, "total_ms": 2.0, "mean_ms": 2.0,
                "min_ms": 2.0, "max_ms": 2.0, "p50_ms": 2.0, "p90_ms": 2.0,
                "p99_ms": 2.0
            }]
        }"#;
        let report: MetricsReport = serde_json::from_str(legacy).expect("legacy JSON parses");
        assert!(report.gauges.is_empty());
        assert_eq!(report.span("h").map(|s| s.p95_ms), Some(0.0));
    }

    #[test]
    fn summary_table_includes_gauges() {
        let table = sample().summary_table();
        assert!(table.contains("t.c"));
        assert!(table.contains("t.g"));
        assert!(table.contains("t.h"));
    }
}
