//! Per-request tracing: structured stage timelines built alongside a
//! request as it moves through a pipeline, published to a bounded sink.
//!
//! A [`TraceBuilder`] travels *with* the request (moved between stages,
//! never shared), so appending a stage is plain non-atomic work; the only
//! synchronized step is publishing the finished [`Trace`] into the
//! [`TraceSink`], which is off the per-stage hot path. Sampling decisions
//! are seeded and keyed ([`sample_decision`]), so the same request key
//! under the same seed always makes the same decision — traced and
//! untraced runs of the same workload stay bit-identical because tracing
//! only ever *observes* timestamps.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Retained finished traces; older traces are evicted first.
const TRACE_CAP: usize = 512;

/// SplitMix64 finalizer — the workspace's stateless hash-to-uniform mixer.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic sampling decision for `key` under `seed` at `rate`
/// (0.0 = never, 1.0 = always). Pure: no RNG state, no clock — the same
/// inputs always answer the same way, which is what keeps sampled runs
/// reproducible.
pub fn sample_decision(key: u64, seed: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    // A NaN rate samples nothing.
    if rate <= 0.0 || rate.is_nan() {
        return false;
    }
    let h = splitmix64(key ^ seed);
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// One stage being timed inside a [`TraceBuilder`].
struct BuildStage {
    name: &'static str,
    parent: Option<u32>,
    start: Instant,
    end: Option<Instant>,
}

/// Accumulates the stage timeline of one request. Moved along with the
/// request (no interior synchronization); call [`TraceBuilder::finish`]
/// at verdict time to freeze it into a [`Trace`].
pub struct TraceBuilder {
    id: u64,
    origin: Instant,
    stages: Vec<BuildStage>,
}

impl TraceBuilder {
    /// Starts a trace identified by `id`; the origin instant is now.
    pub fn new(id: u64) -> TraceBuilder {
        TraceBuilder {
            id,
            origin: Instant::now(),
            stages: Vec::with_capacity(8),
        }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a stage starting now; returns its index for [`end`] and for
    /// use as a `parent` of child stages.
    ///
    /// [`end`]: TraceBuilder::end
    pub fn begin(&mut self, name: &'static str, parent: Option<u32>) -> u32 {
        self.begin_at(name, parent, Instant::now())
    }

    /// Opens a stage with an explicit start instant (for intervals whose
    /// beginning was captured earlier, e.g. queue wait measured from the
    /// enqueue timestamp).
    pub fn begin_at(&mut self, name: &'static str, parent: Option<u32>, start: Instant) -> u32 {
        let idx = self.stages.len() as u32;
        self.stages.push(BuildStage {
            name,
            parent,
            start,
            end: None,
        });
        idx
    }

    /// Closes a stage now.
    pub fn end(&mut self, idx: u32) {
        self.end_at(idx, Instant::now());
    }

    /// Closes a stage at an explicit instant.
    pub fn end_at(&mut self, idx: u32, at: Instant) {
        if let Some(stage) = self.stages.get_mut(idx as usize) {
            stage.end = Some(at);
        }
    }

    /// Records an already-measured interval as a closed stage.
    pub fn stage(
        &mut self,
        name: &'static str,
        parent: Option<u32>,
        start: Instant,
        end: Instant,
    ) -> u32 {
        let idx = self.begin_at(name, parent, start);
        self.end_at(idx, end);
        idx
    }

    /// Freezes the timeline into an immutable [`Trace`]. Stages still
    /// open are closed now.
    pub fn finish(self) -> Trace {
        let now = Instant::now();
        let origin = self.origin;
        let ms = |i: Instant| i.saturating_duration_since(origin).as_secs_f64() * 1e3;
        let mut latest = now;
        let stages: Vec<TraceStage> = self
            .stages
            .iter()
            .map(|s| {
                let end = s.end.unwrap_or(now);
                if end > latest {
                    latest = end;
                }
                TraceStage {
                    name: s.name,
                    parent: s.parent,
                    start_ms: ms(s.start),
                    dur_ms: end.saturating_duration_since(s.start).as_secs_f64() * 1e3,
                }
            })
            .collect();
        Trace {
            id: self.id,
            total_ms: ms(latest),
            stages,
        }
    }
}

/// A finished per-request trace: an id plus its stage timeline, all
/// offsets in milliseconds relative to the trace origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Request trace id (the request key under the service seed).
    pub id: u64,
    /// Wall time from trace origin to the latest stage end.
    pub total_ms: f64,
    /// Stage timeline in creation order; `parent` indexes into this list.
    pub stages: Vec<TraceStage>,
}

/// One closed stage of a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStage {
    /// Stage name (a code literal, e.g. `"queue_wait"`).
    pub name: &'static str,
    /// Index of the parent stage, if any.
    pub parent: Option<u32>,
    /// Offset of the stage start from the trace origin.
    pub start_ms: f64,
    /// Stage duration.
    pub dur_ms: f64,
}

impl Trace {
    /// Serializes the trace as one JSON line (stage names are code
    /// literals and need no escaping).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.stages.len() * 64);
        out.push_str(&format!(
            "{{\"id\":\"{:016x}\",\"total_ms\":{},\"stages\":[",
            self.id, self.total_ms
        ));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match s.parent {
                Some(p) => out.push_str(&format!(
                    "{{\"name\":\"{}\",\"parent\":{p},\"start_ms\":{},\"dur_ms\":{}}}",
                    s.name, s.start_ms, s.dur_ms
                )),
                None => out.push_str(&format!(
                    "{{\"name\":\"{}\",\"parent\":null,\"start_ms\":{},\"dur_ms\":{}}}",
                    s.name, s.start_ms, s.dur_ms
                )),
            }
        }
        out.push_str("]}");
        out
    }

    /// The `parent;child` path of a stage (root first).
    fn path(&self, idx: u32) -> String {
        let mut parts: Vec<&'static str> = Vec::new();
        let mut cur = Some(idx);
        // Bounded walk: a well-formed trace has no parent cycles, but a
        // malformed one must not hang the renderer.
        for _ in 0..=self.stages.len() {
            let Some(i) = cur else { break };
            let Some(s) = self.stages.get(i as usize) else {
                break;
            };
            parts.push(s.name);
            cur = s.parent;
        }
        parts.reverse();
        parts.join(";")
    }
}

/// Renders an aggregated flame view of many traces: one row per distinct
/// `parent;child` stage path with occurrence count, total and mean
/// milliseconds. Rows sort by path, so siblings group under their parent.
pub fn flame_view(traces: &[Trace]) -> String {
    let mut agg: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for t in traces {
        for i in 0..t.stages.len() {
            let entry = agg.entry(t.path(i as u32)).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += t.stages[i].dur_ms;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>8} {:>12} {:>11}\n",
        "stage path", "count", "total_ms", "mean_ms"
    ));
    if agg.is_empty() {
        out.push_str("(no traces recorded)\n");
        return out;
    }
    for (path, (count, total)) in &agg {
        out.push_str(&format!(
            "{:<52} {:>8} {:>12.3} {:>11.3}\n",
            path,
            count,
            total,
            total / *count as f64
        ));
    }
    out
}

/// Bounded sink of finished traces. Publishing locks a mutex, but that
/// happens once per *sampled request* at verdict time — never inside a
/// stage — so the per-stage hot path stays lock-free.
pub(crate) struct TraceSink {
    inner: Mutex<VecDeque<Trace>>,
}

impl TraceSink {
    pub(crate) fn new() -> TraceSink {
        TraceSink {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Trace>> {
        // A panic while holding the lock poisons it; trace retention is
        // diagnostics, so recover the data rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn publish(&self, trace: Trace) {
        let mut q = self.lock();
        if q.len() >= TRACE_CAP {
            q.pop_front();
        }
        q.push_back(trace);
    }

    /// Up to `n` most recent traces, oldest first.
    pub(crate) fn recent(&self, n: usize) -> Vec<Trace> {
        let q = self.lock();
        let skip = q.len().saturating_sub(n);
        q.iter().skip(skip).cloned().collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }

    pub(crate) fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_monotone_in_rate() {
        for key in 0..64u64 {
            let a = sample_decision(key, 7, 0.3);
            let b = sample_decision(key, 7, 0.3);
            assert_eq!(a, b, "same inputs must agree");
            if a {
                assert!(
                    sample_decision(key, 7, 0.8),
                    "raising the rate never un-samples a key"
                );
            }
        }
        assert!(sample_decision(1, 2, 1.0));
        assert!(!sample_decision(1, 2, 0.0));
        assert!(!sample_decision(1, 2, f64::NAN));
    }

    #[test]
    fn sampling_rate_is_roughly_honoured() {
        let hits = (0..10_000u64)
            .filter(|&k| sample_decision(k, 99, 0.25))
            .count();
        assert!(
            (1_800..=3_200).contains(&hits),
            "0.25 rate sampled {hits}/10000"
        );
    }

    #[test]
    fn builder_produces_offsets_and_paths() {
        let mut b = TraceBuilder::new(0xabcd);
        let root = b.begin("request", None);
        let child = b.begin("extract", Some(root));
        b.end(child);
        b.end(root);
        let t = b.finish();
        assert_eq!(t.id, 0xabcd);
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[1].parent, Some(0));
        assert!(t.stages[1].start_ms >= t.stages[0].start_ms);
        assert!(t.total_ms >= t.stages[1].dur_ms);
        assert_eq!(t.path(1), "request;extract");
        let line = t.to_json_line();
        assert!(line.starts_with("{\"id\":\"000000000000abcd\""));
        assert!(line.contains("\"name\":\"extract\",\"parent\":0"));
    }

    #[test]
    fn sink_is_bounded_and_returns_recent() {
        let sink = TraceSink::new();
        for i in 0..(TRACE_CAP + 10) as u64 {
            let b = TraceBuilder::new(i);
            sink.publish(b.finish());
        }
        assert_eq!(sink.len(), TRACE_CAP);
        let recent = sink.recent(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[2].id, (TRACE_CAP + 9) as u64);
        sink.clear();
        assert_eq!(sink.len(), 0);
    }

    #[test]
    fn flame_view_aggregates_paths() {
        let mut traces = Vec::new();
        for i in 0..3 {
            let mut b = TraceBuilder::new(i);
            let r = b.begin("request", None);
            let c = b.begin("infer", Some(r));
            b.end(c);
            b.end(r);
            traces.push(b.finish());
        }
        let view = flame_view(&traces);
        assert!(view.contains("request;infer"));
        assert!(view.contains("stage path"));
        assert!(flame_view(&[]).contains("no traces"));
    }
}
