//! A bounded lock-free ring buffer of sampled diagnostic events.
//!
//! Writers claim a slot with one `fetch_add` and fill it with relaxed
//! atomic stores guarded by a per-slot sequence word (a seqlock in
//! miniature): readers accept a slot only when the sequence reads the
//! same non-zero ticket before and after the field loads, so a torn
//! read is detected and skipped rather than surfaced. The collection is
//! best-effort diagnostics by design — under pathological wrap-around
//! (exactly a multiple of the capacity between the two sequence loads) a
//! stale-but-consistent event could be returned, which is acceptable for
//! an event log and keeps the write path wait-free.
//!
//! Admission is governed by seeded sampling over a monotone attempt
//! counter, so an overloaded process degrades to a deterministic subset
//! of events instead of a lock convoy.

use std::sync::atomic::{AtomicU64, Ordering};

/// Ring capacity (power of two).
const RING_CAP: usize = 1024;

struct EventSlot {
    /// 0 = never written; otherwise the writer's ticket.
    seq: AtomicU64,
    time_us: AtomicU64,
    name_slot: AtomicU64,
    value_bits: AtomicU64,
}

impl EventSlot {
    fn new() -> EventSlot {
        EventSlot {
            seq: AtomicU64::new(0),
            time_us: AtomicU64::new(0),
            name_slot: AtomicU64::new(0),
            value_bits: AtomicU64::new(0),
        }
    }
}

/// The ring itself. One per [`Registry`](crate::Registry).
pub(crate) struct EventRing {
    slots: Box<[EventSlot]>,
    /// Next write ticket (starts at 1; 0 is the "empty" sentinel).
    head: AtomicU64,
    /// Admission attempts, the sampling key stream.
    attempts: AtomicU64,
    /// Sample rate as `f64` bits (default 1.0 = keep everything).
    rate_bits: AtomicU64,
    /// Sampling seed.
    seed: AtomicU64,
}

impl EventRing {
    pub(crate) fn new() -> EventRing {
        EventRing {
            slots: (0..RING_CAP).map(|_| EventSlot::new()).collect(),
            head: AtomicU64::new(1),
            attempts: AtomicU64::new(0),
            rate_bits: AtomicU64::new(1.0f64.to_bits()),
            seed: AtomicU64::new(0),
        }
    }

    /// Sets the admission sampling rate (clamped to `[0, 1]`) and seed.
    pub(crate) fn configure(&self, rate: f64, seed: u64) {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.rate_bits.store(rate.to_bits(), Ordering::Relaxed);
        self.seed.store(seed, Ordering::Relaxed);
    }

    /// Offers an event; returns whether sampling admitted it.
    pub(crate) fn try_push(&self, time_us: u64, name_slot: u64, value: f64) -> bool {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let rate = f64::from_bits(self.rate_bits.load(Ordering::Relaxed));
        if rate < 1.0 {
            let seed = self.seed.load(Ordering::Relaxed);
            if !crate::trace::sample_decision(attempt, seed, rate) {
                return false;
            }
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (RING_CAP - 1)];
        // Mark in-progress so readers reject the slot mid-write.
        slot.seq.store(0, Ordering::Release);
        slot.time_us.store(time_us, Ordering::Relaxed);
        slot.name_slot.store(name_slot, Ordering::Relaxed);
        slot.value_bits.store(value.to_bits(), Ordering::Relaxed);
        slot.seq.store(ticket, Ordering::Release);
        true
    }

    /// Admission attempts so far (sampled + skipped).
    #[cfg(test)]
    pub(crate) fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Events written into the ring so far (tickets start at 1).
    pub(crate) fn writes(&self) -> u64 {
        self.head.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Events lost to wrap-around: writes beyond the ring's capacity have
    /// overwritten the oldest slots. `clear` does not reset this — the
    /// ticket stream keeps advancing — so treat it as a monotone
    /// saturation indicator, not a residency count.
    pub(crate) fn overflow(&self) -> u64 {
        self.writes().saturating_sub(RING_CAP as u64)
    }

    /// Collects every consistent slot, oldest ticket first.
    pub(crate) fn collect(&self) -> Vec<RawEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 {
                continue;
            }
            let time_us = slot.time_us.load(Ordering::Acquire);
            let name_slot = slot.name_slot.load(Ordering::Acquire);
            let value_bits = slot.value_bits.load(Ordering::Acquire);
            let after = slot.seq.load(Ordering::Acquire);
            if after != before {
                continue; // torn by a concurrent writer; skip
            }
            out.push(RawEvent {
                seq: before,
                time_us,
                name_slot,
                value: f64::from_bits(value_bits),
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Empties the ring (ticket and attempt counters keep advancing, so
    /// sampling decisions stay on the same deterministic stream).
    pub(crate) fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

/// One event as stored in the ring; the name is still a registry slot
/// index (resolved to a string by the registry when snapshotting).
pub(crate) struct RawEvent {
    pub(crate) seq: u64,
    pub(crate) time_us: u64,
    pub(crate) name_slot: u64,
    pub(crate) value: f64,
}

/// One resolved event from [`events_snapshot`](crate::events_snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Global write ticket (monotone across the ring's lifetime).
    pub seq: u64,
    /// Microseconds since the owning registry was created.
    pub time_us: u64,
    /// Event name.
    pub name: String,
    /// Attached value.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_cap_events() {
        let ring = EventRing::new();
        for i in 0..(RING_CAP as u64 + 50) {
            assert!(ring.try_push(i, 1, i as f64));
        }
        let events = ring.collect();
        assert_eq!(events.len(), RING_CAP);
        // Oldest retained ticket is 51 (tickets start at 1).
        assert_eq!(events[0].seq, 51);
        assert_eq!(events.last().map(|e| e.seq), Some(RING_CAP as u64 + 50));
        assert_eq!(ring.writes(), RING_CAP as u64 + 50);
        assert_eq!(ring.overflow(), 50);
        ring.clear();
        assert!(ring.collect().is_empty());
        assert_eq!(ring.overflow(), 50, "overflow is monotone across clears");
    }

    #[test]
    fn overflow_is_zero_until_the_ring_wraps() {
        let ring = EventRing::new();
        assert_eq!(ring.writes(), 0);
        assert_eq!(ring.overflow(), 0);
        for i in 0..RING_CAP as u64 {
            ring.try_push(i, 0, 0.0);
        }
        assert_eq!(ring.overflow(), 0, "exactly full, nothing lost yet");
        ring.try_push(0, 0, 0.0);
        assert_eq!(ring.overflow(), 1);
    }

    #[test]
    fn sampling_thins_admissions_deterministically() {
        let a = EventRing::new();
        a.configure(0.25, 42);
        let b = EventRing::new();
        b.configure(0.25, 42);
        let mut kept_a = 0;
        let mut kept_b = 0;
        for i in 0..1000u64 {
            if a.try_push(i, 0, 0.0) {
                kept_a += 1;
            }
            if b.try_push(i, 0, 0.0) {
                kept_b += 1;
            }
        }
        assert_eq!(kept_a, kept_b, "same seed + stream → same admissions");
        assert!((150..=350).contains(&kept_a), "kept {kept_a}/1000 at 0.25");
        assert_eq!(a.attempts(), 1000);
    }

    #[test]
    fn concurrent_pushes_never_yield_torn_reads() {
        let ring = EventRing::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // Value mirrors the timestamp so a torn slot is
                        // detectable below.
                        let v = (t * 10_000 + i) as f64;
                        ring.try_push(t * 10_000 + i, t, v);
                    }
                });
            }
            for _ in 0..50 {
                for e in ring.collect() {
                    assert_eq!(e.time_us as f64, e.value, "torn slot surfaced");
                }
            }
        });
    }
}
