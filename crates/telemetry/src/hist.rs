//! Fixed log-linear bucket histograms recorded entirely with atomics.
//!
//! Each histogram owns a flat array of relaxed `AtomicU64` bucket counts.
//! A value maps to its bucket straight from its IEEE-754 bit pattern: the
//! exponent selects an octave, the top [`SUB_BITS`] mantissa bits select a
//! linear sub-bucket inside it. With 32 sub-buckets per octave the bucket
//! representative is within ~1.6% of any value it absorbs, which bounds
//! the relative error of every quantile query — while `min`, `max`, `sum`
//! and `count` stay exact (they are tracked separately, also atomically).
//!
//! Recording is wait-free apart from the bounded CAS loops for the
//! floating-point `sum` stripes and the `min`/`max` cells; there is no
//! mutex anywhere on the record path.

use crate::registry::{stripe_id, PaddedU64, STRIPES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Mantissa bits used for linear sub-buckets (32 per octave).
pub(crate) const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
pub(crate) const SUBS: usize = 1 << SUB_BITS;
/// Smallest represented octave: values below 2^E_MIN share one band.
pub(crate) const E_MIN: i32 = -40;
/// Largest represented octave: values at or above 2^E_MAX share the top
/// bucket.
pub(crate) const E_MAX: i32 = 40;
/// Total bucket count: one zero/negative bucket plus the log-linear grid.
pub(crate) const BUCKETS: usize = 1 + ((E_MAX - E_MIN) as usize) * SUBS;

/// Maps a value to its bucket index. Non-positive and non-finite values
/// (which the span timers never produce, but `record` accepts any `f64`)
/// fall into bucket 0.
pub(crate) fn bucket_index(v: f64) -> usize {
    // NaN lands in bucket 0 via the is_finite check.
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let bits = v.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if e < E_MIN {
        return 1;
    }
    if e >= E_MAX {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    1 + ((e - E_MIN) as usize) * SUBS + sub
}

/// The representative value of a bucket (the linear midpoint of its
/// range), used when answering quantile queries.
pub(crate) fn bucket_value(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let i = i - 1;
    let e = E_MIN + (i / SUBS) as i32;
    let sub = (i % SUBS) as f64;
    2f64.powi(e) * (1.0 + (sub + 0.5) / SUBS as f64)
}

/// One atomic log-linear histogram.
pub(crate) struct Hist {
    buckets: Box<[AtomicU64]>,
    /// Striped running sum, stored as `f64` bit patterns and combined at
    /// snapshot time. Striping keeps the CAS loops contention-free when
    /// many threads record under the same name.
    sum_cells: [PaddedU64; STRIPES],
    /// Exact smallest observation (`f64` bits, `+inf` when empty).
    min_bits: AtomicU64,
    /// Exact largest observation (`f64` bits, `-inf` when empty).
    max_bits: AtomicU64,
}

impl Hist {
    pub(crate) fn new() -> Hist {
        Hist {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_cells: std::array::from_fn(|_| PaddedU64::default()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Atomics only: a relaxed `fetch_add` on the
    /// bucket, a striped CAS on the sum, and rarely-contended CAS loops on
    /// min/max.
    pub(crate) fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let cell = &self.sum_cells[stripe_id()].0;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        update_extreme(&self.min_bits, v, |new, cur| new < cur);
        update_extreme(&self.max_bits, v, |new, cur| new > cur);
    }

    /// Clears the histogram. Race-safe, not linearizable: observations
    /// recorded concurrently with a reset may land on either side of it,
    /// but the histogram is never torn or corrupted.
    pub(crate) fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        for c in &self.sum_cells {
            c.0.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    /// A point-in-time copy of the aggregates and bucket counts.
    pub(crate) fn load(&self) -> HistSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum: f64 = self
            .sum_cells
            .iter()
            .map(|c| f64::from_bits(c.0.load(Ordering::Relaxed)))
            .sum();
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistSnapshot {
            counts,
            count,
            sum,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
        }
    }
}

/// CAS loop updating a `f64`-bits extreme cell when `better(new, cur)`.
fn update_extreme(cell: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while better(v, f64::from_bits(cur)) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

/// Point-in-time histogram contents.
pub(crate) struct HistSnapshot {
    counts: Vec<u64>,
    pub(crate) count: u64,
    pub(crate) sum: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
}

impl HistSnapshot {
    /// Nearest-rank quantile answered from the bucket counts. The bucket
    /// representative is clamped into the exact `[min, max]` envelope, so
    /// quantiles never stray outside what was actually observed.
    pub(crate) fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * (self.count - 1) as f64).round() as u64).min(self.count - 1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_in_value() {
        let values = [1e-13, 1e-9, 0.001, 0.5, 1.0, 1.5, 2.0, 3.0, 1e6, 1e13];
        let mut last = 0;
        for v in values {
            let b = bucket_index(v);
            assert!(b >= last, "bucket order broken at {v}: {b} < {last}");
            last = b;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
    }

    #[test]
    fn representative_value_is_within_bucket_resolution() {
        for v in [0.002, 0.7, 1.0, 3.3, 12.5, 900.0, 123456.0] {
            let rep = bucket_value(bucket_index(v));
            let rel = (rep - v).abs() / v;
            assert!(rel < 1.0 / SUBS as f64, "value {v} rep {rep} rel err {rel}");
        }
    }

    #[test]
    fn quantiles_clamp_into_observed_envelope() {
        let h = Hist::new();
        h.record(5.0);
        let s = h.load();
        assert_eq!(s.quantile(0.5), 5.0, "single observation is its own p50");
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }
}
