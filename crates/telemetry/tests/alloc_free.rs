//! Asserts the telemetry hot path allocates nothing once names are
//! interned — and, with recording disabled, allocates nothing at all.
//!
//! A counting global allocator wraps the system allocator; the one test
//! in this binary (kept alone so no parallel test can allocate under the
//! counter) measures the allocation delta across bursts of telemetry
//! calls.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The counter itself uses no allocation, so counting is exact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_delta(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn hot_path_is_allocation_free() {
    let scope = soteria_telemetry::scoped();

    // Warm-up interns every name (the one allowed allocation per name).
    soteria_telemetry::counter("alloc.c", 1);
    soteria_telemetry::record("alloc.h", 1.0);
    soteria_telemetry::gauge_add("alloc.g", 1);
    drop(soteria_telemetry::span("alloc.s"));

    // Enabled steady state: interned counters, histograms, gauges, and
    // spans must not touch the allocator.
    let enabled = alloc_delta(|| {
        for i in 0..1000 {
            soteria_telemetry::counter("alloc.c", 1);
            soteria_telemetry::record("alloc.h", i as f64);
            soteria_telemetry::gauge_add("alloc.g", 1);
            drop(soteria_telemetry::span("alloc.s"));
        }
    });
    assert_eq!(enabled, 0, "enabled steady-state hot path allocated");

    // Disabled: every call (even for never-seen names) must allocate
    // nothing — this is the `Span::cancel`/disabled-path guarantee.
    soteria_telemetry::set_enabled(false);
    let disabled = alloc_delta(|| {
        for i in 0..1000 {
            soteria_telemetry::counter("alloc.off.c", 1);
            soteria_telemetry::record("alloc.off.h", i as f64);
            soteria_telemetry::gauge_add("alloc.off.g", 1);
            soteria_telemetry::event("alloc.off.e", 1.0);
            let s = soteria_telemetry::span("alloc.off.s");
            s.cancel();
        }
    });
    assert_eq!(disabled, 0, "disabled telemetry path allocated");
    soteria_telemetry::set_enabled(true);

    drop(scope);
}
