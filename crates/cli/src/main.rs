//! `soteria-cli` — work with SotVM binaries from the command line.
//!
//! ```text
//! soteria-cli gen --out DIR [--scale F] [--seed N]      generate a corpus to disk
//! soteria-cli inspect FILE [--dot]                      lift a binary, print CFG facts
//! soteria-cli disasm FILE                               print an assembly listing
//! soteria-cli attack --original FILE --out FILE [--attack KIND] [--target FILE]
//!                                                       craft an adversarial example
//! soteria-cli train --corpus DIR --out MODEL [--seed N]
//!                   [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]
//!                                                       train and persist a system
//! soteria-cli analyze (--corpus DIR | --model MODEL) [--seed N] FILE...
//!                                                       screen files with a system
//! soteria-cli serve (--artifact FILE | --corpus DIR | --model MODEL) [--listen ADDR]
//!                   [--trace F]                         run the screening service
//! soteria-cli export-artifact --model STATE --out FILE  write the v3 binary artifact
//! soteria-cli swap --connect ADDR --model PATH          hot-swap a serving model
//! soteria-cli metrics (--file PATH | --connect ADDR)    render a telemetry snapshot
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod commands;
mod store;

use std::process::ExitCode;

fn usage() -> &'static str {
    "usage:\n  soteria-cli gen --out DIR [--scale F] [--seed N]\n  \
     soteria-cli inspect FILE [--dot]\n  \
     soteria-cli disasm FILE\n  \
     soteria-cli attack --original FILE --out FILE [--attack KIND] [--target FILE]\n    \
     [--seed N] [--blocks N] [--count N] [--fraction F]\n    \
     KIND: gea (default, needs --target) | inject | inject-dead |\n    \
     lowdensity | blocksplit | obfuscate\n  \
     soteria-cli train --corpus DIR --out MODEL [--seed N] [--metrics PATH]\n    \
     [--backend f32|int8] [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]\n  \
     soteria-cli analyze (--corpus DIR | --model MODEL) [--seed N] [--backend f32|int8]\n    \
     [--metrics PATH] FILE...\n  \
     soteria-cli serve (--artifact FILE | --corpus DIR | --model MODEL) [--seed N]\n    \
     [--backend f32|int8] [--workers N] [--queue N]\n    \
     [--cache N] [--batch-window-ms N] [--max-batch N] [--listen ADDR] [--metrics PATH]\n    \
     [--metrics-interval SECS] [--trace F] [--deadline-ms N] [--rate-limit R] [--burst B]\n    \
     [--brownout F] [--reject-threshold F] [--breaker N]\n  \
     soteria-cli export-artifact --model STATE --out ARTIFACT\n  \
     soteria-cli swap --connect ADDR --model PATH\n  \
     soteria-cli metrics (--file PATH | --connect ADDR)\n\n\
     serve reads one request per line (a file path, or hex:<bytes>) and answers\n  \
     with one JSON verdict per line; without --listen the protocol runs on\n  \
     stdin/stdout, with --listen ADDR over TCP (quit ends a connection,\n  \
     shutdown stops the server). Verdicts are cached by content and screened\n  \
     in micro-batches; identical content always gets the identical verdict.\n  \
     The METRICS [json], TRACES [n], HEALTH, and SWAP <path> admin verbs answer\n  \
     in-band on either front end; --trace F samples that fraction of requests\n  \
     into per-stage traces (SOTERIA_TRACE=F sets the default). Tracing never\n  \
     changes a verdict.\n\n\
     export-artifact converts a saved model into the SOTERIA-STATE v3 binary\n  \
     artifact: aligned, checksummed, loaded by reference with zero\n  \
     deserialization, so serve --artifact starts instantly. SWAP <path> (or\n  \
     soteria-cli swap --connect ADDR --model PATH) hot-swaps the serving model\n  \
     from such a file without dropping a request.\n\n\
     Overload hardening (all off by default): --deadline-ms bounds each\n  \
     request's end-to-end latency, --rate-limit R (with --burst B) caps each\n  \
     client's request rate, --brownout F degrades to AE-only screening and\n  \
     --reject-threshold F sheds load at those queue-pressure fractions, and\n  \
     --breaker N opens a circuit after N extraction panics. Shed requests\n  \
     answer {\"verdict\":\"rejected\",\"reason\":...,\"retry_after_ms\":...}.\n\n\
     --backend int8 runs inference on the deterministic int8 quantized path\n  \
     (train calibrates and persists the quantized weights; analyze/serve on a\n  \
     saved model need a model trained or re-saved with int8 weights).\n\n\
     --checkpoint-every N snapshots training state every N epochs (atomic,\n  \
     crash-safe); --resume PATH continues a killed run bit-for-bit.\n  \
     --metrics PATH writes a telemetry snapshot (counters + span timings) as\n  \
     JSON; --metrics-interval SECS rewrites it periodically while serving.\n  \
     metrics renders such a snapshot (or a live METRICS response fetched\n  \
     from a serving --listen address) as a summary table.\n  \
     SOTERIA_METRICS=summary prints a timing summary table to stderr on exit."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => commands::gen(&args[1..]),
        Some("inspect") => commands::inspect(&args[1..]),
        Some("disasm") => commands::disassemble(&args[1..]),
        Some("attack") => commands::attack(&args[1..]),
        Some("train") => commands::train(&args[1..]),
        Some("analyze") => commands::analyze(&args[1..]),
        Some("serve") => commands::serve(&args[1..]),
        Some("export-artifact") => commands::export_artifact(&args[1..]),
        Some("swap") => commands::swap(&args[1..]),
        Some("metrics") => commands::metrics(&args[1..]),
        Some("--help") | Some("-h") => {
            // An explicitly requested help text is a successful run and
            // belongs on stdout (so `soteria-cli --help | less` works).
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
        Some(other) => Err(format!("unknown command {other}\n{}", usage())),
    };
    soteria_telemetry::print_summary_if_requested();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
