//! CLI subcommand implementations.

use crate::store;
use soteria::{
    Backend, Soteria, SoteriaConfig, SoteriaState, StateImage, TrainCheckpoint, Verdict,
};
use soteria_attacks::{
    Attack, BlockSplit, GeaAttack, LowDensityInsert, Obfuscate, SubCfgInjection,
};
use soteria_cfg::{density, dot, GraphStats};
use soteria_corpus::{disasm, Corpus, CorpusConfig, Family};
use soteria_gea::SizeClass;
use soteria_serve::{
    protocol, AdmissionConfig, BreakerConfig, RateLimit, ScreeningService, ServeConfig, Submit,
    SubmitOptions,
};
use std::collections::HashMap;
use std::path::PathBuf;

/// Parses `--flag value` pairs plus positional arguments.
fn parse(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "dot" {
                flags.insert("dot".to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

/// Honors `--metrics PATH`: writes the telemetry snapshot (counters +
/// span timings for everything the command just did) as pretty JSON.
fn write_metrics_if_requested(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("metrics") {
        soteria_telemetry::snapshot().write_json(&PathBuf::from(path))?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
        None => Ok(default),
    }
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
        None => Ok(default),
    }
}

/// Honors `--backend (f32|int8)`; defaults to f32.
fn flag_backend(flags: &HashMap<String, String>) -> Result<Backend, String> {
    match flags.get("backend") {
        Some(v) => v.parse().map_err(|e| format!("bad --backend: {e}")),
        None => Ok(Backend::F32),
    }
}

/// `gen --out DIR [--scale F] [--seed N]`
pub fn gen(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse(args)?;
    let out = flags.get("out").ok_or("gen needs --out DIR")?;
    let scale = flag_f64(&flags, "scale", 0.01)?;
    let seed = flag_u64(&flags, "seed", 7)?;
    let corpus = Corpus::generate(&CorpusConfig::scaled(scale, seed));
    store::write_corpus(&corpus, &PathBuf::from(out))?;
    let counts = corpus.class_counts();
    println!(
        "wrote {} samples to {out} (benign {}, gafgyt {}, mirai {}, tsunami {})",
        corpus.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3]
    );
    Ok(())
}

/// `inspect FILE [--dot]`
pub fn inspect(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse(args)?;
    let file = positional.first().ok_or("inspect needs a FILE")?;
    let bytes = std::fs::read(file).map_err(|e| format!("read {file}: {e}"))?;
    let binary = soteria_corpus::Binary::parse(&bytes).map_err(|e| e.to_string())?;
    let lifted = disasm::lift(&binary).map_err(|e| e.to_string())?;
    let (reachable, _) = lifted.cfg.reachable_subgraph();

    if flags.contains_key("dot") {
        print!("{}", dot::to_dot(&lifted.cfg, None));
        return Ok(());
    }

    println!("{file}:");
    println!("  image size        {} bytes", binary.len());
    println!("  entry offset      {:#x}", binary.entry());
    println!("  trailing bytes    {}", binary.trailing().len());
    println!("  blocks (total)    {}", lifted.cfg.node_count());
    println!("  blocks (dead)     {}", lifted.dead_block_count);
    println!("  data ranges       {:?}", lifted.data_ranges);
    println!("  reachable blocks  {}", reachable.node_count());
    println!("  reachable edges   {}", reachable.edge_count());
    println!(
        "  graph density     {:.4}",
        density::graph_density(&reachable)
    );
    let stats = GraphStats::compute(&reachable);
    println!(
        "  shortest paths    min {:.0} / mean {:.2} / max {:.0}",
        stats.shortest_paths.min, stats.shortest_paths.mean, stats.shortest_paths.max
    );
    println!(
        "  degree centrality mean {:.4} / max {:.4}",
        stats.degree_centrality.mean, stats.degree_centrality.max
    );
    Ok(())
}

/// `disasm FILE` — print an assembly listing with block boundaries.
pub fn disassemble(args: &[String]) -> Result<(), String> {
    let (_, positional) = parse(args)?;
    let file = positional.first().ok_or("disasm needs a FILE")?;
    let bytes = std::fs::read(file).map_err(|e| format!("read {file}: {e}"))?;
    let binary = soteria_corpus::Binary::parse(&bytes).map_err(|e| e.to_string())?;
    let lifted = disasm::lift(&binary).map_err(|e| e.to_string())?;
    let reachable = lifted.cfg.reachable();

    // Block starts, for annotation.
    let mut block_at = std::collections::HashMap::new();
    for id in lifted.cfg.block_ids() {
        block_at.insert(lifted.cfg.block(id).address() as u32, id);
    }

    let code = binary.code();
    let mut off = 0u32;
    while (off as usize) < code.len() {
        if let Some(&id) = block_at.get(&off) {
            let tag = if reachable[id.index()] {
                ""
            } else {
                "  ; unreachable"
            };
            println!(
                "
{id}:{tag}"
            );
        }
        // Skip data ranges the lifter marked.
        if let Some(&(_, end)) = lifted
            .data_ranges
            .iter()
            .find(|&&(s, e)| s <= off && off < e)
        {
            println!("  {off:#06x}  .data {} bytes", end - off);
            off = end;
            continue;
        }
        match soteria_corpus::isa::Instruction::decode(code, off as usize) {
            Ok(insn) => {
                println!("  {off:#06x}  {insn}");
                off += insn.encoded_len() as u32;
            }
            Err(_) => {
                println!("  {off:#06x}  .byte {:#04x}", code[off as usize]);
                off += 1;
            }
        }
    }
    Ok(())
}

/// `attack --original FILE --out FILE [--attack KIND] [--target FILE]
///         [--seed N] [--blocks N] [--count N] [--fraction F]`
///
/// Kinds: `gea` (default, needs `--target`), `inject` (reachable sub-CFG,
/// `--blocks`), `inject-dead` (unreachable section, `--blocks`),
/// `lowdensity`, `blocksplit` (`--count`), `obfuscate` (`--fraction`).
/// Model-aware attacks (mimicry, adaptive) need a trained pipeline and
/// live in `soteria-exp robustness-bench`.
pub fn attack(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse(args)?;
    let original_path = flags
        .get("original")
        .ok_or("attack needs --original FILE")?;
    let out = flags.get("out").ok_or("attack needs --out FILE")?;
    let kind = flags.get("attack").map(String::as_str).unwrap_or("gea");
    let seed = flag_u64(&flags, "seed", 7)?;

    let original = store::read_binary(
        &PathBuf::from(original_path),
        Family::Benign, // class is irrelevant for crafting
        "original",
    )?;

    let attack: Box<dyn Attack> = match kind {
        "gea" => {
            let target_path = flags
                .get("target")
                .ok_or("attack gea needs --target FILE")?;
            let target = store::read_binary(&PathBuf::from(target_path), Family::Benign, "target")?;
            // The size tag only labels the attack — the whole target embeds
            // regardless, so the crafted bytes equal a direct `gea_merge`.
            Box::new(GeaAttack::new(&target, SizeClass::Medium))
        }
        "inject" => Box::new(SubCfgInjection::reachable(
            flag_u64(&flags, "blocks", 4)? as usize
        )),
        "inject-dead" => Box::new(SubCfgInjection::unreachable(
            flag_u64(&flags, "blocks", 4)? as usize
        )),
        "lowdensity" => Box::new(LowDensityInsert),
        "blocksplit" => Box::new(BlockSplit::new(flag_u64(&flags, "count", 2)? as usize)),
        "obfuscate" => Box::new(Obfuscate::new(flag_f64(&flags, "fraction", 0.3)?)),
        other => {
            return Err(format!(
                "unknown --attack {other} \
                 (gea | inject | inject-dead | lowdensity | blocksplit | obfuscate)"
            ))
        }
    };
    let crafted = attack.craft(&original, seed).map_err(|e| e.to_string())?;
    std::fs::write(out, crafted.sample().binary().to_bytes())
        .map_err(|e| format!("write {out}: {e}"))?;
    let cost = crafted.cost();
    println!(
        "wrote {} example to {out}: {} -> {} blocks (+{} nodes, +{} edges, -{} edges)",
        attack.name(),
        original.graph().node_count(),
        crafted.sample().graph().node_count(),
        cost.nodes_added,
        cost.edges_added,
        cost.edges_removed,
    );
    Ok(())
}

/// Trains a system on a corpus directory (no checkpointing — the
/// `analyze --corpus` path).
fn train_on_dir(corpus_dir: &str, seed: u64, backend: Backend) -> Result<Soteria, String> {
    eprintln!("loading corpus from {corpus_dir}...");
    let samples = store::read_samples(&PathBuf::from(corpus_dir))?;
    let corpus = Corpus::from_samples(samples, seed);
    let split = corpus.split(0.8, seed);
    eprintln!("training Soteria on {} samples...", split.train.len());
    let mut config = SoteriaConfig::tiny();
    config.backend = backend;
    let mut system =
        Soteria::train(&config, &corpus, &split.train, seed).map_err(|e| e.to_string())?;
    eprintln!(
        "trained (threshold {:.4})",
        system.detector_mut().stats().threshold()
    );
    Ok(system)
}

/// `train --corpus DIR --out MODEL [--seed N] [--metrics PATH]
///        [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]`
///
/// With `--checkpoint-every N` the run snapshots its training state every
/// N epochs of each network fit (to `--checkpoint PATH`, default
/// `OUT.ckpt`, written atomically). `--resume PATH` continues a killed run
/// from its last checkpoint and produces the bit-for-bit identical model
/// an uninterrupted run would have.
pub fn train(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse(args)?;
    let corpus_dir = flags.get("corpus").ok_or("train needs --corpus DIR")?;
    let out = flags.get("out").ok_or("train needs --out MODEL")?;
    let seed = flag_u64(&flags, "seed", 7)?;
    let backend = flag_backend(&flags)?;
    let checkpoint_every = flag_u64(&flags, "checkpoint-every", 0)? as usize;
    let ckpt_path = flags
        .get("checkpoint")
        .cloned()
        .unwrap_or_else(|| format!("{out}.ckpt"));

    let resume = match flags.get("resume") {
        Some(path) => {
            let ckpt =
                TrainCheckpoint::load_from_path(&PathBuf::from(path)).map_err(|e| e.to_string())?;
            eprintln!("resuming from checkpoint {path}");
            Some(ckpt)
        }
        None => None,
    };

    eprintln!("loading corpus from {corpus_dir}...");
    let samples = store::read_samples(&PathBuf::from(corpus_dir))?;
    let corpus = Corpus::from_samples(samples, seed);
    let split = corpus.split(0.8, seed);
    eprintln!("training Soteria on {} samples...", split.train.len());

    let mut train_config = SoteriaConfig::tiny();
    train_config.backend = backend;
    let mut system = if checkpoint_every > 0 || resume.is_some() {
        let ckpt_file = PathBuf::from(&ckpt_path);
        Soteria::train_resumable(
            &train_config,
            &corpus,
            &split.train,
            seed,
            resume,
            checkpoint_every,
            &mut |ckpt| {
                ckpt.save_to_path(&ckpt_file).map_err(|e| e.to_string())?;
                soteria_telemetry::counter("cli.train.checkpoints", 1);
                Ok(())
            },
        )
        .map_err(|e| e.to_string())?
    } else {
        Soteria::train(&train_config, &corpus, &split.train, seed).map_err(|e| e.to_string())?
    };
    eprintln!(
        "trained (threshold {:.4})",
        system.detector_mut().stats().threshold()
    );
    system
        .save_state()?
        .save_to_path(&PathBuf::from(out))
        .map_err(|e| e.to_string())?;
    println!("wrote model to {out}");
    write_metrics_if_requested(&flags)
}

/// `export-artifact --model STATE --out ARTIFACT`
///
/// Converts a saved model (v2 JSON envelope or an existing v3 artifact)
/// into the `SOTERIA-STATE v3` binary artifact: aligned, checksummed,
/// and loadable by reference — `serve --artifact` and `SWAP` start from
/// it without deserializing a single tensor.
pub fn export_artifact(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse(args)?;
    let model = flags
        .get("model")
        .ok_or("export-artifact needs --model STATE")?;
    let out = flags
        .get("out")
        .ok_or("export-artifact needs --out ARTIFACT")?;
    let state = SoteriaState::load_from_path(&PathBuf::from(model)).map_err(|e| e.to_string())?;
    state
        .save_artifact_to_path(&PathBuf::from(out))
        .map_err(|e| e.to_string())?;
    let image = StateImage::open(&PathBuf::from(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote v3 artifact to {out} ({} bytes, {} sections)",
        image.len_bytes(),
        image.sections().len()
    );
    Ok(())
}

/// `swap --connect ADDR --model PATH`
///
/// Sends the in-band `SWAP` admin verb to a serving `--listen` address:
/// the server loads the state file at PATH (a path on the *server's*
/// filesystem — v3 artifact or v2 JSON) and atomically installs it as
/// the serving model without dropping a request. Prints the server's
/// one-line JSON response.
pub fn swap(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let (flags, _) = parse(args)?;
    let addr = flags.get("connect").ok_or("swap needs --connect ADDR")?;
    let model = flags.get("model").ok_or("swap needs --model PATH")?;
    if model.chars().any(char::is_whitespace) {
        return Err("the line protocol cannot carry paths with whitespace".into());
    }
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    writeln!(stream, "SWAP {model}").map_err(|e| format!("send SWAP: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read {addr}: {e}"))?;
    let line = line.trim();
    if line.is_empty() {
        return Err(format!("no response from {addr}"));
    }
    println!("{line}");
    if line.contains("\"error\"") {
        return Err("server rejected the swap".into());
    }
    Ok(())
}

/// `analyze (--corpus DIR | --model MODEL.json) [--seed N] [--metrics PATH] FILE...`
pub fn analyze(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse(args)?;
    let seed = flag_u64(&flags, "seed", 7)?;
    if positional.is_empty() {
        return Err("analyze needs at least one FILE".into());
    }

    let backend = flag_backend(&flags)?;
    let mut system = if let Some(model_path) = flags.get("model") {
        let state =
            SoteriaState::load_from_path(&PathBuf::from(model_path)).map_err(|e| e.to_string())?;
        eprintln!("loaded model from {model_path}");
        Soteria::from_state(state)
    } else if let Some(corpus_dir) = flags.get("corpus") {
        train_on_dir(corpus_dir, seed, backend)?
    } else {
        return Err("analyze needs --corpus DIR or --model MODEL.json".into());
    };
    system.set_backend(backend)?;

    let mut degraded = 0usize;
    for (i, file) in positional.iter().enumerate() {
        let bytes = std::fs::read(file).map_err(|e| format!("read {file}: {e}"))?;
        match system.screen_binary(&bytes, seed ^ (1000 + i as u64)) {
            Verdict::Adversarial {
                reconstruction_error,
            } => println!("{file}: ADVERSARIAL (RE {reconstruction_error:.4})"),
            Verdict::Clean {
                family,
                reconstruction_error,
                report,
            } => println!(
                "{file}: {family} (RE {reconstruction_error:.4}, votes {:?})",
                report.votes
            ),
            Verdict::Degraded { reason } => {
                degraded += 1;
                println!("{file}: DEGRADED ({reason})");
            }
        }
    }
    write_metrics_if_requested(&flags)?;
    if degraded > 0 {
        return Err(format!(
            "{degraded} of {} files could not be analyzed",
            positional.len()
        ));
    }
    Ok(())
}

/// `serve (--corpus DIR | --model MODEL.json) [--seed N] [--workers N]
///        [--queue N] [--cache N] [--batch-window-ms N] [--max-batch N]
///        [--listen ADDR] [--metrics PATH] [--metrics-interval SECS]
///        [--trace F] [--deadline-ms N] [--rate-limit R] [--burst B]
///        [--brownout F] [--reject-threshold F] [--breaker N]`
///
/// Runs the concurrent screening service over a line protocol: each
/// request line is a file path or `hex:`-prefixed bytes, each response
/// line a JSON verdict. Without `--listen` the protocol runs over
/// stdin/stdout (EOF drains and shuts down); with `--listen ADDR` it runs
/// over a TCP accept loop (`quit` closes a connection, `shutdown` stops
/// the server).
///
/// Observability: `--trace F` samples a fraction `F` of requests into
/// per-stage traces (`SOTERIA_TRACE` sets the default), the `METRICS` /
/// `TRACES [n]` / `HEALTH` admin verbs answer in-band on either front
/// end, and `--metrics-interval SECS` rewrites the `--metrics` snapshot
/// file periodically while the service runs.
///
/// Overload hardening (all off by default): `--deadline-ms N` bounds
/// every request's end-to-end latency (expired requests answer a
/// `degraded`/`deadline` verdict), `--rate-limit R` enforces R requests
/// per second per client (TCP connections are distinct clients; `--burst
/// B` sets the bucket size, default R), `--brownout F` and
/// `--reject-threshold F` shed load at the given queue-pressure
/// fractions (brownout answers from the AE detector only), and
/// `--breaker N` opens a circuit after N extraction panics inside its
/// rolling window. Rejected requests answer
/// `{"verdict":"rejected","reason":…[,"retry_after_ms":…]}`.
pub fn serve(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse(args)?;
    let seed = flag_u64(&flags, "seed", 7)?;
    let backend = flag_backend(&flags)?;
    let system = if let Some(path) = flags.get("artifact") {
        // Instant start: validate once, then borrow every weight matrix
        // straight out of the mapped buffer — no JSON, no per-tensor
        // copies.
        let load_start = std::time::Instant::now();
        let image = StateImage::open(&PathBuf::from(path)).map_err(|e| e.to_string())?;
        let system = Soteria::load_image(&image).map_err(|e| e.to_string())?;
        eprintln!(
            "mapped artifact {path} ({} bytes, {} sections, zero-copy) in {:.1}ms",
            image.len_bytes(),
            image.sections().len(),
            load_start.elapsed().as_secs_f64() * 1e3
        );
        system
    } else if let Some(model_path) = flags.get("model") {
        let state =
            SoteriaState::load_from_path(&PathBuf::from(model_path)).map_err(|e| e.to_string())?;
        eprintln!("loaded model from {model_path}");
        Soteria::from_state(state)
    } else if let Some(corpus_dir) = flags.get("corpus") {
        train_on_dir(corpus_dir, seed, backend)?
    } else {
        return Err("serve needs --artifact FILE, --corpus DIR, or --model MODEL.json".into());
    };

    // --trace overrides SOTERIA_TRACE, which overrides "off".
    let trace_default = std::env::var("SOTERIA_TRACE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let trace_sampling = flag_f64(&flags, "trace", trace_default)?;
    if !(0.0..=1.0).contains(&trace_sampling) {
        return Err(format!("--trace wants 0.0..=1.0, got {trace_sampling}"));
    }
    let config = ServeConfig {
        workers: flag_u64(&flags, "workers", 2)? as usize,
        queue_capacity: flag_u64(&flags, "queue", 64)? as usize,
        cache_capacity: flag_u64(&flags, "cache", 1024)? as usize,
        batch_window: std::time::Duration::from_millis(flag_u64(&flags, "batch-window-ms", 2)?),
        max_batch: flag_u64(&flags, "max-batch", 32)? as usize,
        seed,
        trace_sampling,
        admission: admission_from_flags(&flags)?,
        backend,
        ..ServeConfig::default()
    };
    let service = ScreeningService::start(system, &config);
    let snapshot_writer = start_snapshot_writer(&flags)?;

    if let Some(addr) = flags.get("listen") {
        serve_tcp(&service, addr)?;
    } else {
        serve_stdin(&service)?;
    }

    if let Some((stop, handle)) = snapshot_writer {
        let _ = stop.send(());
        let _ = handle.join();
    }
    let stats = service.stats();
    service.shutdown();
    eprintln!(
        "serve: {} submitted, {} rejected, cache {}/{} hits ({:.0}%)",
        stats.submitted,
        stats.rejected,
        stats.cache.hits,
        stats.cache.lookups,
        stats.cache.hit_rate() * 100.0
    );
    write_metrics_if_requested(&flags)
}

/// Builds the admission config from the overload flags. Every knob
/// defaults to disabled, so a flagless `serve` behaves exactly as it did
/// before admission control existed.
fn admission_from_flags(flags: &HashMap<String, String>) -> Result<AdmissionConfig, String> {
    let deadline_ms = flag_u64(flags, "deadline-ms", 0)?;
    let rate = flag_f64(flags, "rate-limit", 0.0)?;
    let burst = flag_f64(flags, "burst", rate)?;
    let brownout = flag_f64(flags, "brownout", -1.0)?;
    let reject = flag_f64(flags, "reject-threshold", -1.0)?;
    let breaker_faults = flag_u64(flags, "breaker", 0)?;
    if rate < 0.0 || burst < 0.0 {
        return Err("--rate-limit and --burst must be non-negative".into());
    }
    for (name, v) in [("brownout", brownout), ("reject-threshold", reject)] {
        if v > 1.0 {
            return Err(format!(
                "--{name} is a fraction of queue capacity (0.0..=1.0)"
            ));
        }
    }
    Ok(AdmissionConfig {
        default_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        rate_limit: (rate > 0.0).then_some(RateLimit {
            rate_per_sec: rate,
            burst: burst.max(1.0),
        }),
        brownout_threshold: (brownout >= 0.0).then_some(brownout),
        reject_threshold: (reject >= 0.0).then_some(reject),
        breaker: (breaker_faults > 0).then_some(BreakerConfig {
            fault_threshold: breaker_faults as u32,
            ..BreakerConfig::default()
        }),
    })
}

/// Honors `--metrics-interval SECS` (requires `--metrics PATH`): spawns a
/// thread that rewrites the snapshot file every interval until told to
/// stop, so a running service can be inspected without admin access.
/// The write is best-effort — an unwritable path must not kill serving.
#[allow(clippy::type_complexity)]
fn start_snapshot_writer(
    flags: &HashMap<String, String>,
) -> Result<Option<(std::sync::mpsc::Sender<()>, std::thread::JoinHandle<()>)>, String> {
    let interval = flag_u64(flags, "metrics-interval", 0)?;
    if interval == 0 {
        return Ok(None);
    }
    let path = flags
        .get("metrics")
        .cloned()
        .ok_or("--metrics-interval needs --metrics PATH")?;
    let interval = std::time::Duration::from_secs(interval);
    let telemetry = soteria_telemetry::RegistryHandle::current();
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let handle = std::thread::Builder::new()
        .name("soteria-metrics-writer".to_owned())
        .spawn(move || {
            let _telemetry = telemetry.attach();
            let path = PathBuf::from(path);
            while stop_rx.recv_timeout(interval).is_err() {
                if let Err(e) = soteria_telemetry::snapshot().write_json(&path) {
                    eprintln!("metrics writer: {e}");
                }
            }
        })
        .map_err(|e| format!("spawn metrics writer: {e}"))?;
    Ok(Some((stop_tx, handle)))
}

/// `metrics (--file PATH | --connect ADDR)`
///
/// Renders a telemetry snapshot as the human-readable summary table:
/// either a JSON file written by `--metrics` / `--metrics-interval`, or
/// the live `METRICS` exposition fetched from a serving `--listen`
/// address.
pub fn metrics(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse(args)?;
    let report = if let Some(path) = flags.get("file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        serde_json::from_str::<soteria_telemetry::MetricsReport>(&text)
            .map_err(|e| format!("parse {path}: {e}"))?
    } else if let Some(addr) = flags.get("connect") {
        fetch_metrics(addr)?
    } else {
        return Err("metrics needs --file PATH or --connect ADDR".into());
    };
    print!("{}", report.summary_table());
    Ok(())
}

/// Fetches the `METRICS` text exposition from a serving TCP address and
/// parses it back into a report.
fn fetch_metrics(addr: &str) -> Result<soteria_telemetry::MetricsReport, String> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(b"METRICS\n")
        .map_err(|e| format!("send METRICS: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut text = String::new();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read {addr}: {e}"))?;
        if line.trim() == "# EOF" {
            break;
        }
        text.push_str(&line);
        text.push('\n');
    }
    soteria_telemetry::MetricsReport::parse_text(&text)
}

/// Resolves one request line to one response (`None` for blank lines,
/// which are ignored). Admin verbs (`METRICS`, `TRACES`, `HEALTH`) answer
/// from live telemetry; anything else is a screening request that answers
/// with one JSON verdict line. `client` identifies the submitter for
/// per-client rate limiting (each TCP connection gets its own id; stdin
/// is one client).
fn serve_line(service: &ScreeningService, line: &str, client: Option<u64>) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if let Some(response) = soteria_serve::handle_admin(service, line) {
        return Some(response);
    }
    let bytes = if let Some(hex) = line.strip_prefix("hex:") {
        match protocol::parse_hex(hex) {
            Some(bytes) => bytes,
            None => {
                return Some(format!(
                    "{{\"error\":\"bad hex: {}\"}}",
                    protocol::escape_json(line)
                ))
            }
        }
    } else {
        match std::fs::read(line) {
            Ok(bytes) => bytes,
            Err(e) => {
                return Some(format!(
                    "{{\"error\":\"read {}: {}\"}}",
                    protocol::escape_json(line),
                    protocol::escape_json(&e.to_string())
                ))
            }
        }
    };
    let options = SubmitOptions {
        client,
        ..SubmitOptions::default()
    };
    Some(match service.submit_with(bytes, options) {
        Submit::Accepted(ticket) => protocol::verdict_json(&ticket.wait()),
        Submit::Rejected {
            reason,
            retry_after,
        } => protocol::reject_json(reason, retry_after),
    })
}

/// stdin/stdout front end: one request line in, one JSON line out.
fn serve_stdin(service: &ScreeningService) -> Result<(), String> {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("read stdin: {e}"))?;
        if let Some(response) = serve_line(service, &line, None) {
            println!("{response}");
        }
    }
    Ok(())
}

/// TCP front end: same line protocol per connection, connections handled
/// in accept order (the concurrency lives inside the service).
fn serve_tcp(service: &ScreeningService, addr: &str) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    eprintln!("listening on {local}");
    let mut next_client = 0u64;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("accept: {e}");
                continue;
            }
        };
        next_client += 1;
        let client = Some(next_client);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            match line.trim() {
                "quit" => break,
                "shutdown" => return Ok(()),
                _ => {}
            }
            if let Some(response) = serve_line(service, &line, client) {
                if writeln!(writer, "{response}").is_err() {
                    break;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_splits_flags_and_positionals() {
        let (flags, pos) =
            parse(&argv(&["--out", "/tmp/x", "file1", "--seed", "9", "file2"])).unwrap();
        assert_eq!(flags.get("out").unwrap(), "/tmp/x");
        assert_eq!(flags.get("seed").unwrap(), "9");
        assert_eq!(pos, vec!["file1", "file2"]);
    }

    #[test]
    fn parse_handles_bare_dot_flag() {
        let (flags, pos) = parse(&argv(&["file", "--dot"])).unwrap();
        assert!(flags.contains_key("dot"));
        assert_eq!(pos, vec!["file"]);
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        assert!(parse(&argv(&["--out"])).is_err());
    }

    #[test]
    fn gen_requires_out() {
        assert!(gen(&argv(&["--seed", "3"])).is_err());
    }

    #[test]
    fn inspect_requires_file() {
        assert!(inspect(&[]).is_err());
    }

    #[test]
    fn gen_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join(format!("soteria-cli-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        gen(&argv(&[
            "--out",
            dir.to_str().unwrap(),
            "--scale",
            "0.0001",
            "--seed",
            "3",
        ]))
        .unwrap();
        // Inspect the first generated file.
        let manifest: crate::store::Manifest = serde_json::from_str(
            &std::fs::read_to_string(dir.join(crate::store::MANIFEST)).unwrap(),
        )
        .unwrap();
        let first = dir.join(&manifest.entries[0].file);
        inspect(&argv(&[first.to_str().unwrap()])).unwrap();
        inspect(&argv(&[first.to_str().unwrap(), "--dot"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn attack_round_trip_produces_merged_binary() {
        let dir = std::env::temp_dir().join(format!("soteria-cli-att-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        gen(&argv(&[
            "--out",
            dir.to_str().unwrap(),
            "--scale",
            "0.0001",
            "--seed",
            "4",
        ]))
        .unwrap();
        let manifest: crate::store::Manifest = serde_json::from_str(
            &std::fs::read_to_string(dir.join(crate::store::MANIFEST)).unwrap(),
        )
        .unwrap();
        let a = dir.join(&manifest.entries[0].file);
        let b = dir.join(&manifest.entries[1].file);
        let out = dir.join("merged.sotb");
        attack(&argv(&[
            "--original",
            a.to_str().unwrap(),
            "--target",
            b.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        // The merged binary lifts and is bigger than either input.
        let merged = crate::store::read_binary(&out, Family::Benign, "m").unwrap();
        let ga = crate::store::read_binary(&a, Family::Benign, "a").unwrap();
        assert!(merged.graph().node_count() > ga.graph().node_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
