//! On-disk corpus layout: a directory of `.sotb` images plus a JSON
//! manifest carrying each sample's name, ground-truth class, and AV
//! label.

use serde::{Deserialize, Serialize};
use soteria_corpus::{corpus::Sample, Binary, Corpus, Family, SampleGenerator};
use std::path::Path;
#[cfg(test)]
use std::path::PathBuf;

/// One manifest row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Sample name (also the file stem).
    pub name: String,
    /// Ground-truth class.
    pub family: Family,
    /// Simulated AVClass label.
    pub av_label: Family,
    /// Relative path of the binary image.
    pub file: String,
}

/// The corpus manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// All entries, corpus order.
    pub entries: Vec<ManifestEntry>,
}

/// File name of the manifest within a corpus directory.
pub const MANIFEST: &str = "manifest.json";

/// Writes `corpus` to `dir` (created if absent): one `.sotb` file per
/// sample plus `manifest.json`.
pub fn write_corpus(corpus: &Corpus, dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut entries = Vec::with_capacity(corpus.len());
    for sample in corpus.samples() {
        let file = format!("{}.sotb", sample.name());
        let path = dir.join(&file);
        std::fs::write(&path, sample.binary().to_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        entries.push(ManifestEntry {
            name: sample.name().to_string(),
            family: sample.family(),
            av_label: sample.av_label(),
            file,
        });
    }
    let manifest = Manifest { entries };
    let json = serde_json::to_string_pretty(&manifest).map_err(|e| e.to_string())?;
    std::fs::write(dir.join(MANIFEST), json).map_err(|e| format!("write manifest: {e}"))?;
    Ok(())
}

/// Reads a corpus directory back into samples (binaries are re-lifted
/// through the disassembler, the canonical path).
pub fn read_samples(dir: &Path) -> Result<Vec<Sample>, String> {
    let manifest_path = dir.join(MANIFEST);
    let json = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let manifest: Manifest = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let mut samples = Vec::with_capacity(manifest.entries.len());
    for entry in manifest.entries {
        let path = dir.join(&entry.file);
        let sample = read_binary(&path, entry.family, &entry.name)?;
        let mut sample = sample;
        sample.set_av_label(entry.av_label);
        samples.push(sample);
    }
    Ok(samples)
}

/// Reads one `.sotb` file and lifts it.
pub fn read_binary(path: &Path, family: Family, name: &str) -> Result<Sample, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let binary = Binary::parse(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    SampleGenerator::lift(name.to_string(), family, binary)
        .map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_corpus::CorpusConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("soteria-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn corpus_round_trips_through_disk() {
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [3, 3, 3, 3],
            seed: 5,
            av_noise: true,
            lineages: 2,
        });
        let dir = tmp_dir("roundtrip");
        write_corpus(&corpus, &dir).unwrap();

        let samples = read_samples(&dir).unwrap();
        assert_eq!(samples.len(), corpus.len());
        for (a, b) in samples.iter().zip(corpus.samples()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.family(), b.family());
            assert_eq!(a.av_label(), b.av_label());
            assert_eq!(a.binary(), b.binary());
            assert_eq!(a.graph(), b.graph());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let dir = tmp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = read_samples(&dir).unwrap_err();
        assert!(err.contains("manifest.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_binary_is_a_clean_error() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.sotb");
        std::fs::write(&path, b"not a sotb file").unwrap();
        let err = read_binary(&path, Family::Benign, "x").unwrap_err();
        assert!(err.contains("x.sotb"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
