//! A circuit breaker for fault bursts in pipeline stages.
//!
//! The serving layer isolates every sample, so a single panicking input
//! degrades only itself — but a *burst* of panics (a pathological input
//! family, a poisoned model shard, armed chaos) means each admitted
//! request burns a worker slot just to fail. The breaker watches the
//! fault stream and, past a threshold of panic-class faults inside a
//! rolling window, trips [open](BreakerState::Open): new work is refused
//! up front with a `retry_after` hint. After a backoff it
//! [half-opens](BreakerState::HalfOpen), admitting a few probe requests;
//! enough consecutive successes close it again, while any probe fault
//! re-opens it with doubled (capped, deterministically jittered) backoff.
//!
//! Time is always passed in by the caller (`Instant`s), so tests drive
//! the state machine with synthetic clocks and the production path costs
//! one relaxed atomic load while the breaker is closed.

use crate::FaultKind;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Panic-class faults inside `window` that trip the breaker open.
    pub fault_threshold: u32,
    /// Rolling window over which faults are counted.
    pub window: Duration,
    /// Open duration after the first trip; doubles per consecutive trip.
    pub base_backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Probe requests admitted while half-open.
    pub half_open_probes: u32,
    /// Consecutive probe successes required to close from half-open.
    pub success_to_close: u32,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            fault_threshold: 5,
            window: Duration::from_secs(1),
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            half_open_probes: 2,
            success_to_close: 2,
            jitter_seed: 0x5073_1a5e_d1ce_0007,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: every request is admitted.
    Closed,
    /// Tripped: requests are refused until the backoff elapses.
    Open,
    /// Probing: a bounded number of requests are admitted to test
    /// recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (telemetry / wire).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for the `serve.breaker.state` gauge
    /// (0 closed, 1 open, 2 half-open).
    pub fn gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

const STATE_CLOSED: u8 = 0;
const STATE_OPEN: u8 = 1;
const STATE_HALF_OPEN: u8 = 2;

/// Everything that needs the lock: fault timestamps, trip bookkeeping,
/// and half-open probe accounting.
#[derive(Debug)]
struct Inner {
    /// Instants of recent panic-class faults (bounded by the threshold:
    /// older entries are pruned on every record).
    faults: Vec<Instant>,
    /// When the current open period ends (meaningful while open).
    open_until: Option<Instant>,
    /// Consecutive trips without an intervening close (backoff exponent).
    trips: u32,
    /// Probes handed out in the current half-open period.
    probes_issued: u32,
    /// Consecutive probe successes in the current half-open period.
    probe_successes: u32,
}

/// See the [module docs](self). Thread-safe; the closed-state fast path
/// is a single relaxed atomic load.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    /// Mirror of the state for lock-free reads; the mutex is authoritative.
    state: AtomicU8,
    /// Monotonic count of trips to open (see [`CircuitBreaker::trips`]).
    trip_count: AtomicU64,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: AtomicU8::new(STATE_CLOSED),
            trip_count: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                faults: Vec::new(),
                open_until: None,
                trips: 0,
                probes_issued: 0,
                probe_successes: 0,
            }),
        }
    }

    /// The current state (transitions driven by `now`-carrying calls; a
    /// bare read never moves the clock forward).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Relaxed) {
            STATE_OPEN => BreakerState::Open,
            STATE_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Decides whether to admit a request at `now`.
    ///
    /// # Errors
    ///
    /// Returns how long the caller should wait before retrying when the
    /// breaker is open (or half-open with all probes already issued).
    pub fn admit(&self, now: Instant) -> Result<(), Duration> {
        if self.state.load(Ordering::Relaxed) == STATE_CLOSED {
            return Ok(());
        }
        let mut inner = self.lock();
        match self.state.load(Ordering::Relaxed) {
            STATE_OPEN => {
                let until = inner.open_until.unwrap_or(now);
                if now < until {
                    return Err(until - now);
                }
                // Backoff elapsed: half-open and hand out the first probe.
                self.state.store(STATE_HALF_OPEN, Ordering::Relaxed);
                inner.probes_issued = 1;
                inner.probe_successes = 0;
                Ok(())
            }
            STATE_HALF_OPEN => {
                if inner.probes_issued < self.config.half_open_probes {
                    inner.probes_issued += 1;
                    Ok(())
                } else {
                    // Probes are out; ask the caller to retry after one
                    // base backoff (the probes decide the real outcome).
                    Err(self.config.base_backoff)
                }
            }
            _ => Ok(()),
        }
    }

    /// Records a successful request outcome at `now`.
    pub fn record_success(&self, now: Instant) {
        if self.state.load(Ordering::Relaxed) == STATE_CLOSED {
            return;
        }
        let mut inner = self.lock();
        if self.state.load(Ordering::Relaxed) != STATE_HALF_OPEN {
            return;
        }
        inner.probe_successes += 1;
        if inner.probe_successes >= self.config.success_to_close {
            self.state.store(STATE_CLOSED, Ordering::Relaxed);
            inner.trips = 0;
            inner.faults.clear();
            inner.open_until = None;
            let _ = now; // close is success-count driven, not clock driven
        }
    }

    /// Records a request fault at `now`. Only panic-class faults (organic
    /// panics and injected chaos) count toward tripping: content faults
    /// like malformed input or an oversized graph are the pipeline doing
    /// its job, not the pipeline being broken.
    pub fn record_fault(&self, fault: &FaultKind, now: Instant) {
        if !matches!(
            fault,
            FaultKind::Panic { .. } | FaultKind::ChaosInjected { .. }
        ) {
            return;
        }
        let mut inner = self.lock();
        match self.state.load(Ordering::Relaxed) {
            STATE_HALF_OPEN => self.trip(&mut inner, now),
            STATE_OPEN => {}
            _ => {
                let window = self.config.window;
                inner.faults.retain(|&t| now.duration_since(t) < window);
                inner.faults.push(now);
                if inner.faults.len() as u32 >= self.config.fault_threshold {
                    self.trip(&mut inner, now);
                }
            }
        }
    }

    /// Trips (or re-trips) open, computing the jittered backoff.
    fn trip(&self, inner: &mut Inner, now: Instant) {
        inner.trips = inner.trips.saturating_add(1);
        let exp = inner.trips.saturating_sub(1).min(20);
        let base = self
            .config
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.config.max_backoff);
        // Deterministic jitter in [0, base/4): a function of the seed and
        // the trip count, so replays with the same schedule reproduce.
        let jitter_ns = if base.is_zero() {
            0
        } else {
            crate::mix(self.config.jitter_seed ^ u64::from(inner.trips))
                % (base.as_nanos() as u64 / 4).max(1)
        };
        inner.open_until = Some(now + base + Duration::from_nanos(jitter_ns));
        inner.faults.clear();
        inner.probes_issued = 0;
        inner.probe_successes = 0;
        self.state.store(STATE_OPEN, Ordering::Relaxed);
        self.trip_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total times the breaker has tripped open (monotonic; the serve
    /// layer mirrors this into the `serve.breaker.trips` counter — this
    /// crate stays telemetry-free).
    pub fn trips(&self) -> u64 {
        self.trip_count.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panic_fault() -> FaultKind {
        FaultKind::Panic {
            message: "boom".into(),
        }
    }

    fn config() -> BreakerConfig {
        BreakerConfig {
            fault_threshold: 3,
            window: Duration::from_millis(100),
            base_backoff: Duration::from_millis(40),
            max_backoff: Duration::from_millis(400),
            half_open_probes: 2,
            success_to_close: 2,
            jitter_seed: 7,
        }
    }

    #[test]
    fn trips_on_a_burst_and_stays_closed_below_threshold() {
        let b = CircuitBreaker::new(config());
        let t0 = Instant::now();
        b.record_fault(&panic_fault(), t0);
        b.record_fault(&panic_fault(), t0 + Duration::from_millis(10));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(t0 + Duration::from_millis(11)).is_ok());
        b.record_fault(&panic_fault(), t0 + Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::Open);
        let retry = b.admit(t0 + Duration::from_millis(21)).unwrap_err();
        assert!(retry > Duration::ZERO);
    }

    #[test]
    fn stale_faults_fall_out_of_the_window() {
        let b = CircuitBreaker::new(config());
        let t0 = Instant::now();
        b.record_fault(&panic_fault(), t0);
        b.record_fault(&panic_fault(), t0 + Duration::from_millis(10));
        // Third fault arrives after the first two left the 100 ms window.
        b.record_fault(&panic_fault(), t0 + Duration::from_millis(200));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn content_faults_never_trip() {
        let b = CircuitBreaker::new(config());
        let t0 = Instant::now();
        for i in 0..20 {
            b.record_fault(
                &FaultKind::MalformedInput {
                    message: format!("bad {i}"),
                },
                t0 + Duration::from_millis(i),
            );
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_opens_probes_and_closes_on_success() {
        let b = CircuitBreaker::new(config());
        let t0 = Instant::now();
        for i in 0..3 {
            b.record_fault(&panic_fault(), t0 + Duration::from_millis(i));
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Well past any jittered backoff (base 40ms + <10ms jitter).
        let later = t0 + Duration::from_millis(120);
        assert!(b.admit(later).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(later).is_ok(), "second probe admitted");
        assert!(b.admit(later).is_err(), "probes exhausted");
        b.record_success(later);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(later);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(later).is_ok());
    }

    #[test]
    fn probe_fault_reopens_with_longer_backoff() {
        let b = CircuitBreaker::new(config());
        let t0 = Instant::now();
        for i in 0..3 {
            b.record_fault(&panic_fault(), t0 + Duration::from_millis(i));
        }
        let first_retry = b.admit(t0 + Duration::from_millis(3)).unwrap_err();
        let later = t0 + Duration::from_millis(120);
        assert!(b.admit(later).is_ok());
        b.record_fault(&panic_fault(), later);
        assert_eq!(b.state(), BreakerState::Open);
        let second_retry = b.admit(later).unwrap_err();
        // Second trip doubles the base backoff; jitter is < base/4 so the
        // ordering is robust.
        assert!(
            second_retry > first_retry,
            "{second_retry:?} vs {first_retry:?}"
        );
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let schedule = |seed: u64| {
            let b = CircuitBreaker::new(BreakerConfig {
                jitter_seed: seed,
                ..config()
            });
            let t0 = Instant::now();
            let mut retries = Vec::new();
            for trip in 0..8u64 {
                let now = t0 + Duration::from_secs(trip * 10);
                for i in 0..3 {
                    b.record_fault(&panic_fault(), now + Duration::from_millis(i));
                }
                // Probe through half-open so the next burst re-trips from
                // a comparable state.
                retries.push(b.admit(now + Duration::from_millis(3)).unwrap_err());
                assert!(b.admit(now + Duration::from_secs(9)).is_ok());
            }
            retries
        };
        // Deterministic: identical seeds give identical schedules.
        // (Instant bases differ between runs but retry_after durations are
        // pure functions of config + trip count.)
        let a = schedule(7);
        let b = schedule(7);
        let approx = |x: Duration, y: Duration| x.abs_diff(y) < Duration::from_millis(5);
        assert!(
            a.iter().zip(&b).all(|(x, y)| approx(*x, *y)),
            "{a:?}\n{b:?}"
        );
        // Capped: max_backoff 400ms + jitter < 100ms, minus probe elapsed.
        assert!(a.iter().all(|d| *d < Duration::from_millis(520)), "{a:?}");
    }
}
