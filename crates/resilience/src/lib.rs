//! Resilience primitives shared across the Soteria workspace.
//!
//! The pipeline's premise is surviving adversarial inputs, so merely
//! *malformed* ones must never take the process down. This crate holds the
//! pieces every layer shares:
//!
//! * [`FaultKind`] — the typed taxonomy of per-sample failures. A
//!   pathological input degrades into a structured verdict carrying one of
//!   these instead of aborting the batch.
//! * [`ResourceGuards`] — configurable admission limits (CFG size, walk
//!   budget, per-sample wall clock) checked before and during extraction.
//! * [`chaos_point`] — a deterministic fault-injection hook, armed by the
//!   `SOTERIA_CHAOS=<seed>` environment variable (or programmatically via
//!   [`set_chaos_seed`]), that injects panics and delays into pipeline
//!   stages so the isolation machinery is exercised end to end.
//! * [`crc32`] / [`atomic_write`] — crash-safe persistence building
//!   blocks: payload checksums and temp-file + fsync + rename writes.
//!
//! The crate is dependency-light (serde only) so every layer — `cfg`,
//! `corpus`, `features`, `core`, the binaries — can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod breaker;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write as _;
use std::panic::UnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Why a sample failed to produce a clean/adversarial verdict.
///
/// Every variant maps onto a telemetry counter `resilience.faults.<slug>`
/// (see [`FaultKind::slug`]) so fleet-wide fault rates are observable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// A pipeline stage panicked while processing the sample; the panic
    /// was caught at the sample boundary.
    Panic {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The sample's CFG exceeds the configured node/edge admission limits.
    GraphTooLarge {
        /// Observed node count.
        nodes: usize,
        /// Observed edge count.
        edges: usize,
        /// Configured node limit (0 = the edge limit tripped).
        max_nodes: usize,
        /// Configured edge limit (0 = the node limit tripped).
        max_edges: usize,
    },
    /// The random-walk budget implied by the extractor configuration and
    /// graph size exceeds the configured cap.
    WalkBudgetExceeded {
        /// Estimated total walk steps for the sample.
        steps: usize,
        /// Configured cap.
        max_steps: usize,
    },
    /// Processing exceeded the per-sample wall-clock budget.
    Timeout {
        /// Observed elapsed milliseconds.
        elapsed_ms: u64,
        /// Configured budget in milliseconds.
        budget_ms: u64,
    },
    /// The input failed structural validation (container parse, lifting,
    /// or CFG construction).
    MalformedInput {
        /// The underlying typed error, rendered.
        message: String,
    },
    /// A fault injected by the `SOTERIA_CHAOS` hook (distinguished from
    /// organic panics so chaos runs can verify their own coverage).
    ChaosInjected {
        /// The stage the fault was injected into.
        stage: String,
    },
    /// The request's deadline expired before a verdict was computed. A
    /// load/timing outcome, not a content one — carriers of this fault
    /// must never enter content-keyed caches.
    DeadlineExceeded {
        /// Observed elapsed milliseconds when expiry was detected.
        elapsed_ms: u64,
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u64,
    },
    /// The service answered in a degraded tier (e.g. an AE-only fast
    /// verdict) because it was shedding load. Also load-derived and
    /// therefore never cacheable.
    Overload {
        /// The degradation tier that answered (e.g. `"ae-only"`).
        tier: String,
    },
}

/// Prefix chaos-injected panics carry, letting the catch site classify
/// them as [`FaultKind::ChaosInjected`] rather than organic panics.
pub const CHAOS_PANIC_PREFIX: &str = "soteria-chaos: injected panic at ";

impl FaultKind {
    /// Builds the fault for a caught panic payload, classifying injected
    /// chaos panics separately from organic ones.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        match message.strip_prefix(CHAOS_PANIC_PREFIX) {
            Some(stage) => FaultKind::ChaosInjected {
                stage: stage.to_string(),
            },
            None => FaultKind::Panic { message },
        }
    }

    /// Wraps a typed parse/lift error.
    pub fn malformed(err: impl fmt::Display) -> Self {
        FaultKind::MalformedInput {
            message: err.to_string(),
        }
    }

    /// A short stable identifier used as the telemetry counter suffix.
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::Panic { .. } => "panic",
            FaultKind::GraphTooLarge { .. } => "graph_too_large",
            FaultKind::WalkBudgetExceeded { .. } => "walk_budget",
            FaultKind::Timeout { .. } => "timeout",
            FaultKind::MalformedInput { .. } => "malformed_input",
            FaultKind::ChaosInjected { .. } => "chaos",
            FaultKind::DeadlineExceeded { .. } => "deadline",
            FaultKind::Overload { .. } => "overload",
        }
    }

    /// Whether this fault is a pure function of the sample's content (and
    /// therefore safe to memoize in a content-keyed verdict cache). Load
    /// and timing faults return `false`: the same bytes may well succeed
    /// once the pressure passes.
    pub fn content_derived(&self) -> bool {
        !matches!(
            self,
            FaultKind::DeadlineExceeded { .. }
                | FaultKind::Overload { .. }
                | FaultKind::Timeout { .. }
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic { message } => write!(f, "stage panicked: {message}"),
            FaultKind::GraphTooLarge {
                nodes,
                edges,
                max_nodes,
                max_edges,
            } => write!(
                f,
                "graph too large: {nodes} nodes / {edges} edges \
                 (limits {max_nodes} / {max_edges})"
            ),
            FaultKind::WalkBudgetExceeded { steps, max_steps } => {
                write!(f, "walk budget exceeded: {steps} steps > {max_steps}")
            }
            FaultKind::Timeout {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "sample timed out: {elapsed_ms} ms > {budget_ms} ms budget"
            ),
            FaultKind::MalformedInput { message } => write!(f, "malformed input: {message}"),
            FaultKind::ChaosInjected { stage } => write!(f, "chaos fault injected at {stage}"),
            FaultKind::DeadlineExceeded {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed > {deadline_ms} ms deadline"
            ),
            FaultKind::Overload { tier } => {
                write!(f, "degraded under overload (tier {tier})")
            }
        }
    }
}

impl std::error::Error for FaultKind {}

/// Per-sample admission limits. `None` disables the corresponding check;
/// [`ResourceGuards::default`] enables generous limits that no legitimate
/// corpus sample approaches but a decompression-bomb-style input trips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceGuards {
    /// Maximum CFG node count admitted to feature extraction.
    pub max_nodes: Option<usize>,
    /// Maximum CFG edge count admitted to feature extraction.
    pub max_edges: Option<usize>,
    /// Maximum estimated total random-walk steps per sample.
    pub max_walk_steps: Option<usize>,
    /// Per-sample wall-clock budget in milliseconds. Checked cooperatively
    /// (after extraction), so it flags rather than preempts a slow sample.
    pub sample_budget_ms: Option<u64>,
}

impl Default for ResourceGuards {
    fn default() -> Self {
        ResourceGuards {
            max_nodes: Some(1 << 20),
            max_edges: Some(1 << 22),
            max_walk_steps: Some(1 << 28),
            sample_budget_ms: None,
        }
    }
}

impl ResourceGuards {
    /// No limits at all — the pre-resilience behavior.
    pub fn unlimited() -> Self {
        ResourceGuards {
            max_nodes: None,
            max_edges: None,
            max_walk_steps: None,
            sample_budget_ms: None,
        }
    }

    /// Checks graph size against the node/edge limits.
    ///
    /// # Errors
    ///
    /// Returns [`FaultKind::GraphTooLarge`] when either limit is exceeded.
    pub fn admit_graph(&self, nodes: usize, edges: usize) -> Result<(), FaultKind> {
        let node_limit = self.max_nodes.unwrap_or(usize::MAX);
        let edge_limit = self.max_edges.unwrap_or(usize::MAX);
        if nodes > node_limit || edges > edge_limit {
            return Err(FaultKind::GraphTooLarge {
                nodes,
                edges,
                max_nodes: self.max_nodes.unwrap_or(0),
                max_edges: self.max_edges.unwrap_or(0),
            });
        }
        Ok(())
    }

    /// Checks an estimated walk-step total against the walk budget.
    ///
    /// # Errors
    ///
    /// Returns [`FaultKind::WalkBudgetExceeded`] when the budget is
    /// exceeded.
    pub fn admit_walk_steps(&self, steps: usize) -> Result<(), FaultKind> {
        match self.max_walk_steps {
            Some(max) if steps > max => Err(FaultKind::WalkBudgetExceeded {
                steps,
                max_steps: max,
            }),
            _ => Ok(()),
        }
    }

    /// Starts a wall-clock budget for one sample.
    pub fn start_budget(&self) -> SampleBudget {
        SampleBudget {
            started: Instant::now(),
            budget_ms: self.sample_budget_ms,
        }
    }
}

/// A running per-sample wall-clock budget (see
/// [`ResourceGuards::start_budget`]).
#[derive(Debug, Clone)]
pub struct SampleBudget {
    started: Instant,
    budget_ms: Option<u64>,
}

impl SampleBudget {
    /// Checks the elapsed time against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`FaultKind::Timeout`] once the budget is exhausted.
    pub fn check(&self) -> Result<(), FaultKind> {
        if let Some(budget_ms) = self.budget_ms {
            let elapsed_ms = self.started.elapsed().as_millis() as u64;
            if elapsed_ms > budget_ms {
                return Err(FaultKind::Timeout {
                    elapsed_ms,
                    budget_ms,
                });
            }
        }
        Ok(())
    }
}

/// Runs `f` with panics confined to this sample: a panic (organic or
/// chaos-injected) becomes an `Err(FaultKind)` instead of unwinding into
/// the caller. The default panic hook still runs (callers that expect a
/// high panic volume, like the chaos harness, install a quiet hook).
pub fn isolate<R>(f: impl FnOnce() -> R + UnwindSafe) -> Result<R, FaultKind> {
    std::panic::catch_unwind(f).map_err(FaultKind::from_panic)
}

// ---------------------------------------------------------------------------
// Chaos injection

/// Sentinel meaning "chaos disabled" in the atomic seed cell.
const CHAOS_OFF: i64 = -1;

fn chaos_cell() -> &'static AtomicI64 {
    static CELL: OnceLock<AtomicI64> = OnceLock::new();
    CELL.get_or_init(|| {
        let from_env = std::env::var("SOTERIA_CHAOS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(|s| (s & (i64::MAX as u64)) as i64)
            .unwrap_or(CHAOS_OFF);
        AtomicI64::new(from_env)
    })
}

/// Arms (`Some(seed)`) or disarms (`None`) chaos injection for this
/// process, overriding the `SOTERIA_CHAOS` environment variable.
pub fn set_chaos_seed(seed: Option<u64>) {
    let v = match seed {
        Some(s) => (s & (i64::MAX as u64)) as i64,
        None => CHAOS_OFF,
    };
    chaos_cell().store(v, Ordering::SeqCst);
}

/// The armed chaos seed, if any.
pub fn chaos_seed() -> Option<u64> {
    match chaos_cell().load(Ordering::SeqCst) {
        CHAOS_OFF => None,
        s => Some(s as u64),
    }
}

/// SplitMix64-style mix used to make chaos decisions deterministic in
/// `(seed, stage, key)` regardless of thread scheduling.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stage_hash(stage: &str) -> u64 {
    // FNV-1a, stable across runs (unlike `DefaultHasher`).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in stage.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic fault-injection point. When chaos is armed, roughly one
/// in eight `(stage, key)` pairs panics (with [`CHAOS_PANIC_PREFIX`]) and
/// one in eight sleeps a few milliseconds; the decision depends only on
/// the chaos seed, the stage name, and `key`, never on timing. When chaos
/// is disarmed this is a no-op costing one atomic load.
///
/// # Panics
///
/// Panics deliberately (message prefixed with [`CHAOS_PANIC_PREFIX`]) when
/// the armed chaos seed selects this `(stage, key)` pair. Call sites must
/// sit inside a per-sample [`isolate`] boundary.
pub fn chaos_point(stage: &str, key: u64) {
    let Some(seed) = chaos_seed() else { return };
    let roll = mix(seed ^ stage_hash(stage).wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    match roll % 8 {
        0 => panic!("{CHAOS_PANIC_PREFIX}{stage}"),
        1 => std::thread::sleep(Duration::from_millis(1 + roll % 3)),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Crash-safe persistence primitives

/// The 8 lookup tables for slicing-by-8 CRC-32 (table `0` is the classic
/// byte-at-a-time table; table `t` advances a byte `t` positions further
/// through the polynomial division). Built once at first use.
static CRC32_TABLES: std::sync::OnceLock<Box<[[u32; 256]; 8]>> = std::sync::OnceLock::new();

fn crc32_tables() -> &'static [[u32; 256]; 8] {
    CRC32_TABLES.get_or_init(|| {
        let mut tables = Box::new([[0u32; 256]; 8]);
        for b in 0..256u32 {
            let mut crc = b;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
            tables[0][b as usize] = crc;
        }
        for t in 1..8 {
            for b in 0..256usize {
                let prev = tables[t - 1][b];
                tables[t][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            }
        }
        tables
    })
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes` —
/// the checksum embedded in persisted-state envelopes and the v3 binary
/// artifact's section table.
///
/// Implemented as slicing-by-8 (eight table lookups per 8-byte chunk)
/// because artifact loading checksums every weight tensor; the values are
/// identical to the bit-at-a-time definition for all inputs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc32_tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Writes `bytes` to `path` crash-safely: the payload goes to a sibling
/// temp file first, is fsynced, then atomically renamed over `path` (and
/// the directory is fsynced so the rename itself is durable). A crash at
/// any point leaves either the old file or the new file — never a torn
/// mixture, never a partial file under the final name.
///
/// # Errors
///
/// Propagates I/O failures; the temp file is removed on error.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);

    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            // Persist the rename: fsync the containing directory. Opening a
            // directory read-only for fsync works on Linux; elsewhere a
            // failure here is non-fatal for the data itself.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_slugs_are_stable_and_distinct() {
        let faults = [
            FaultKind::Panic {
                message: "x".into(),
            },
            FaultKind::GraphTooLarge {
                nodes: 1,
                edges: 1,
                max_nodes: 0,
                max_edges: 0,
            },
            FaultKind::WalkBudgetExceeded {
                steps: 2,
                max_steps: 1,
            },
            FaultKind::Timeout {
                elapsed_ms: 2,
                budget_ms: 1,
            },
            FaultKind::MalformedInput {
                message: "y".into(),
            },
            FaultKind::ChaosInjected { stage: "s".into() },
            FaultKind::DeadlineExceeded {
                elapsed_ms: 9,
                deadline_ms: 5,
            },
            FaultKind::Overload {
                tier: "ae-only".into(),
            },
        ];
        let slugs: std::collections::BTreeSet<&str> = faults.iter().map(|f| f.slug()).collect();
        assert_eq!(slugs.len(), faults.len());
        for f in &faults {
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn load_derived_faults_are_not_cacheable() {
        assert!(FaultKind::MalformedInput {
            message: "m".into()
        }
        .content_derived());
        assert!(FaultKind::ChaosInjected { stage: "s".into() }.content_derived());
        assert!(FaultKind::Panic {
            message: "p".into()
        }
        .content_derived());
        assert!(!FaultKind::DeadlineExceeded {
            elapsed_ms: 2,
            deadline_ms: 1
        }
        .content_derived());
        assert!(!FaultKind::Overload {
            tier: "ae-only".into()
        }
        .content_derived());
        assert!(!FaultKind::Timeout {
            elapsed_ms: 2,
            budget_ms: 1
        }
        .content_derived());
    }

    #[test]
    fn panic_classification_separates_chaos_from_organic() {
        let chaos =
            FaultKind::from_panic(Box::new(format!("{CHAOS_PANIC_PREFIX}features.extract")));
        assert_eq!(
            chaos,
            FaultKind::ChaosInjected {
                stage: "features.extract".into()
            }
        );
        let organic = FaultKind::from_panic(Box::new("index out of bounds"));
        assert!(matches!(organic, FaultKind::Panic { .. }));
        let opaque = FaultKind::from_panic(Box::new(42u32));
        assert!(matches!(opaque, FaultKind::Panic { .. }));
    }

    #[test]
    fn guards_admit_within_limits_and_reject_beyond() {
        let g = ResourceGuards {
            max_nodes: Some(10),
            max_edges: Some(20),
            max_walk_steps: Some(100),
            sample_budget_ms: None,
        };
        assert!(g.admit_graph(10, 20).is_ok());
        assert!(matches!(
            g.admit_graph(11, 0),
            Err(FaultKind::GraphTooLarge { .. })
        ));
        assert!(matches!(
            g.admit_graph(0, 21),
            Err(FaultKind::GraphTooLarge { .. })
        ));
        assert!(g.admit_walk_steps(100).is_ok());
        assert!(matches!(
            g.admit_walk_steps(101),
            Err(FaultKind::WalkBudgetExceeded { .. })
        ));
        assert!(ResourceGuards::unlimited()
            .admit_graph(usize::MAX, usize::MAX)
            .is_ok());
    }

    #[test]
    fn exhausted_budget_reports_timeout() {
        let g = ResourceGuards {
            sample_budget_ms: Some(0),
            ..ResourceGuards::unlimited()
        };
        let budget = g.start_budget();
        std::thread::sleep(Duration::from_millis(3));
        assert!(matches!(budget.check(), Err(FaultKind::Timeout { .. })));
        assert!(ResourceGuards::unlimited().start_budget().check().is_ok());
    }

    #[test]
    fn isolate_converts_panics_and_passes_values() {
        assert_eq!(isolate(|| 7).unwrap(), 7);
        let fault = isolate(|| panic!("boom")).unwrap_err();
        assert_eq!(
            fault,
            FaultKind::Panic {
                message: "boom".into()
            }
        );
    }

    #[test]
    fn chaos_is_deterministic_and_togglable() {
        let prior = chaos_seed();
        set_chaos_seed(Some(42));
        // Find a key that panics and one that does not; both decisions
        // must be reproducible.
        let outcome = |key: u64| isolate(move || chaos_point("test.stage", key)).err();
        let outcomes: Vec<Option<FaultKind>> = (0..64).map(outcome).collect();
        assert!(outcomes.iter().any(|o| o.is_some()), "no chaos in 64 keys");
        assert!(outcomes.iter().any(|o| o.is_none()), "all 64 keys tripped");
        let again: Vec<Option<FaultKind>> = (0..64).map(outcome).collect();
        assert_eq!(outcomes, again);
        set_chaos_seed(None);
        assert!((0..64).all(|k| outcome(k).is_none()));
        set_chaos_seed(prior);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("soteria-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
