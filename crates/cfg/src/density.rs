//! Per-node density as defined by the Soteria paper.
//!
//! The paper: *"The density of a node is defined as the summation of in- and
//! out-edges over the total number of edges in the graph."* Density-based
//! labeling (DBL) ranks nodes by this quantity, most dense first.

use crate::block::BlockId;
use crate::graph::Cfg;

/// Density of a single node: `(in_degree + out_degree) / |E|`.
///
/// Returns 0 for graphs with no edges.
///
/// # Example
///
/// ```
/// use soteria_cfg::{CfgBuilder, density};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let e = b.add_block(0, 1);
/// let f = b.add_block(1, 1);
/// b.add_edge(e, f)?;
/// let g = b.build(e)?;
/// assert_eq!(density::node_density(&g, e), 1.0); // 1 of 1 edges touch e
/// # Ok(())
/// # }
/// ```
pub fn node_density(cfg: &Cfg, v: BlockId) -> f64 {
    let e = cfg.edge_count();
    if e == 0 {
        return 0.0;
    }
    (cfg.in_degree(v) + cfg.out_degree(v)) as f64 / e as f64
}

/// Densities of every node in dense id order.
pub fn node_densities(cfg: &Cfg) -> Vec<f64> {
    cfg.block_ids().map(|v| node_density(cfg, v)).collect()
}

/// Whole-graph edge density `|E| / (|V|·(|V|-1))` — the fraction of possible
/// directed edges present. Part of the Alasmary baseline feature set.
pub fn graph_density(cfg: &Cfg) -> f64 {
    let n = cfg.node_count();
    if n <= 1 {
        return 0.0;
    }
    cfg.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    #[test]
    fn densities_of_diamond() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let l = b.add_block(1, 1);
        let r = b.add_block(2, 1);
        let x = b.add_block(3, 1);
        b.add_edge(e, l).unwrap();
        b.add_edge(e, r).unwrap();
        b.add_edge(l, x).unwrap();
        b.add_edge(r, x).unwrap();
        let g = b.build(e).unwrap();

        assert_eq!(node_density(&g, e), 2.0 / 4.0);
        assert_eq!(node_density(&g, l), 2.0 / 4.0);
        assert_eq!(node_density(&g, x), 2.0 / 4.0);
        let all = node_densities(&g);
        assert_eq!(all.len(), 4);
        // Each edge contributes to exactly two endpoints, so densities sum
        // to 2 (self-loops would contribute both endpoints to one node).
        let sum: f64 = all.iter().sum();
        assert!((sum - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_has_zero_density() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let g = b.build(e).unwrap();
        assert_eq!(node_density(&g, e), 0.0);
        assert_eq!(graph_density(&g), 0.0);
    }

    #[test]
    fn self_loop_counts_in_and_out() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        b.add_edge(e, e).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(node_density(&g, e), 2.0);
    }

    #[test]
    fn graph_density_of_complete_digraph_is_one() {
        let mut b = CfgBuilder::new();
        let ids: Vec<_> = (0..3).map(|i| b.add_block(i, 1)).collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
        }
        let g = b.build(ids[0]).unwrap();
        assert!((graph_density(&g) - 1.0).abs() < 1e-12);
    }
}
