//! Control flow graph (CFG) representation and graph algorithms.
//!
//! This crate is the structural substrate of the Soteria reproduction: every
//! stage of the pipeline — the synthetic corpus generator, the GEA attack,
//! the density/level labeling, the random-walk feature extractor, and the
//! Alasmary graph-theoretic baseline — operates on the [`Cfg`] type defined
//! here.
//!
//! A [`Cfg`] is a directed graph of basic blocks with a designated entry
//! block. The crate provides:
//!
//! * construction and validation ([`CfgBuilder`]),
//! * traversals: BFS levels, reachability, DFS ([`traversal`]),
//! * centrality measures: betweenness (Brandes) and closeness
//!   ([`centrality`]),
//! * per-node density as defined by the paper ([`density`]),
//! * whole-graph statistics used by the Alasmary et al. baseline
//!   ([`stats`]),
//! * Graphviz DOT export ([`dot`]).
//!
//! # Example
//!
//! ```
//! use soteria_cfg::{Cfg, CfgBuilder};
//!
//! # fn main() -> Result<(), soteria_cfg::CfgError> {
//! // The diamond from Fig. 4 of the paper: entry branches into two blocks
//! // that rejoin at the exit.
//! let mut b = CfgBuilder::new();
//! let entry = b.add_block(0x1000, 4);
//! let left = b.add_block(0x1010, 2);
//! let right = b.add_block(0x1020, 3);
//! let exit = b.add_block(0x1030, 1);
//! b.add_edge(entry, left)?;
//! b.add_edge(entry, right)?;
//! b.add_edge(left, exit)?;
//! b.add_edge(right, exit)?;
//! let cfg: Cfg = b.build(entry)?;
//!
//! assert_eq!(cfg.node_count(), 4);
//! assert_eq!(cfg.edge_count(), 4);
//! assert_eq!(cfg.levels()[exit.index()], Some(2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod block;
pub mod builder;
pub mod centrality;
pub mod density;
pub mod dominators;
pub mod dot;
pub mod error;
pub mod graph;
pub mod stats;
pub mod traversal;

pub use block::{BasicBlock, BlockId};
pub use builder::CfgBuilder;
pub use centrality::CentralityFactors;
pub use dominators::Dominators;
pub use error::CfgError;
pub use graph::{Cfg, CsrAdjacency};
pub use stats::GraphStats;
