//! Incremental construction of [`Cfg`]s.

use crate::block::{BasicBlock, BlockId};
use crate::error::CfgError;
use crate::graph::Cfg;
use std::collections::BTreeSet;

/// Builder for [`Cfg`]s.
///
/// Blocks are added first (each `add_block` returns the new block's id),
/// then edges, then [`build`](CfgBuilder::build) seals the graph with its
/// entry block. The builder validates edge endpoints eagerly and rejects
/// duplicate edges.
///
/// # Example
///
/// ```
/// use soteria_cfg::CfgBuilder;
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let entry = b.add_block(0x100, 3);
/// let body = b.add_block(0x10c, 5);
/// b.add_edge(entry, body)?;
/// b.add_edge(body, body)?; // self-loop: a tight spin loop
/// let cfg = b.build(entry)?;
/// assert_eq!(cfg.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CfgBuilder {
    blocks: Vec<BasicBlock>,
    edges: BTreeSet<(BlockId, BlockId)>,
}

impl CfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `blocks` blocks.
    pub fn with_capacity(blocks: usize) -> Self {
        CfgBuilder {
            blocks: Vec::with_capacity(blocks),
            edges: BTreeSet::new(),
        }
    }

    /// Adds a block with the given address and instruction count, returning
    /// its id.
    pub fn add_block(&mut self, address: u64, instruction_count: u32) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks
            .push(BasicBlock::new(address, instruction_count));
        id
    }

    /// Adds an existing [`BasicBlock`] payload, returning its id.
    pub fn push_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Number of blocks added so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::UnknownBlock`] if either endpoint has not been
    /// added, and [`CfgError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) -> Result<(), CfgError> {
        if from.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(from));
        }
        if to.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(to));
        }
        if !self.edges.insert((from, to)) {
            return Err(CfgError::DuplicateEdge(from, to));
        }
        Ok(())
    }

    /// Adds the edge if absent; returns `true` if it was inserted.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::UnknownBlock`] if either endpoint has not been
    /// added.
    pub fn add_edge_idempotent(&mut self, from: BlockId, to: BlockId) -> Result<bool, CfgError> {
        match self.add_edge(from, to) {
            Ok(()) => Ok(true),
            Err(CfgError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Whether the directed edge already exists.
    pub fn has_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Seals the graph with `entry` as its entry block.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::Empty`] if no blocks were added and
    /// [`CfgError::UnknownBlock`] if `entry` is out of range.
    pub fn build(self, entry: BlockId) -> Result<Cfg, CfgError> {
        let _span = soteria_telemetry::span("cfg.build");
        if self.blocks.is_empty() {
            return Err(CfgError::Empty);
        }
        if entry.index() >= self.blocks.len() {
            return Err(CfgError::UnknownBlock(entry));
        }
        soteria_telemetry::counter("cfg.built", 1);
        soteria_telemetry::counter("cfg.built.nodes", self.blocks.len() as u64);
        let n = self.blocks.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        let edge_count = self.edges.len();
        for (f, t) in self.edges {
            succ[f.index()].push(t);
            pred[t.index()].push(f);
        }
        // BTreeSet iteration is ordered by (from, to), so succ lists come out
        // sorted; pred lists need an explicit sort.
        for p in &mut pred {
            p.sort_unstable();
        }
        Ok(Cfg {
            blocks: self.blocks,
            succ,
            pred,
            entry,
            edge_count,
            csr: std::sync::OnceLock::new(),
        })
    }
}

impl From<&Cfg> for CfgBuilder {
    /// Re-opens a sealed graph for modification (used by the GEA attack to
    /// augment an existing CFG).
    fn from(cfg: &Cfg) -> Self {
        CfgBuilder {
            blocks: cfg.blocks.clone(),
            edges: cfg.edges().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty_graph_fails() {
        assert_eq!(
            CfgBuilder::new().build(BlockId::new(0)),
            Err(CfgError::Empty)
        );
    }

    #[test]
    fn build_with_out_of_range_entry_fails() {
        let mut b = CfgBuilder::new();
        b.add_block(0, 1);
        assert_eq!(
            b.build(BlockId::new(9)),
            Err(CfgError::UnknownBlock(BlockId::new(9)))
        );
    }

    #[test]
    fn edge_to_unknown_block_fails() {
        let mut b = CfgBuilder::new();
        let a = b.add_block(0, 1);
        assert_eq!(
            b.add_edge(a, BlockId::new(5)),
            Err(CfgError::UnknownBlock(BlockId::new(5)))
        );
        assert_eq!(
            b.add_edge(BlockId::new(5), a),
            Err(CfgError::UnknownBlock(BlockId::new(5)))
        );
    }

    #[test]
    fn duplicate_edge_fails_but_idempotent_insert_reports_false() {
        let mut b = CfgBuilder::new();
        let a = b.add_block(0, 1);
        let c = b.add_block(1, 1);
        b.add_edge(a, c).unwrap();
        assert_eq!(b.add_edge(a, c), Err(CfgError::DuplicateEdge(a, c)));
        assert_eq!(b.add_edge_idempotent(a, c), Ok(false));
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn builder_round_trips_through_from_cfg() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 2);
        let f = b.add_block(4, 3);
        b.add_edge(e, f).unwrap();
        let g = b.build(e).unwrap();

        let reopened = CfgBuilder::from(&g);
        assert_eq!(reopened.block_count(), 2);
        assert_eq!(reopened.edge_count(), 1);
        assert!(reopened.has_edge(e, f));
        let g2 = reopened.build(e).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = CfgBuilder::with_capacity(16);
        let a = b.add_block(0, 1);
        assert_eq!(a.index(), 0);
        assert_eq!(b.block_count(), 1);
    }

    #[test]
    fn pred_lists_are_sorted_after_build() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let m1 = b.add_block(1, 1);
        let m2 = b.add_block(2, 1);
        let x = b.add_block(3, 1);
        // Insert in an order that would leave pred[x] unsorted without the
        // explicit sort.
        b.add_edge(m2, x).unwrap();
        b.add_edge(m1, x).unwrap();
        b.add_edge(e, m1).unwrap();
        b.add_edge(e, m2).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(g.predecessors(x), &[m1, m2]);
    }
}
