//! Basic blocks and block identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a basic block within its [`Cfg`](crate::Cfg).
///
/// `BlockId`s are dense: a graph with `n` blocks uses ids `0..n`. They are
/// only meaningful relative to the graph that produced them.
///
/// # Example
///
/// ```
/// use soteria_cfg::BlockId;
///
/// let id = BlockId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "B3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("block index exceeds u32::MAX"))
    }

    /// Returns the dense index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<BlockId> for usize {
    fn from(id: BlockId) -> usize {
        id.index()
    }
}

/// A basic block: a straight-line sequence of instructions with a single
/// entry (its first instruction) and a single exit (its last).
///
/// The Soteria pipeline cares only about graph *structure*, so a block
/// carries just enough payload to round-trip through the synthetic binary
/// format: its start address and its instruction count.
///
/// # Example
///
/// ```
/// use soteria_cfg::BasicBlock;
///
/// let bb = BasicBlock::new(0x4000, 7);
/// assert_eq!(bb.address(), 0x4000);
/// assert_eq!(bb.instruction_count(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicBlock {
    address: u64,
    instruction_count: u32,
}

impl BasicBlock {
    /// Creates a basic block starting at `address` containing
    /// `instruction_count` instructions.
    pub fn new(address: u64, instruction_count: u32) -> Self {
        BasicBlock {
            address,
            instruction_count,
        }
    }

    /// Start address of the block in the binary it was lifted from.
    pub fn address(&self) -> u64 {
        self.address
    }

    /// Number of instructions in the block.
    pub fn instruction_count(&self) -> u32 {
        self.instruction_count
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        BasicBlock::new(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_round_trips_index() {
        for i in [0usize, 1, 17, 100_000] {
            assert_eq!(BlockId::new(i).index(), i);
        }
    }

    #[test]
    fn block_id_display_is_prefixed() {
        assert_eq!(BlockId::new(0).to_string(), "B0");
        assert_eq!(BlockId::new(42).to_string(), "B42");
    }

    #[test]
    fn block_id_orders_by_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert_eq!(BlockId::new(5), BlockId::new(5));
    }

    #[test]
    fn basic_block_accessors() {
        let bb = BasicBlock::new(0xdead_beef, 12);
        assert_eq!(bb.address(), 0xdead_beef);
        assert_eq!(bb.instruction_count(), 12);
    }

    #[test]
    fn default_block_is_single_instruction_at_zero() {
        let bb = BasicBlock::default();
        assert_eq!(bb.address(), 0);
        assert_eq!(bb.instruction_count(), 1);
    }

    #[test]
    #[should_panic(expected = "block index exceeds u32::MAX")]
    fn block_id_rejects_oversized_index() {
        let _ = BlockId::new(u32::MAX as usize + 1);
    }
}
