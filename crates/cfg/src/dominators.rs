//! Dominator trees (Cooper–Harvey–Kennedy) and reducibility checking.
//!
//! Not used by the Soteria pipeline itself, but by the corpus generator's
//! validation suite: structured motif growth must produce *reducible*
//! graphs (every retreating edge targets a dominator of its source — i.e.
//! all loops are natural loops), which is what compiler output looks like
//! and what distinguishes our synthetic programs from random digraphs.

use crate::block::BlockId;
use crate::graph::Cfg;

/// The immediate-dominator tree of the blocks reachable from the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[i]` is the immediate dominator of block `i`; the entry is its
    /// own idom; unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes the dominator tree with the Cooper–Harvey–Kennedy
    /// iterative algorithm over a reverse-postorder numbering.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.node_count();
        let entry = cfg.entry();

        // Reverse postorder over reachable blocks.
        let rpo = reverse_postorder(cfg);
        let mut order_of = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order_of[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while order_of[a.index()] > order_of[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while order_of[b.index()] > order_of[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.predecessors(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, entry }
    }

    /// Immediate dominator of `b` (`None` for unreachable blocks; the
    /// entry is its own idom).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (every path from the entry to `b` passes
    /// through `a`). Unreachable blocks dominate nothing and are
    /// dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable chain");
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

/// Reverse postorder of the blocks reachable from the entry.
fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let n = cfg.node_count();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit phase marker.
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
    visited[cfg.entry().index()] = true;
    while let Some((b, next_child)) = stack.pop() {
        let succ = cfg.successors(b);
        if next_child < succ.len() {
            stack.push((b, next_child + 1));
            let c = succ[next_child];
            if !visited[c.index()] {
                visited[c.index()] = true;
                stack.push((c, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Whether the reachable part of `cfg` is *reducible*: every retreating
/// edge (an edge `u -> v` where `v` comes no later than `u` in a DFS
/// preorder and `v` is an ancestor) is a back edge to a dominator.
///
/// Structured (compiler-generated) control flow is always reducible;
/// irreducible loops arise from `goto`-style flow.
///
/// # Example
///
/// ```
/// use soteria_cfg::{dominators, CfgBuilder};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// // while-loop shape: entry <-> body, entry -> exit. Reducible.
/// let mut b = CfgBuilder::new();
/// let head = b.add_block(0, 1);
/// let body = b.add_block(1, 1);
/// let exit = b.add_block(2, 1);
/// b.add_edge(head, body)?;
/// b.add_edge(body, head)?;
/// b.add_edge(head, exit)?;
/// let g = b.build(head)?;
/// assert!(dominators::is_reducible(&g));
/// # Ok(())
/// # }
/// ```
pub fn is_reducible(cfg: &Cfg) -> bool {
    let dom = Dominators::compute(cfg);
    let rpo = reverse_postorder(cfg);
    let mut order_of = vec![usize::MAX; cfg.node_count()];
    for (i, &b) in rpo.iter().enumerate() {
        order_of[b.index()] = i;
    }
    // An edge u -> v with order(v) <= order(u) is retreating under RPO;
    // reducibility requires v to dominate u for every such edge.
    for (u, v) in cfg.edges() {
        if order_of[u.index()] == usize::MAX || order_of[v.index()] == usize::MAX {
            continue; // dead code: ignore
        }
        if order_of[v.index()] <= order_of[u.index()] && !dom.dominates(v, u) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn diamond_with_tail() -> (Cfg, [BlockId; 5]) {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let l = b.add_block(1, 1);
        let r = b.add_block(2, 1);
        let j = b.add_block(3, 1);
        let t = b.add_block(4, 1);
        b.add_edge(e, l).unwrap();
        b.add_edge(e, r).unwrap();
        b.add_edge(l, j).unwrap();
        b.add_edge(r, j).unwrap();
        b.add_edge(j, t).unwrap();
        (b.build(e).unwrap(), [e, l, r, j, t])
    }

    #[test]
    fn diamond_idoms_are_the_entry_and_join() {
        let (g, [e, l, r, j, t]) = diamond_with_tail();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(e), Some(e));
        assert_eq!(dom.idom(l), Some(e));
        assert_eq!(dom.idom(r), Some(e));
        // Neither arm dominates the join; its idom is the entry.
        assert_eq!(dom.idom(j), Some(e));
        assert_eq!(dom.idom(t), Some(j));
    }

    #[test]
    fn dominates_is_reflexive_transitive() {
        let (g, [e, l, _, j, t]) = diamond_with_tail();
        let dom = Dominators::compute(&g);
        assert!(dom.dominates(e, t));
        assert!(dom.dominates(j, t));
        assert!(dom.dominates(t, t));
        assert!(!dom.dominates(l, j));
        assert!(!dom.dominates(t, e));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let dead = b.add_block(1, 1);
        let g = b.build(e).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.dominates(e, dead));
        assert!(!dom.dominates(dead, e));
    }

    #[test]
    fn natural_loop_is_reducible() {
        // do-while: body -> latch -> body, latch -> exit.
        let mut b = CfgBuilder::new();
        let body = b.add_block(0, 1);
        let latch = b.add_block(1, 1);
        let exit = b.add_block(2, 1);
        b.add_edge(body, latch).unwrap();
        b.add_edge(latch, body).unwrap();
        b.add_edge(latch, exit).unwrap();
        let g = b.build(body).unwrap();
        assert!(is_reducible(&g));
    }

    #[test]
    fn irreducible_loop_is_detected() {
        // The classic two-entry loop: e -> a, e -> b, a <-> b.
        let mut bld = CfgBuilder::new();
        let e = bld.add_block(0, 1);
        let a = bld.add_block(1, 1);
        let b = bld.add_block(2, 1);
        bld.add_edge(e, a).unwrap();
        bld.add_edge(e, b).unwrap();
        bld.add_edge(a, b).unwrap();
        bld.add_edge(b, a).unwrap();
        let g = bld.build(e).unwrap();
        assert!(!is_reducible(&g));
    }

    #[test]
    fn every_generated_motif_graph_is_reducible() {
        // The property that makes the synthetic corpus compiler-like.
        // (Generator lives in soteria-corpus; here we only check the
        // classic structured shapes it composes.)
        // switch with loop-backs:
        let mut b = CfgBuilder::new();
        let head = b.add_block(0, 1);
        let c1 = b.add_block(1, 1);
        let c2 = b.add_block(2, 1);
        let join = b.add_block(3, 1);
        b.add_edge(head, c1).unwrap();
        b.add_edge(head, c2).unwrap();
        b.add_edge(c1, head).unwrap();
        b.add_edge(c2, join).unwrap();
        b.add_edge(head, join).unwrap();
        let g = b.build(head).unwrap();
        assert!(is_reducible(&g));
    }
}
