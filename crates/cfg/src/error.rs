//! Error types for CFG construction and manipulation.

use crate::block::BlockId;
use std::error::Error;
use std::fmt;

/// Error produced while building or transforming a [`Cfg`](crate::Cfg).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CfgError {
    /// A referenced block id is not part of the graph under construction.
    UnknownBlock(BlockId),
    /// The same directed edge was added twice.
    DuplicateEdge(BlockId, BlockId),
    /// `build` was called on a builder with no blocks.
    Empty,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnknownBlock(id) => write!(f, "unknown block {id}"),
            CfgError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            CfgError::Empty => write!(f, "cannot build a graph with no blocks"),
        }
    }
}

impl Error for CfgError {}

impl From<CfgError> for soteria_resilience::FaultKind {
    fn from(err: CfgError) -> Self {
        soteria_resilience::FaultKind::malformed(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CfgError::UnknownBlock(BlockId::new(7));
        assert_eq!(e.to_string(), "unknown block B7");
        let e = CfgError::DuplicateEdge(BlockId::new(1), BlockId::new(2));
        assert_eq!(e.to_string(), "duplicate edge B1 -> B2");
        assert_eq!(
            CfgError::Empty.to_string(),
            "cannot build a graph with no blocks"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CfgError>();
    }
}
