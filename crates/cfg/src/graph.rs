//! The [`Cfg`] type: an immutable control flow graph.

use crate::block::{BasicBlock, BlockId};
use crate::traversal;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Compressed-sparse-row form of a graph's **undirected** adjacency: all
/// neighbor lists flattened into one `targets` array with per-node
/// `offsets`. Neighbor order is identical to
/// [`Cfg::undirected_neighbors`] (sorted, deduplicated), so walking CSR
/// visits exactly the nodes the `Vec<Vec<BlockId>>` form would — this is
/// what lets the feature-extraction fast path swap representations without
/// perturbing a single RNG draw.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`
    /// (`node_count + 1` entries, first 0, last `targets.len()`).
    offsets: Vec<u32>,
    /// Concatenated neighbor indices, each list sorted ascending.
    targets: Vec<u32>,
}

impl CsrAdjacency {
    fn build(cfg: &Cfg) -> Self {
        let n = cfg.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        let mut scratch: Vec<BlockId> = Vec::new();
        for v in 0..n {
            scratch.clear();
            scratch.extend(cfg.succ[v].iter().chain(cfg.pred[v].iter()).copied());
            scratch.sort_unstable();
            scratch.dedup();
            targets.extend(scratch.iter().map(|b| b.index() as u32));
            offsets.push(u32::try_from(targets.len()).expect("edge count exceeds u32::MAX"));
        }
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Undirected neighbors of node `v` as dense indices, sorted ascending.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Undirected degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }
}

/// An immutable control flow graph.
///
/// Nodes are [`BasicBlock`]s indexed by dense [`BlockId`]s; edges are
/// directed and deduplicated. Construct one with
/// [`CfgBuilder`](crate::CfgBuilder).
///
/// Traversal and centrality results are computed on demand by the
/// functions in the [`traversal`] and [`centrality`](crate::centrality)
/// modules (convenience methods on `Cfg` forward to them). The one thing
/// the graph *does* cache is its undirected CSR adjacency
/// ([`Cfg::csr_adjacency`]), built lazily on first use — sound because the
/// graph is immutable, and invisible to equality, serialization, and the
/// builder round-trip.
///
/// # Example
///
/// ```
/// use soteria_cfg::CfgBuilder;
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let a = b.add_block(0, 1);
/// let c = b.add_block(4, 1);
/// b.add_edge(a, c)?;
/// let cfg = b.build(a)?;
/// assert_eq!(cfg.successors(a), &[c]);
/// assert_eq!(cfg.predecessors(c), &[a]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cfg {
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) succ: Vec<Vec<BlockId>>,
    pub(crate) pred: Vec<Vec<BlockId>>,
    pub(crate) entry: BlockId,
    pub(crate) edge_count: usize,
    /// Lazily built undirected CSR adjacency. Pure function of the fields
    /// above, so it is excluded from equality and serialization.
    #[serde(skip)]
    pub(crate) csr: OnceLock<CsrAdjacency>,
}

/// Equality ignores the lazily built CSR cache: two graphs with the same
/// structure are equal whether or not either has been walked yet.
impl PartialEq for Cfg {
    fn eq(&self, other: &Self) -> bool {
        self.blocks == other.blocks
            && self.succ == other.succ
            && self.pred == other.pred
            && self.entry == other.entry
            && self.edge_count == other.edge_count
    }
}

impl Cfg {
    /// Number of basic blocks (`|V|`).
    pub fn node_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of directed edges (`|E|`).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The designated entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The basic block payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All block ids in dense order.
    pub fn block_ids(&self) -> impl ExactSizeIterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Direct successors of `id`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn successors(&self, id: BlockId) -> &[BlockId] {
        &self.succ[id.index()]
    }

    /// Direct predecessors of `id`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.pred[id.index()]
    }

    /// In-degree of `id`.
    pub fn in_degree(&self, id: BlockId) -> usize {
        self.pred[id.index()].len()
    }

    /// Out-degree of `id`.
    pub fn out_degree(&self, id: BlockId) -> usize {
        self.succ[id.index()].len()
    }

    /// Undirected neighbors of `id`: the sorted, deduplicated union of
    /// predecessors and successors.
    ///
    /// The paper's random walk treats the CFG as undirected; this is the
    /// neighbor set the walk samples from.
    pub fn undirected_neighbors(&self, id: BlockId) -> Vec<BlockId> {
        let mut n: Vec<BlockId> = self.succ[id.index()]
            .iter()
            .chain(self.pred[id.index()].iter())
            .copied()
            .collect();
        n.sort_unstable();
        n.dedup();
        n
    }

    /// Precomputed undirected neighbor lists for every node — use this
    /// instead of calling [`undirected_neighbors`](Cfg::undirected_neighbors)
    /// in a loop (walks, centrality BFS) to avoid per-step allocation.
    pub fn undirected_adjacency(&self) -> Vec<Vec<BlockId>> {
        self.block_ids()
            .map(|v| self.undirected_neighbors(v))
            .collect()
    }

    /// The undirected adjacency in CSR form, built on first call and cached
    /// for the graph's lifetime. Neighbor lists are identical (content and
    /// order) to [`undirected_adjacency`](Cfg::undirected_adjacency); the
    /// flat layout is what the walk fast path in `soteria-features` chases
    /// instead of re-materializing `Vec<Vec<BlockId>>` per labeling.
    pub fn csr_adjacency(&self) -> &CsrAdjacency {
        self.csr.get_or_init(|| {
            soteria_telemetry::counter("cfg.csr.builds", 1);
            CsrAdjacency::build(self)
        })
    }

    /// Iterates over all directed edges `(from, to)` in dense order.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |&t| (BlockId::new(i), t)))
    }

    /// Exit blocks: blocks with no successors.
    pub fn exits(&self) -> Vec<BlockId> {
        self.block_ids()
            .filter(|&id| self.succ[id.index()].is_empty())
            .collect()
    }

    /// BFS level of every block: `Some(0)` for the entry, `Some(k)` for a
    /// block whose shortest directed path from the entry has `k` edges, and
    /// `None` for blocks unreachable from the entry.
    ///
    /// The paper defines a node's *level* as `1 + S_v` where `S_v` is the
    /// smallest number of steps from the entry; we return `S_v` itself and
    /// let callers add 1 where the paper's 1-based convention matters.
    pub fn levels(&self) -> Vec<Option<usize>> {
        traversal::bfs_levels(self, self.entry)
    }

    /// The set of blocks reachable from the entry (always includes the
    /// entry itself).
    pub fn reachable(&self) -> Vec<bool> {
        traversal::reachable_from(self, self.entry)
    }

    /// Returns the subgraph induced by the blocks reachable from the entry,
    /// with ids re-densified, plus the mapping `old id -> new id`.
    ///
    /// This is the "feature extraction ignores unreachable blocks" property
    /// the paper relies on to defeat byte-appending AEs: lifting a binary
    /// may surface dead blocks, and this method drops them before labeling.
    pub fn reachable_subgraph(&self) -> (Cfg, Vec<Option<BlockId>>) {
        let reach = self.reachable();
        let mut remap: Vec<Option<BlockId>> = vec![None; self.node_count()];
        let mut blocks = Vec::new();
        for (i, &r) in reach.iter().enumerate() {
            if r {
                remap[i] = Some(BlockId::new(blocks.len()));
                blocks.push(self.blocks[i]);
            }
        }
        let mut succ = vec![Vec::new(); blocks.len()];
        let mut pred = vec![Vec::new(); blocks.len()];
        let mut edge_count = 0;
        for (i, outs) in self.succ.iter().enumerate() {
            let Some(ni) = remap[i] else { continue };
            for &t in outs {
                // A reachable source implies a reachable target.
                let nt = remap[t.index()].expect("edge from reachable block to unreachable block");
                succ[ni.index()].push(nt);
                pred[nt.index()].push(ni);
                edge_count += 1;
            }
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
        }
        let entry = remap[self.entry.index()].expect("entry is always reachable");
        (
            Cfg {
                blocks,
                succ,
                pred,
                entry,
                edge_count,
                csr: OnceLock::new(),
            },
            remap,
        )
    }

    /// Total instruction count across all blocks.
    pub fn instruction_count(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| u64::from(b.instruction_count()))
            .sum()
    }

    /// Whether the directed edge `from -> to` exists.
    pub fn has_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.succ[from.index()].binary_search(&to).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use crate::CfgBuilder;

    fn diamond() -> crate::Cfg {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let l = b.add_block(1, 1);
        let r = b.add_block(2, 1);
        let x = b.add_block(3, 1);
        b.add_edge(e, l).unwrap();
        b.add_edge(e, r).unwrap();
        b.add_edge(l, x).unwrap();
        b.add_edge(r, x).unwrap();
        b.build(e).unwrap()
    }

    #[test]
    fn counts_and_entry() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.entry().index(), 0);
    }

    #[test]
    fn successors_and_predecessors_are_sorted() {
        let g = diamond();
        let e = crate::BlockId::new(0);
        let x = crate::BlockId::new(3);
        assert_eq!(
            g.successors(e),
            &[crate::BlockId::new(1), crate::BlockId::new(2)]
        );
        assert_eq!(
            g.predecessors(x),
            &[crate::BlockId::new(1), crate::BlockId::new(2)]
        );
        assert_eq!(g.in_degree(e), 0);
        assert_eq!(g.out_degree(e), 2);
    }

    #[test]
    fn undirected_neighbors_union_both_directions() {
        let g = diamond();
        let l = crate::BlockId::new(1);
        assert_eq!(
            g.undirected_neighbors(l),
            vec![crate::BlockId::new(0), crate::BlockId::new(3)]
        );
    }

    #[test]
    fn edges_iterates_every_edge_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(crate::BlockId::new(0), crate::BlockId::new(1))));
    }

    #[test]
    fn exits_are_sink_blocks() {
        let g = diamond();
        assert_eq!(g.exits(), vec![crate::BlockId::new(3)]);
    }

    #[test]
    fn levels_of_diamond() {
        let g = diamond();
        let lv = g.levels();
        assert_eq!(lv[0], Some(0));
        assert_eq!(lv[1], Some(1));
        assert_eq!(lv[2], Some(1));
        assert_eq!(lv[3], Some(2));
    }

    #[test]
    fn reachable_subgraph_drops_dead_blocks() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let live = b.add_block(1, 1);
        let dead = b.add_block(2, 1);
        let dead2 = b.add_block(3, 1);
        b.add_edge(e, live).unwrap();
        b.add_edge(dead, dead2).unwrap();
        let g = b.build(e).unwrap();

        let (sub, remap) = g.reachable_subgraph();
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(remap[dead.index()].is_none());
        assert!(remap[dead2.index()].is_none());
        assert_eq!(remap[e.index()], Some(sub.entry()));
    }

    #[test]
    fn reachable_subgraph_of_fully_reachable_graph_is_identity() {
        let g = diamond();
        let (sub, remap) = g.reachable_subgraph();
        assert_eq!(sub, g);
        assert!(remap
            .iter()
            .enumerate()
            .all(|(i, m)| m.map(|b| b.index()) == Some(i)));
    }

    #[test]
    fn has_edge_matches_edge_list() {
        let g = diamond();
        for (f, t) in g.edges() {
            assert!(g.has_edge(f, t));
        }
        assert!(!g.has_edge(crate::BlockId::new(3), crate::BlockId::new(0)));
    }

    #[test]
    fn instruction_count_sums_blocks() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 5);
        let f = b.add_block(1, 7);
        b.add_edge(e, f).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(g.instruction_count(), 12);
    }

    #[test]
    fn csr_adjacency_matches_vec_adjacency() {
        let g = diamond();
        let csr = g.csr_adjacency();
        let vecs = g.undirected_adjacency();
        assert_eq!(csr.node_count(), g.node_count());
        for (v, neighbors) in vecs.iter().enumerate() {
            let want: Vec<u32> = neighbors.iter().map(|b| b.index() as u32).collect();
            assert_eq!(csr.neighbors(v), want.as_slice(), "node {v}");
            assert_eq!(csr.degree(v), neighbors.len());
        }
    }

    #[test]
    fn csr_cache_is_invisible_to_equality_and_serde() {
        let g = diamond();
        let cold = diamond();
        let _ = g.csr_adjacency();
        assert_eq!(g, cold, "populated cache must not affect equality");
        let json = serde_json::to_string(&g).unwrap();
        let back: crate::Cfg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        // The deserialized graph rebuilds its own cache on demand.
        assert_eq!(back.csr_adjacency(), g.csr_adjacency());
    }

    #[test]
    fn csr_covers_self_loops_and_isolated_entries() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        b.add_edge(e, e).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(g.csr_adjacency().neighbors(0), &[0]);

        let mut b = CfgBuilder::new();
        let lone = b.add_block(0, 1);
        let g = b.build(lone).unwrap();
        assert_eq!(g.csr_adjacency().neighbors(0), &[] as &[u32]);
        assert_eq!(g.csr_adjacency().degree(0), 0);
    }

    #[test]
    fn self_loop_counts_as_one_edge() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        b.add_edge(e, e).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(e), &[e]);
        assert_eq!(g.predecessors(e), &[e]);
        assert_eq!(g.undirected_neighbors(e), vec![e]);
    }
}
