//! The [`Cfg`] type: an immutable control flow graph.

use crate::block::{BasicBlock, BlockId};
use crate::traversal;
use serde::{Deserialize, Serialize};

/// An immutable control flow graph.
///
/// Nodes are [`BasicBlock`]s indexed by dense [`BlockId`]s; edges are
/// directed and deduplicated. Construct one with
/// [`CfgBuilder`](crate::CfgBuilder).
///
/// The graph caches nothing: traversal and centrality results are computed
/// on demand by the functions in the [`traversal`] and
/// [`centrality`](crate::centrality) modules (convenience methods on `Cfg` forward
/// to them).
///
/// # Example
///
/// ```
/// use soteria_cfg::CfgBuilder;
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let a = b.add_block(0, 1);
/// let c = b.add_block(4, 1);
/// b.add_edge(a, c)?;
/// let cfg = b.build(a)?;
/// assert_eq!(cfg.successors(a), &[c]);
/// assert_eq!(cfg.predecessors(c), &[a]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cfg {
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) succ: Vec<Vec<BlockId>>,
    pub(crate) pred: Vec<Vec<BlockId>>,
    pub(crate) entry: BlockId,
    pub(crate) edge_count: usize,
}

impl Cfg {
    /// Number of basic blocks (`|V|`).
    pub fn node_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of directed edges (`|E|`).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The designated entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The basic block payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All block ids in dense order.
    pub fn block_ids(&self) -> impl ExactSizeIterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Direct successors of `id`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn successors(&self, id: BlockId) -> &[BlockId] {
        &self.succ[id.index()]
    }

    /// Direct predecessors of `id`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.pred[id.index()]
    }

    /// In-degree of `id`.
    pub fn in_degree(&self, id: BlockId) -> usize {
        self.pred[id.index()].len()
    }

    /// Out-degree of `id`.
    pub fn out_degree(&self, id: BlockId) -> usize {
        self.succ[id.index()].len()
    }

    /// Undirected neighbors of `id`: the sorted, deduplicated union of
    /// predecessors and successors.
    ///
    /// The paper's random walk treats the CFG as undirected; this is the
    /// neighbor set the walk samples from.
    pub fn undirected_neighbors(&self, id: BlockId) -> Vec<BlockId> {
        let mut n: Vec<BlockId> = self.succ[id.index()]
            .iter()
            .chain(self.pred[id.index()].iter())
            .copied()
            .collect();
        n.sort_unstable();
        n.dedup();
        n
    }

    /// Precomputed undirected neighbor lists for every node — use this
    /// instead of calling [`undirected_neighbors`](Cfg::undirected_neighbors)
    /// in a loop (walks, centrality BFS) to avoid per-step allocation.
    pub fn undirected_adjacency(&self) -> Vec<Vec<BlockId>> {
        self.block_ids()
            .map(|v| self.undirected_neighbors(v))
            .collect()
    }

    /// Iterates over all directed edges `(from, to)` in dense order.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |&t| (BlockId::new(i), t)))
    }

    /// Exit blocks: blocks with no successors.
    pub fn exits(&self) -> Vec<BlockId> {
        self.block_ids()
            .filter(|&id| self.succ[id.index()].is_empty())
            .collect()
    }

    /// BFS level of every block: `Some(0)` for the entry, `Some(k)` for a
    /// block whose shortest directed path from the entry has `k` edges, and
    /// `None` for blocks unreachable from the entry.
    ///
    /// The paper defines a node's *level* as `1 + S_v` where `S_v` is the
    /// smallest number of steps from the entry; we return `S_v` itself and
    /// let callers add 1 where the paper's 1-based convention matters.
    pub fn levels(&self) -> Vec<Option<usize>> {
        traversal::bfs_levels(self, self.entry)
    }

    /// The set of blocks reachable from the entry (always includes the
    /// entry itself).
    pub fn reachable(&self) -> Vec<bool> {
        traversal::reachable_from(self, self.entry)
    }

    /// Returns the subgraph induced by the blocks reachable from the entry,
    /// with ids re-densified, plus the mapping `old id -> new id`.
    ///
    /// This is the "feature extraction ignores unreachable blocks" property
    /// the paper relies on to defeat byte-appending AEs: lifting a binary
    /// may surface dead blocks, and this method drops them before labeling.
    pub fn reachable_subgraph(&self) -> (Cfg, Vec<Option<BlockId>>) {
        let reach = self.reachable();
        let mut remap: Vec<Option<BlockId>> = vec![None; self.node_count()];
        let mut blocks = Vec::new();
        for (i, &r) in reach.iter().enumerate() {
            if r {
                remap[i] = Some(BlockId::new(blocks.len()));
                blocks.push(self.blocks[i]);
            }
        }
        let mut succ = vec![Vec::new(); blocks.len()];
        let mut pred = vec![Vec::new(); blocks.len()];
        let mut edge_count = 0;
        for (i, outs) in self.succ.iter().enumerate() {
            let Some(ni) = remap[i] else { continue };
            for &t in outs {
                // A reachable source implies a reachable target.
                let nt = remap[t.index()].expect("edge from reachable block to unreachable block");
                succ[ni.index()].push(nt);
                pred[nt.index()].push(ni);
                edge_count += 1;
            }
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
        }
        let entry = remap[self.entry.index()].expect("entry is always reachable");
        (
            Cfg {
                blocks,
                succ,
                pred,
                entry,
                edge_count,
            },
            remap,
        )
    }

    /// Total instruction count across all blocks.
    pub fn instruction_count(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| u64::from(b.instruction_count()))
            .sum()
    }

    /// Whether the directed edge `from -> to` exists.
    pub fn has_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.succ[from.index()].binary_search(&to).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use crate::CfgBuilder;

    fn diamond() -> crate::Cfg {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let l = b.add_block(1, 1);
        let r = b.add_block(2, 1);
        let x = b.add_block(3, 1);
        b.add_edge(e, l).unwrap();
        b.add_edge(e, r).unwrap();
        b.add_edge(l, x).unwrap();
        b.add_edge(r, x).unwrap();
        b.build(e).unwrap()
    }

    #[test]
    fn counts_and_entry() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.entry().index(), 0);
    }

    #[test]
    fn successors_and_predecessors_are_sorted() {
        let g = diamond();
        let e = crate::BlockId::new(0);
        let x = crate::BlockId::new(3);
        assert_eq!(
            g.successors(e),
            &[crate::BlockId::new(1), crate::BlockId::new(2)]
        );
        assert_eq!(
            g.predecessors(x),
            &[crate::BlockId::new(1), crate::BlockId::new(2)]
        );
        assert_eq!(g.in_degree(e), 0);
        assert_eq!(g.out_degree(e), 2);
    }

    #[test]
    fn undirected_neighbors_union_both_directions() {
        let g = diamond();
        let l = crate::BlockId::new(1);
        assert_eq!(
            g.undirected_neighbors(l),
            vec![crate::BlockId::new(0), crate::BlockId::new(3)]
        );
    }

    #[test]
    fn edges_iterates_every_edge_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(crate::BlockId::new(0), crate::BlockId::new(1))));
    }

    #[test]
    fn exits_are_sink_blocks() {
        let g = diamond();
        assert_eq!(g.exits(), vec![crate::BlockId::new(3)]);
    }

    #[test]
    fn levels_of_diamond() {
        let g = diamond();
        let lv = g.levels();
        assert_eq!(lv[0], Some(0));
        assert_eq!(lv[1], Some(1));
        assert_eq!(lv[2], Some(1));
        assert_eq!(lv[3], Some(2));
    }

    #[test]
    fn reachable_subgraph_drops_dead_blocks() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let live = b.add_block(1, 1);
        let dead = b.add_block(2, 1);
        let dead2 = b.add_block(3, 1);
        b.add_edge(e, live).unwrap();
        b.add_edge(dead, dead2).unwrap();
        let g = b.build(e).unwrap();

        let (sub, remap) = g.reachable_subgraph();
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(remap[dead.index()].is_none());
        assert!(remap[dead2.index()].is_none());
        assert_eq!(remap[e.index()], Some(sub.entry()));
    }

    #[test]
    fn reachable_subgraph_of_fully_reachable_graph_is_identity() {
        let g = diamond();
        let (sub, remap) = g.reachable_subgraph();
        assert_eq!(sub, g);
        assert!(remap
            .iter()
            .enumerate()
            .all(|(i, m)| m.map(|b| b.index()) == Some(i)));
    }

    #[test]
    fn has_edge_matches_edge_list() {
        let g = diamond();
        for (f, t) in g.edges() {
            assert!(g.has_edge(f, t));
        }
        assert!(!g.has_edge(crate::BlockId::new(3), crate::BlockId::new(0)));
    }

    #[test]
    fn instruction_count_sums_blocks() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 5);
        let f = b.add_block(1, 7);
        b.add_edge(e, f).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(g.instruction_count(), 12);
    }

    #[test]
    fn self_loop_counts_as_one_edge() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        b.add_edge(e, e).unwrap();
        let g = b.build(e).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(e), &[e]);
        assert_eq!(g.predecessors(e), &[e]);
        assert_eq!(g.undirected_neighbors(e), vec![e]);
    }
}
