//! Graph traversals: BFS levels, reachability, DFS orders, and undirected
//! shortest paths.

use crate::block::BlockId;
use crate::graph::Cfg;
use std::collections::VecDeque;

/// BFS levels over *directed* edges from `start`.
///
/// Returns, for each block, `Some(k)` where `k` is the minimum number of
/// edges on a directed path from `start`, or `None` if unreachable.
///
/// # Example
///
/// ```
/// use soteria_cfg::{CfgBuilder, traversal};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let a = b.add_block(0, 1);
/// let c = b.add_block(1, 1);
/// b.add_edge(a, c)?;
/// let g = b.build(a)?;
/// assert_eq!(traversal::bfs_levels(&g, a), vec![Some(0), Some(1)]);
/// # Ok(())
/// # }
/// ```
pub fn bfs_levels(cfg: &Cfg, start: BlockId) -> Vec<Option<usize>> {
    let mut levels = vec![None; cfg.node_count()];
    let mut queue = VecDeque::new();
    levels[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let next = levels[v.index()].expect("queued node has a level") + 1;
        for &w in cfg.successors(v) {
            if levels[w.index()].is_none() {
                levels[w.index()] = Some(next);
                queue.push_back(w);
            }
        }
    }
    levels
}

/// Blocks reachable from `start` over directed edges (including `start`).
pub fn reachable_from(cfg: &Cfg, start: BlockId) -> Vec<bool> {
    let mut seen = vec![false; cfg.node_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for &w in cfg.successors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// Depth-first preorder over directed edges from `start`, visiting
/// successors in ascending id order. Unreachable blocks are absent.
pub fn dfs_preorder(cfg: &Cfg, start: BlockId) -> Vec<BlockId> {
    let mut seen = vec![false; cfg.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so the smallest successor is visited first.
        for &w in cfg.successors(v).iter().rev() {
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

/// Single-source shortest path lengths over the *undirected* view of the
/// graph. Returns `None` for nodes in other components.
///
/// Used by closeness centrality and by the whole-graph statistics of the
/// Alasmary baseline.
pub fn undirected_distances(cfg: &Cfg, start: BlockId) -> Vec<Option<usize>> {
    bfs_adjacency(&cfg.undirected_adjacency(), start)
}

/// BFS distances over a precomputed adjacency table (see
/// [`Cfg::undirected_adjacency`]); callers running one BFS per node should
/// build the table once and use this directly.
pub fn bfs_adjacency(adj: &[Vec<BlockId>], start: BlockId) -> Vec<Option<usize>> {
    let mut dist = vec![None; adj.len()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let next = dist[v.index()].expect("queued node has a distance") + 1;
        for &w in &adj[v.index()] {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(next);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Number of weakly connected components (components of the undirected
/// view).
pub fn weak_component_count(cfg: &Cfg) -> usize {
    let mut seen = vec![false; cfg.node_count()];
    let mut components = 0;
    for s in cfg.block_ids() {
        if seen[s.index()] {
            continue;
        }
        components += 1;
        let mut stack = vec![s];
        seen[s.index()] = true;
        while let Some(v) = stack.pop() {
            for w in cfg.undirected_neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    /// entry -> a -> b, entry -> b, plus an isolated island c -> d.
    fn graph_with_island() -> (Cfg, [BlockId; 5]) {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let a = b.add_block(1, 1);
        let bb = b.add_block(2, 1);
        let c = b.add_block(3, 1);
        let d = b.add_block(4, 1);
        b.add_edge(e, a).unwrap();
        b.add_edge(a, bb).unwrap();
        b.add_edge(e, bb).unwrap();
        b.add_edge(c, d).unwrap();
        (b.build(e).unwrap(), [e, a, bb, c, d])
    }

    #[test]
    fn bfs_levels_take_shortest_path() {
        let (g, [e, a, bb, c, d]) = graph_with_island();
        let lv = bfs_levels(&g, e);
        assert_eq!(lv[e.index()], Some(0));
        assert_eq!(lv[a.index()], Some(1));
        // b is reachable both via a (2 steps) and directly (1 step).
        assert_eq!(lv[bb.index()], Some(1));
        assert_eq!(lv[c.index()], None);
        assert_eq!(lv[d.index()], None);
    }

    #[test]
    fn reachability_excludes_island() {
        let (g, [e, a, bb, c, d]) = graph_with_island();
        let r = reachable_from(&g, e);
        assert!(r[e.index()] && r[a.index()] && r[bb.index()]);
        assert!(!r[c.index()] && !r[d.index()]);
    }

    #[test]
    fn dfs_preorder_visits_smallest_successor_first() {
        let (g, [e, a, bb, ..]) = graph_with_island();
        assert_eq!(dfs_preorder(&g, e), vec![e, a, bb]);
    }

    #[test]
    fn dfs_handles_cycles() {
        let mut b = CfgBuilder::new();
        let x = b.add_block(0, 1);
        let y = b.add_block(1, 1);
        b.add_edge(x, y).unwrap();
        b.add_edge(y, x).unwrap();
        let g = b.build(x).unwrap();
        assert_eq!(dfs_preorder(&g, x), vec![x, y]);
    }

    #[test]
    fn undirected_distances_ignore_edge_direction() {
        let (g, [e, a, bb, c, d]) = graph_with_island();
        // From d, the only undirected neighbor is c.
        let dist = undirected_distances(&g, d);
        assert_eq!(dist[d.index()], Some(0));
        assert_eq!(dist[c.index()], Some(1));
        assert_eq!(dist[e.index()], None);
        // From a, b and e are both one undirected hop away.
        let dist = undirected_distances(&g, a);
        assert_eq!(dist[e.index()], Some(1));
        assert_eq!(dist[bb.index()], Some(1));
    }

    #[test]
    fn weak_components_count_islands() {
        let (g, _) = graph_with_island();
        assert_eq!(weak_component_count(&g), 2);
    }

    #[test]
    fn single_node_graph() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let g = b.build(e).unwrap();
        assert_eq!(bfs_levels(&g, e), vec![Some(0)]);
        assert_eq!(weak_component_count(&g), 1);
        assert_eq!(dfs_preorder(&g, e), vec![e]);
    }
}
