//! Graphviz DOT export for debugging and figure generation.

use crate::graph::Cfg;
use std::fmt::Write as _;

/// Renders `cfg` in Graphviz DOT syntax.
///
/// Node labels show the block id and instruction count; the entry node is
/// drawn with a double circle. Optional `node_labels` (e.g. DBL/LBL labels
/// from the feature pipeline) replace the default labels when provided.
///
/// # Example
///
/// ```
/// use soteria_cfg::{CfgBuilder, dot};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let e = b.add_block(0, 2);
/// let f = b.add_block(8, 1);
/// b.add_edge(e, f)?;
/// let g = b.build(e)?;
/// let rendered = dot::to_dot(&g, None);
/// assert!(rendered.starts_with("digraph cfg {"));
/// assert!(rendered.contains("n0 -> n1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(cfg: &Cfg, node_labels: Option<&[usize]>) -> String {
    let mut out = String::from("digraph cfg {\n");
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    for id in cfg.block_ids() {
        let block = cfg.block(id);
        let label = match node_labels {
            Some(labels) => labels[id.index()].to_string(),
            None => format!("{id} ({} insns)", block.instruction_count()),
        };
        let shape = if id == cfg.entry() {
            ", peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} [label=\"{label}\"{shape}];", id.index());
    }
    for (f, t) in cfg.edges() {
        let _ = writeln!(out, "  n{} -> n{};", f.index(), t.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn two_block() -> Cfg {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 2);
        let f = b.add_block(8, 1);
        b.add_edge(e, f).unwrap();
        b.build(e).unwrap()
    }

    #[test]
    fn default_labels_show_instruction_counts() {
        let g = two_block();
        let d = to_dot(&g, None);
        assert!(d.contains("B0 (2 insns)"));
        assert!(d.contains("B1 (1 insns)"));
        assert!(d.contains("n0 -> n1;"));
    }

    #[test]
    fn entry_is_double_bordered() {
        let d = to_dot(&two_block(), None);
        assert!(d.contains("peripheries=2"));
        // Only the entry gets the extra border.
        assert_eq!(d.matches("peripheries=2").count(), 1);
    }

    #[test]
    fn custom_labels_replace_defaults() {
        let g = two_block();
        let d = to_dot(&g, Some(&[7, 3]));
        assert!(d.contains("label=\"7\""));
        assert!(d.contains("label=\"3\""));
        assert!(!d.contains("insns"));
    }

    #[test]
    fn output_is_balanced() {
        let d = to_dot(&two_block(), None);
        assert!(d.starts_with("digraph cfg {"));
        assert!(d.trim_end().ends_with('}'));
    }
}
