//! Betweenness and closeness centrality, and the paper's *centrality
//! factor* used to break density ties during labeling.
//!
//! The paper (footnote 1) defines for a node `v`:
//!
//! * betweenness `B(v) = Δ(v) / Δ(m)` — the number of shortest paths that
//!   pass *through* `v` (connecting distinct endpoints `j ≠ v ≠ k`) divided
//!   by the total number of shortest paths between all such pairs,
//! * closeness `C(v)` — derived from the average shortest-path distance
//!   between `v` and every other node (we use the standard normalized
//!   closeness `(r_v/(n-1)) · (r_v/Σd)`, the Wasserman–Faust correction for
//!   disconnected graphs, so that *larger is more central* and the factor
//!   `CF(v) = B(v) + C(v)` ranks central nodes first),
//!
//! both over the **undirected** view of the CFG, matching the random-walk
//! section's treatment of the graph as undirected.

use crate::block::BlockId;
use crate::graph::Cfg;
use crate::traversal;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-node centrality values for a graph.
///
/// # Example
///
/// ```
/// use soteria_cfg::{CfgBuilder, CentralityFactors};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// // A path a - m - b: every shortest path between the endpoints passes
/// // through m, so m has betweenness 1 and the endpoints have 0.
/// let mut bld = CfgBuilder::new();
/// let a = bld.add_block(0, 1);
/// let m = bld.add_block(1, 1);
/// let b = bld.add_block(2, 1);
/// bld.add_edge(a, m)?;
/// bld.add_edge(m, b)?;
/// let g = bld.build(a)?;
///
/// let cf = CentralityFactors::compute(&g);
/// assert!(cf.betweenness(m) > cf.betweenness(a));
/// assert!(cf.factor(m) > cf.factor(b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralityFactors {
    betweenness: Vec<f64>,
    closeness: Vec<f64>,
}

impl CentralityFactors {
    /// Computes betweenness and closeness for every node of `cfg`.
    ///
    /// Runs Brandes' algorithm (with an absolute-count accumulator for the
    /// paper's `Δ(v)/Δ(m)` ratio) in `O(V·E)` plus one BFS per node for
    /// closeness.
    pub fn compute(cfg: &Cfg) -> Self {
        let _span = soteria_telemetry::span("cfg.centrality");
        CentralityFactors {
            betweenness: betweenness_ratio(cfg),
            closeness: closeness(cfg),
        }
    }

    /// Betweenness centrality `B(v) = Δ(v)/Δ(m)`.
    pub fn betweenness(&self, v: BlockId) -> f64 {
        self.betweenness[v.index()]
    }

    /// Normalized closeness centrality `C(v)`.
    pub fn closeness(&self, v: BlockId) -> f64 {
        self.closeness[v.index()]
    }

    /// The centrality factor `CF(v) = B(v) + C(v)` used for tie-breaking.
    pub fn factor(&self, v: BlockId) -> f64 {
        self.betweenness[v.index()] + self.closeness[v.index()]
    }

    /// All betweenness values in dense node order.
    pub fn betweenness_values(&self) -> &[f64] {
        &self.betweenness
    }

    /// All closeness values in dense node order.
    pub fn closeness_values(&self) -> &[f64] {
        &self.closeness
    }
}

/// The paper's betweenness: for each node `v`, the number of shortest paths
/// between ordered pairs `(s, t)` with `s ≠ v ≠ t` that pass through `v`,
/// divided by the total number of shortest paths between all ordered pairs
/// `(s, t)`, `s ≠ t` — all over the undirected view of the graph.
///
/// Returns all zeros for graphs with fewer than 3 nodes (no interior nodes
/// possible) or no paths.
pub fn betweenness_ratio(cfg: &Cfg) -> Vec<f64> {
    let n = cfg.node_count();
    let adj = cfg.undirected_adjacency();
    let mut through = vec![0.0f64; n];
    let mut total_paths = 0.0f64;

    // Scratch buffers reused across sources.
    let mut dist: Vec<i64> = vec![-1; n];
    let mut sigma: Vec<f64> = vec![0.0; n];
    let mut order: Vec<BlockId> = Vec::with_capacity(n);

    for s in cfg.block_ids() {
        dist.fill(-1);
        sigma.fill(0.0);
        order.clear();

        dist[s.index()] = 0;
        sigma[s.index()] = 1.0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let dv = dist[v.index()];
            for &w in &adj[v.index()] {
                if dist[w.index()] < 0 {
                    dist[w.index()] = dv + 1;
                    queue.push_back(w);
                }
                if dist[w.index()] == dv + 1 {
                    sigma[w.index()] += sigma[v.index()];
                }
            }
        }

        // P(v) = total number of shortest-path-DAG paths from v to any node
        // strictly below it; reverse BFS order is a reverse topological
        // order of the DAG.
        let mut p = vec![0.0f64; n];
        for &v in order.iter().rev() {
            let dv = dist[v.index()];
            for &w in &adj[v.index()] {
                if dist[w.index()] == dv + 1 {
                    p[v.index()] += 1.0 + p[w.index()];
                }
            }
        }

        for &v in &order {
            if v != s {
                // sigma[v] shortest paths reach v from s; each extends into
                // p[v] suffix paths, every one a shortest s->t path with v
                // interior (t is strictly below v, so t != v and t != s).
                through[v.index()] += sigma[v.index()] * p[v.index()];
                total_paths += sigma[v.index()];
            }
        }
    }

    if total_paths > 0.0 {
        for t in &mut through {
            *t /= total_paths;
        }
    }
    through
}

/// Normalized closeness centrality over the undirected view, with the
/// Wasserman–Faust correction for disconnected graphs:
/// `C(v) = (r_v / (n-1)) · (r_v / Σ_u d(v, u))` where `r_v` is the number of
/// nodes reachable from `v` (excluding `v`). Isolated nodes get 0.
pub fn closeness(cfg: &Cfg) -> Vec<f64> {
    let n = cfg.node_count();
    let mut out = vec![0.0f64; n];
    if n <= 1 {
        return out;
    }
    let adj = cfg.undirected_adjacency();
    for v in cfg.block_ids() {
        let dist = traversal::bfs_adjacency(&adj, v);
        let mut sum = 0usize;
        let mut reach = 0usize;
        for (u, d) in dist.iter().enumerate() {
            if u != v.index() {
                if let Some(d) = d {
                    sum += d;
                    reach += 1;
                }
            }
        }
        if sum > 0 {
            let r = reach as f64;
            out[v.index()] = (r / (n as f64 - 1.0)) * (r / sum as f64);
        }
    }
    out
}

/// The literal quantity named in the paper's footnote: the average
/// shortest-path distance from `v` to the nodes it can reach (undirected).
/// Returns `None` if `v` reaches no other node.
pub fn average_distance(cfg: &Cfg, v: BlockId) -> Option<f64> {
    let dist = traversal::undirected_distances(cfg, v);
    let mut sum = 0usize;
    let mut reach = 0usize;
    for (u, d) in dist.iter().enumerate() {
        if u != v.index() {
            if let Some(d) = d {
                sum += d;
                reach += 1;
            }
        }
    }
    if reach == 0 {
        None
    } else {
        Some(sum as f64 / reach as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn path3() -> (Cfg, [BlockId; 3]) {
        let mut b = CfgBuilder::new();
        let a = b.add_block(0, 1);
        let m = b.add_block(1, 1);
        let c = b.add_block(2, 1);
        b.add_edge(a, m).unwrap();
        b.add_edge(m, c).unwrap();
        (b.build(a).unwrap(), [a, m, c])
    }

    #[test]
    fn path_midpoint_betweenness() {
        let (g, [a, m, c]) = path3();
        let b = betweenness_ratio(&g);
        // Ordered pairs and their shortest paths: (a,m) 1, (a,c) 1, (m,a) 1,
        // (m,c) 1, (c,a) 1, (c,m) 1 -> total 6. Through m: the 2 a<->c
        // paths. B(m) = 2/6.
        assert!((b[m.index()] - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(b[a.index()], 0.0);
        assert_eq!(b[c.index()], 0.0);
    }

    #[test]
    fn betweenness_sums_to_interior_fraction_on_star() {
        // Star: hub h connected to 4 leaves. All leaf-leaf shortest paths
        // (4*3 = 12 ordered) pass through h; total ordered paths = 12 + 8
        // (hub<->leaf) = 20.
        let mut bld = CfgBuilder::new();
        let h = bld.add_block(0, 1);
        let leaves: Vec<_> = (1..=4).map(|i| bld.add_block(i, 1)).collect();
        for &l in &leaves {
            bld.add_edge(h, l).unwrap();
        }
        let g = bld.build(h).unwrap();
        let b = betweenness_ratio(&g);
        assert!((b[h.index()] - 12.0 / 20.0).abs() < 1e-12);
        for &l in &leaves {
            assert_eq!(b[l.index()], 0.0);
        }
    }

    #[test]
    fn betweenness_counts_parallel_shortest_paths() {
        // Diamond a -> {x, y} -> b: two shortest a<->b paths, one through
        // each middle node.
        let mut bld = CfgBuilder::new();
        let a = bld.add_block(0, 1);
        let x = bld.add_block(1, 1);
        let y = bld.add_block(2, 1);
        let b2 = bld.add_block(3, 1);
        bld.add_edge(a, x).unwrap();
        bld.add_edge(a, y).unwrap();
        bld.add_edge(x, b2).unwrap();
        bld.add_edge(y, b2).unwrap();
        let g = bld.build(a).unwrap();
        let b = betweenness_ratio(&g);
        // By symmetry x and y have equal betweenness.
        assert!((b[x.index()] - b[y.index()]).abs() < 1e-12);
        assert!(b[x.index()] > 0.0);
        // a and b are never interior: x<->y shortest paths have length 2 and
        // go through either a or b... so a and b DO carry x<->y paths.
        assert!(b[a.index()] > 0.0);
        assert!((b[a.index()] - b[b2.index()]).abs() < 1e-12);
    }

    #[test]
    fn closeness_is_higher_for_central_nodes() {
        let (g, [a, m, c]) = path3();
        let cl = closeness(&g);
        assert!(cl[m.index()] > cl[a.index()]);
        assert!((cl[a.index()] - cl[c.index()]).abs() < 1e-12);
        // m is at distance 1 from both others: C = (2/2)*(2/2) = 1.
        assert!((cl[m.index()] - 1.0).abs() < 1e-12);
        // a: distances 1 and 2, C = (2/2)*(2/3).
        assert!((cl[a.index()] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_of_isolated_node_is_zero() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let _iso = b.add_block(1, 1);
        let g = b.build(e).unwrap();
        let cl = closeness(&g);
        assert_eq!(cl, vec![0.0, 0.0]);
    }

    #[test]
    fn closeness_disconnected_component_is_downweighted() {
        // Two 2-cliques: each node reaches 1 of 3 others at distance 1.
        // C = (1/3) * (1/1) = 1/3.
        let mut b = CfgBuilder::new();
        let a = b.add_block(0, 1);
        let a2 = b.add_block(1, 1);
        let c = b.add_block(2, 1);
        let c2 = b.add_block(3, 1);
        b.add_edge(a, a2).unwrap();
        b.add_edge(c, c2).unwrap();
        let g = b.build(a).unwrap();
        let cl = closeness(&g);
        for v in cl {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn average_distance_matches_hand_computation() {
        let (g, [a, m, _c]) = path3();
        assert_eq!(average_distance(&g, a), Some(1.5));
        assert_eq!(average_distance(&g, m), Some(1.0));
    }

    #[test]
    fn average_distance_none_for_isolated() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let iso = b.add_block(1, 1);
        let g = b.build(e).unwrap();
        assert_eq!(average_distance(&g, iso), None);
    }

    #[test]
    fn factor_is_sum_of_parts() {
        let (g, [_, m, _]) = path3();
        let cf = CentralityFactors::compute(&g);
        assert!((cf.factor(m) - (cf.betweenness(m) + cf.closeness(m))).abs() < 1e-12);
    }

    #[test]
    fn single_node_centralities_are_zero() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let g = b.build(e).unwrap();
        let cf = CentralityFactors::compute(&g);
        assert_eq!(cf.betweenness(e), 0.0);
        assert_eq!(cf.closeness(e), 0.0);
    }
}
