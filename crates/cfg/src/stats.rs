//! Whole-graph statistics: the graph-theoretic feature set of the
//! Alasmary et al. baseline (reference \[3\] in the paper).
//!
//! That baseline summarizes a CFG by 23 features: node count, edge count,
//! graph density, and five-number summaries (min, max, mean, median,
//! standard deviation) of four per-node distributions — shortest-path
//! lengths, closeness centrality, betweenness centrality, and degree
//! centrality.

use crate::centrality;
use crate::density;
use crate::graph::Cfg;
use crate::traversal;
use serde::{Deserialize, Serialize};

/// Five-number summary of a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest value (0 if the distribution is empty).
    pub min: f64,
    /// Largest value (0 if empty).
    pub max: f64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Median (0 if empty).
    pub median: f64,
    /// Population standard deviation (0 if empty).
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes `values`; all fields are 0 for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len() as f64;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN summary input"));
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Summary {
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean,
            median,
            std_dev: var.sqrt(),
        }
    }

    /// The summary as `[min, max, mean, median, std_dev]`.
    pub fn to_array(self) -> [f64; 5] {
        [self.min, self.max, self.mean, self.median, self.std_dev]
    }
}

/// The 23-feature graph-theoretic description of a CFG used by the
/// Alasmary et al. baseline classifier.
///
/// # Example
///
/// ```
/// use soteria_cfg::{CfgBuilder, GraphStats};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let e = b.add_block(0, 1);
/// let f = b.add_block(1, 1);
/// b.add_edge(e, f)?;
/// let g = b.build(e)?;
/// let stats = GraphStats::compute(&g);
/// assert_eq!(stats.node_count, 2);
/// assert_eq!(stats.to_vector().len(), 23);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|V|`.
    pub node_count: usize,
    /// `|E|`.
    pub edge_count: usize,
    /// Whole-graph edge density.
    pub density: f64,
    /// Summary of all finite pairwise undirected shortest-path lengths.
    pub shortest_paths: Summary,
    /// Summary of per-node closeness centrality.
    pub closeness: Summary,
    /// Summary of per-node betweenness centrality.
    pub betweenness: Summary,
    /// Summary of per-node degree centrality (`deg(v) / (|V|-1)`,
    /// undirected degree).
    pub degree_centrality: Summary,
}

impl GraphStats {
    /// Computes all 23 features for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let _span = soteria_telemetry::span("cfg.graph_stats");
        let n = cfg.node_count();

        let mut path_lengths = Vec::new();
        for v in cfg.block_ids() {
            for d in traversal::undirected_distances(cfg, v)
                .into_iter()
                .flatten()
            {
                if d > 0 {
                    path_lengths.push(d as f64);
                }
            }
        }

        let closeness = centrality::closeness(cfg);
        let betweenness = centrality::betweenness_ratio(cfg);
        let degree: Vec<f64> = cfg
            .block_ids()
            .map(|v| {
                if n <= 1 {
                    0.0
                } else {
                    cfg.undirected_neighbors(v).len() as f64 / (n as f64 - 1.0)
                }
            })
            .collect();

        GraphStats {
            node_count: n,
            edge_count: cfg.edge_count(),
            density: density::graph_density(cfg),
            shortest_paths: Summary::of(&path_lengths),
            closeness: Summary::of(&closeness),
            betweenness: Summary::of(&betweenness),
            degree_centrality: Summary::of(&degree),
        }
    }

    /// The 23 features as a flat vector, in a fixed documented order:
    /// `[|V|, |E|, density, sp×5, closeness×5, betweenness×5, degree×5]`.
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(23);
        v.push(self.node_count as f64);
        v.push(self.edge_count as f64);
        v.push(self.density);
        v.extend_from_slice(&self.shortest_paths.to_array());
        v.extend_from_slice(&self.closeness.to_array());
        v.extend_from_slice(&self.betweenness.to_array());
        v.extend_from_slice(&self.degree_centrality.to_array());
        v
    }

    /// Number of features in [`to_vector`](GraphStats::to_vector).
    pub const FEATURE_COUNT: usize = 23;

    /// Human-readable names for each position of
    /// [`to_vector`](GraphStats::to_vector).
    pub fn feature_names() -> [&'static str; 23] {
        [
            "nodes",
            "edges",
            "density",
            "sp_min",
            "sp_max",
            "sp_mean",
            "sp_median",
            "sp_std",
            "close_min",
            "close_max",
            "close_mean",
            "close_median",
            "close_std",
            "between_min",
            "between_max",
            "between_mean",
            "between_median",
            "between_std",
            "degree_min",
            "degree_max",
            "degree_mean",
            "degree_median",
            "degree_std",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    #[test]
    fn summary_of_empty_is_zero() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_of_constant_has_zero_std() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_median_even_and_odd() {
        assert_eq!(Summary::of(&[1.0, 3.0, 2.0]).median, 2.0);
        assert_eq!(Summary::of(&[1.0, 2.0, 3.0, 4.0]).median, 2.5);
    }

    #[test]
    fn summary_std_matches_hand_computation() {
        // Population std of [1, 3] = 1.
        let s = Summary::of(&[1.0, 3.0]);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_path_graph() {
        let mut b = CfgBuilder::new();
        let a = b.add_block(0, 1);
        let m = b.add_block(1, 1);
        let c = b.add_block(2, 1);
        b.add_edge(a, m).unwrap();
        b.add_edge(m, c).unwrap();
        let g = b.build(a).unwrap();
        let st = GraphStats::compute(&g);
        assert_eq!(st.node_count, 3);
        assert_eq!(st.edge_count, 2);
        // Ordered pairwise distances: 1,2,1,1,2,1 -> min 1 max 2 mean 4/3.
        assert_eq!(st.shortest_paths.min, 1.0);
        assert_eq!(st.shortest_paths.max, 2.0);
        assert!((st.shortest_paths.mean - 4.0 / 3.0).abs() < 1e-12);
        // Degree centrality: endpoints 1/2, midpoint 1.
        assert_eq!(st.degree_centrality.max, 1.0);
        assert_eq!(st.degree_centrality.min, 0.5);
    }

    #[test]
    fn vector_has_23_named_features() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let g = b.build(e).unwrap();
        let st = GraphStats::compute(&g);
        let v = st.to_vector();
        assert_eq!(v.len(), GraphStats::FEATURE_COUNT);
        assert_eq!(GraphStats::feature_names().len(), GraphStats::FEATURE_COUNT);
        assert_eq!(v[0], 1.0); // node count
        assert_eq!(v[1], 0.0); // edge count
    }

    #[test]
    fn stats_are_invariant_under_block_payloads() {
        // Structure, not contents, drives the features.
        let build = |ic: u32| {
            let mut b = CfgBuilder::new();
            let e = b.add_block(0, ic);
            let f = b.add_block(100, ic * 2);
            b.add_edge(e, f).unwrap();
            b.build(e).unwrap()
        };
        assert_eq!(
            GraphStats::compute(&build(1)),
            GraphStats::compute(&build(50))
        );
    }
}
