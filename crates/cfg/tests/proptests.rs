//! Property-based tests for the CFG substrate.

use proptest::prelude::*;
use soteria_cfg::{
    centrality, density, dominators, traversal, BlockId, Cfg, CfgBuilder, GraphStats,
};

/// Strategy: a random connected-ish digraph with `n` in 1..=max_nodes.
/// Every non-entry node gets at least one incoming edge from an
/// earlier-indexed node, guaranteeing reachability from the entry; extra
/// random edges are sprinkled on top.
fn arb_cfg(max_nodes: usize) -> impl Strategy<Value = Cfg> {
    (1..=max_nodes).prop_flat_map(move |n| {
        let backbone = proptest::collection::vec(0..n.max(1), n.saturating_sub(1));
        let extras = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        (backbone, extras).prop_map(move |(backbone, extras)| {
            let mut b = CfgBuilder::new();
            let ids: Vec<BlockId> = (0..n).map(|i| b.add_block(i as u64 * 16, 1)).collect();
            for (i, &src) in backbone.iter().enumerate() {
                let to = ids[i + 1];
                let from = ids[src.min(i)];
                let _ = b.add_edge_idempotent(from, to);
            }
            for (f, t) in extras {
                let _ = b.add_edge_idempotent(ids[f], ids[t]);
            }
            b.build(ids[0]).expect("non-empty graph builds")
        })
    })
}

proptest! {
    #[test]
    fn all_nodes_reachable_with_backbone(g in arb_cfg(24)) {
        let r = g.reachable();
        prop_assert!(r.iter().all(|&x| x));
    }

    #[test]
    fn levels_respect_edge_relaxation(g in arb_cfg(24)) {
        // For every edge u -> v with u reachable: level(v) <= level(u) + 1.
        let lv = g.levels();
        for (u, v) in g.edges() {
            if let Some(lu) = lv[u.index()] {
                let lvv = lv[v.index()].expect("successor of reachable node is reachable");
                prop_assert!(lvv <= lu + 1);
            }
        }
    }

    #[test]
    fn node_densities_sum_to_two(g in arb_cfg(24)) {
        // Every edge contributes one in- and one out-degree.
        prop_assume!(g.edge_count() > 0);
        let sum: f64 = density::node_densities(&g).iter().sum();
        prop_assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_values_are_a_probability_partition(g in arb_cfg(20)) {
        // Each value in [0, 1]; the sum over nodes cannot exceed the longest
        // possible interior count... but at minimum, sum <= n (each path has
        // < n interior nodes). Check range and finiteness.
        let b = centrality::betweenness_ratio(&g);
        for v in b {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn closeness_in_unit_interval(g in arb_cfg(20)) {
        for c in centrality::closeness(&g) {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn reachable_subgraph_is_idempotent(g in arb_cfg(20)) {
        let (s1, _) = g.reachable_subgraph();
        let (s2, _) = s1.reachable_subgraph();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn undirected_distances_are_symmetric(g in arb_cfg(14)) {
        for u in g.block_ids() {
            let du = traversal::undirected_distances(&g, u);
            for v in g.block_ids() {
                let dv = traversal::undirected_distances(&g, v);
                prop_assert_eq!(du[v.index()], dv[u.index()]);
            }
        }
    }

    #[test]
    fn stats_vector_is_always_finite(g in arb_cfg(20)) {
        for x in GraphStats::compute(&g).to_vector() {
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn builder_round_trip_preserves_graph(g in arb_cfg(20)) {
        let reopened = CfgBuilder::from(&g).build(g.entry()).expect("rebuild");
        prop_assert_eq!(g, reopened);
    }

    #[test]
    fn entry_dominates_every_reachable_node(g in arb_cfg(20)) {
        let dom = dominators::Dominators::compute(&g);
        for v in g.block_ids() {
            prop_assert!(dom.dominates(g.entry(), v), "entry must dominate {v}");
            // The idom chain always terminates at the entry.
            let mut cur = v;
            let mut hops = 0;
            while cur != g.entry() {
                cur = dom.idom(cur).expect("reachable node has idom");
                hops += 1;
                prop_assert!(hops <= g.node_count(), "idom chain cycle at {v}");
            }
        }
    }

    #[test]
    fn idom_strictly_dominates_its_node(g in arb_cfg(16)) {
        let dom = dominators::Dominators::compute(&g);
        for v in g.block_ids() {
            if v == g.entry() { continue; }
            let i = dom.idom(v).expect("reachable");
            prop_assert!(dom.dominates(i, v));
            prop_assert!(i != v);
        }
    }

    #[test]
    fn dfs_visits_exactly_reachable_nodes(g in arb_cfg(20)) {
        let order = traversal::dfs_preorder(&g, g.entry());
        let reach = g.reachable();
        prop_assert_eq!(order.len(), reach.iter().filter(|&&x| x).count());
        let mut seen = vec![false; g.node_count()];
        for v in &order {
            prop_assert!(!seen[v.index()], "dfs visited a node twice");
            seen[v.index()] = true;
        }
    }
}
