//! Property-based tests for the feature pipeline.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use soteria_corpus::{motifs, Family};
use soteria_features::ngram::{count_walk_set, Gram, GramCounts};
use soteria_features::{label_nodes, random_walk, walk_set, Labeling, Pca, Vocabulary};

proptest! {
    /// Labels are always a permutation of 0..|V| under both labelings.
    #[test]
    fn labels_are_permutations(seed in 0u64..300, target in 3usize..80, fam in 0usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = motifs::grow(&mut rng, &Family::from_index(fam).profile(), target);
        for labeling in Labeling::BOTH {
            let mut labels = label_nodes(&g, labeling);
            labels.sort_unstable();
            prop_assert!(labels.iter().enumerate().all(|(i, &l)| i == l));
        }
    }

    /// The LBL entry label is always 0.
    #[test]
    fn lbl_entry_is_zero(seed in 0u64..300, target in 3usize..60) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = motifs::grow(&mut rng, &Family::Benign.profile(), target);
        let labels = label_nodes(&g, Labeling::Level);
        prop_assert_eq!(labels[g.entry().index()], 0);
    }

    /// Every step of a random walk crosses an undirected edge.
    #[test]
    fn walks_follow_edges(seed in 0u64..200, target in 3usize..40, len in 1usize..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = motifs::grow(&mut rng, &Family::Mirai.profile(), target);
        // Identity labels let us recover the node sequence.
        let labels: Vec<usize> = (0..g.node_count()).collect();
        let walk = random_walk(&g, &labels, len, &mut rng);
        for w in walk.windows(2) {
            let a = soteria_cfg::BlockId::new(w[0]);
            let b = soteria_cfg::BlockId::new(w[1]);
            prop_assert!(
                g.undirected_neighbors(a).contains(&b),
                "step {} -> {} is not an edge",
                w[0],
                w[1]
            );
        }
    }

    /// Gram counting is exact: total grams = Σ_n (len - n + 1) over the
    /// sizes that fit.
    #[test]
    fn gram_totals_are_exact(len in 1usize..120, sizes in proptest::sample::subsequence(vec![2usize,3,4], 1..=3)) {
        let walk: Vec<usize> = (0..len).map(|i| i % 9).collect();
        let mut c = GramCounts::new();
        c.add_walk(&walk, &sizes);
        let expected: usize = sizes
            .iter()
            .filter(|&&n| len >= n)
            .map(|&n| len - n + 1)
            .sum();
        prop_assert_eq!(c.total(), expected as u64);
    }

    /// Grams round-trip their labels for every legal shape.
    #[test]
    fn grams_round_trip(labels in proptest::collection::vec(0usize..60_000, 1..=4)) {
        let g = Gram::new(&labels);
        prop_assert_eq!(g.labels(), labels);
    }

    /// TF-IDF vectors are always finite and non-negative.
    #[test]
    fn tfidf_vectors_are_finite_nonnegative(seed in 0u64..100, k in 1usize..64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = motifs::grow(&mut rng, &Family::Gafgyt.profile(), 20);
        let labels = label_nodes(&g, Labeling::Density);
        let walks = walk_set(&g, &labels, 3, 4, &mut rng);
        let doc = count_walk_set(&walks, &[2, 3]);
        let vocab = Vocabulary::fit(std::slice::from_ref(&doc), k);
        for x in vocab.transform(&doc) {
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0);
        }
    }

    /// Stratified vocabularies never exceed the budget and cover every
    /// class that has documents.
    #[test]
    fn stratified_vocab_respects_budget(k in 4usize..64) {
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for class in 0..4usize {
            for d in 0..3usize {
                let walk: Vec<usize> = (0..30).map(|i| (i + class * 100 + d) % (10 + class * 10)).collect();
                let mut c = GramCounts::new();
                c.add_walk(&walk, &[2]);
                docs.push(c);
                labels.push(class);
            }
        }
        let vocab = Vocabulary::fit_stratified(&docs, &labels, 4, k);
        prop_assert!(vocab.len() <= k);
    }

    /// PCA projections are finite for arbitrary well-formed data.
    #[test]
    fn pca_is_finite(rows in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 4), 2..20)) {
        let pca = Pca::fit(&rows, 2);
        for r in &rows {
            for x in pca.transform(r) {
                prop_assert!(x.is_finite());
            }
        }
    }
}
