//! Differential battery for the extraction fast path.
//!
//! `FeatureExtractor::extract` runs the parallel fast path (per-walk jumped
//! RNG streams, interned gram counting, scratch arenas);
//! `FeatureExtractor::extract_reference` is the sequential original,
//! retained as the oracle. These tests pin the load-bearing claim of the
//! optimization: for every graph and every seed the two paths produce
//! **bit-identical** `SampleFeatures` — all DBL walk vectors, all LBL walk
//! vectors, and the combined vector (`SampleFeatures` equality compares all
//! three, and the vectors are `f64`s compared exactly).
//!
//! Coverage:
//!
//! * arbitrary small CFGs (proptest over dense adjacency masks, so
//!   self-loops, unreachable nodes, and isolated entries all arise) ×
//!   arbitrary seeds,
//! * the degenerate graphs called out by the walk semantics: single node
//!   (isolated entry consumes zero RNG words), unreachable node (stripped
//!   by the reachability pass), self-loop (neighbor list of one still
//!   consumes a draw per step),
//! * the paper's full-size configuration, not just the test-size one,
//! * worker-count invariance: the same bytes at pool sizes 1, 2, and 8,
//! * seed sensitivity: seeds move the walks, never the vocabulary.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use soteria_cfg::{Cfg, CfgBuilder};
use soteria_corpus::{motifs, Family};
use soteria_features::{ExtractorConfig, FeatureExtractor};
use std::sync::OnceLock;

fn grown(seed: u64, target: usize, fam: Family) -> Cfg {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    motifs::grow(&mut rng, &fam.profile(), target)
}

/// One extractor fitted on a fixed mini-corpus, shared across cases so the
/// proptest loop measures extraction, not fitting.
fn shared() -> &'static FeatureExtractor {
    static EX: OnceLock<FeatureExtractor> = OnceLock::new();
    EX.get_or_init(|| {
        let train: Vec<Cfg> = (0..4)
            .map(|i| {
                grown(
                    40 + i,
                    12 + 3 * i as usize,
                    Family::from_index(i as usize % 4),
                )
            })
            .collect();
        FeatureExtractor::fit(&ExtractorConfig::small(), &train, 9)
    })
}

/// Arbitrary small CFG: `n ≤ 8` nodes, every directed edge (including
/// self-loops) present or absent independently, entry fixed at node 0.
/// Unreachable nodes and entries with no undirected neighbors arise
/// naturally from sparse masks.
fn arb_cfg() -> impl Strategy<Value = Cfg> {
    (1usize..=8)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec(any::<bool>(), n * n)))
        .prop_map(|(n, mask)| {
            let mut b = CfgBuilder::new();
            let ids: Vec<_> = (0..n)
                .map(|i| b.add_block(i as u64 * 16, (i as u32 % 7) + 1))
                .collect();
            for f in 0..n {
                for t in 0..n {
                    if mask[f * n + t] {
                        b.add_edge(ids[f], ids[t]).expect("fresh edge");
                    }
                }
            }
            b.build(ids[0]).expect("n >= 1")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core differential property: fast path ≡ reference, bit for bit,
    /// on arbitrary graphs and arbitrary (full-range) seeds.
    #[test]
    fn fast_path_matches_reference_on_arbitrary_graphs(
        cfg in arb_cfg(),
        seed in any::<u64>(),
    ) {
        let ex = shared();
        prop_assert_eq!(ex.extract(&cfg, seed), ex.extract_reference(&cfg, seed));
    }

    /// Same property with a vocabulary fitted on the generated graph
    /// itself, so in-vocabulary hits (not just all-zero vectors) are
    /// exercised for every case.
    #[test]
    fn fast_path_matches_reference_with_self_fitted_vocabulary(
        cfg in arb_cfg(),
        seed in 0u64..1_000,
    ) {
        let ex = FeatureExtractor::fit(
            &ExtractorConfig::small(),
            std::slice::from_ref(&cfg),
            seed ^ 0xABCD,
        );
        prop_assert_eq!(ex.extract(&cfg, seed), ex.extract_reference(&cfg, seed));
    }
}

fn single_node() -> Cfg {
    let mut b = CfgBuilder::new();
    let e = b.add_block(0, 1);
    b.build(e).expect("one node")
}

fn self_loop() -> Cfg {
    let mut b = CfgBuilder::new();
    let e = b.add_block(0, 1);
    b.add_edge(e, e).expect("self-loop");
    b.build(e).expect("one node")
}

fn with_unreachable_node() -> Cfg {
    let mut b = CfgBuilder::new();
    let e = b.add_block(0, 1);
    let f = b.add_block(16, 2);
    let dead = b.add_block(32, 3);
    b.add_edge(e, f).expect("edge");
    b.add_edge(dead, f).expect("edge");
    b.build(e).expect("three nodes")
}

#[test]
fn degenerate_graphs_match_reference_across_many_seeds() {
    let ex = shared();
    for (name, cfg) in [
        ("single node", single_node()),
        ("self loop", self_loop()),
        ("unreachable node", with_unreachable_node()),
    ] {
        for seed in 0..64u64 {
            assert_eq!(
                ex.extract(&cfg, seed),
                ex.extract_reference(&cfg, seed),
                "{name}, seed {seed}"
            );
        }
    }
}

#[test]
fn fast_path_matches_reference_with_paper_config() {
    let train: Vec<Cfg> = (0..3)
        .map(|i| grown(70 + i, 20, Family::from_index(i as usize)))
        .collect();
    let ex = FeatureExtractor::fit(&ExtractorConfig::default(), &train, 1);
    for (i, g) in train.iter().enumerate() {
        for seed in [0u64, 17, u64::MAX] {
            assert_eq!(
                ex.extract(g, seed),
                ex.extract_reference(g, seed),
                "sample {i}, seed {seed}"
            );
        }
    }
}

/// The pool is process-global and only ever grows, so 1 → 2 → 8 exercises
/// three genuinely different worker counts within one process. Every size
/// must reproduce the sequential reference bytes exactly.
#[test]
fn output_is_invariant_across_pool_sizes() {
    let ex = shared();
    let g = grown(99, 24, Family::Mirai);
    let oracle = ex.extract_reference(&g, 42);
    for threads in [1usize, 2, 8] {
        soteria_pool::ensure_threads(threads);
        assert_eq!(ex.extract(&g, 42), oracle, "pool size {threads}");
    }
}

/// Seeds drive the walks and nothing else: different seeds change the
/// features, equal seeds reproduce them, and the fitted vocabulary (the
/// lookup side of the fast path) is untouched throughout.
#[test]
fn seeds_change_walks_but_not_vocabulary() {
    let ex = shared();
    let g = grown(7, 18, Family::Gafgyt);
    let dbl_before = ex.dbl_vocabulary().grams().to_vec();
    let lbl_before = ex.lbl_vocabulary().grams().to_vec();

    let a = ex.extract(&g, 1);
    let b = ex.extract(&g, 2);
    assert_ne!(a.combined(), b.combined(), "seeds must move the walks");
    assert_eq!(a, ex.extract(&g, 1), "equal seeds must reproduce");

    assert_eq!(ex.dbl_vocabulary().grams(), &dbl_before[..]);
    assert_eq!(ex.lbl_vocabulary().grams(), &lbl_before[..]);
    assert_eq!(a.combined().len(), b.combined().len());
}
