//! Soteria's feature pipeline: consistent CFG labeling, random-walk
//! traversal, n-gram representation, TF-IDF weighting, discriminative
//! feature selection, and PCA for the paper's feature-analysis figures.
//!
//! The pipeline (Fig. 3 of the paper):
//!
//! 1. Lift the binary to a CFG and restrict it to the blocks reachable
//!    from the entry (appended/unreachable code never influences features).
//! 2. Label every node twice: **density-based** (DBL — rank by
//!    `(in+out)/|E|`, ties broken by centrality factor, then level, then
//!    index) and **level-based** (LBL — rank by BFS level from the entry,
//!    ties broken the DBL way).
//! 3. Run 10 random walks of length `5·|V|` over the undirected graph per
//!    labeling, recording the label sequence.
//! 4. Extract 2-, 3- and 4-grams from each walk; weight by TF-IDF against
//!    a vocabulary of the top-500 most frequent grams per labeling fit on
//!    the training corpus.
//!
//! Per sample this yields twenty `1×500` walk vectors (ten per labeling,
//! consumed by the voting classifier) and one combined `1×1000` vector
//! (consumed by the auto-encoder detector and the PCA figures).
//!
//! # Example
//!
//! ```
//! use soteria_corpus::{Family, SampleGenerator};
//! use soteria_features::{FeatureExtractor, ExtractorConfig};
//!
//! let mut gen = SampleGenerator::new(1);
//! let train: Vec<_> = (0..8).map(|_| gen.generate(Family::Gafgyt)).collect();
//! let graphs: Vec<_> = train.iter().map(|s| s.graph().clone()).collect();
//!
//! let extractor = FeatureExtractor::fit(&ExtractorConfig::default(), &graphs, 99);
//! let fv = extractor.extract(&graphs[0], 7);
//! assert_eq!(fv.combined().len(), extractor.combined_dim());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod extractor;
pub(crate) mod fastpath;
pub mod labeling;
pub mod ngram;
pub mod pca;
pub mod tfidf;
pub mod walk;

pub use extractor::{ExtractorConfig, FeatureExtractor, SampleFeatures};
pub use labeling::{label_nodes, Labeling};
pub use ngram::{Gram, GramCounts};
pub use pca::Pca;
pub use tfidf::Vocabulary;
pub use walk::{random_walk, walk_set};
