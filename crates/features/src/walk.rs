//! Random walks over the labeled CFG.
//!
//! The paper: place a marker at the entry block of the *undirected* view of
//! the graph; at each step move to a uniformly random adjacent vertex;
//! record the label of every visited vertex. A walk of length `|W|` visits
//! `|W| + 1` labeled nodes. Soteria uses `|W| = 5·|V|` and repeats the walk
//! ten times per labeling, so each sample yields twenty label sequences.
//!
//! The walk is the randomization that defeats adaptive adversaries: the
//! features extracted from a sample differ from run to run, so an attacker
//! cannot predict which grams the deployed model will see.

use rand::Rng;
use soteria_cfg::Cfg;

/// Performs one random walk of `len` steps from the entry of `cfg`,
/// returning the visited labels (`len + 1` entries, or fewer only if the
/// walk reaches an isolated node with no undirected neighbors).
///
/// `labels[i]` must hold the label of node `i` (see
/// [`label_nodes`](crate::label_nodes)).
///
/// # Panics
///
/// Panics if `labels` is shorter than the node count.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use soteria_cfg::CfgBuilder;
/// use soteria_features::random_walk;
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// let mut b = CfgBuilder::new();
/// let e = b.add_block(0, 1);
/// let f = b.add_block(1, 1);
/// b.add_edge(e, f)?;
/// let g = b.build(e)?;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let walk = random_walk(&g, &[7, 9], 4, &mut rng);
/// assert_eq!(walk, vec![7, 9, 7, 9, 7]); // two nodes: the walk alternates
/// # Ok(())
/// # }
/// ```
pub fn random_walk<R: Rng>(cfg: &Cfg, labels: &[usize], len: usize, rng: &mut R) -> Vec<usize> {
    let adj = cfg.undirected_adjacency();
    walk_adjacency(&adj, cfg.entry(), labels, len, rng)
}

/// [`random_walk`] over a precomputed adjacency table (one table serves
/// every walk of a walk set).
pub fn walk_adjacency<R: Rng>(
    adj: &[Vec<soteria_cfg::BlockId>],
    entry: soteria_cfg::BlockId,
    labels: &[usize],
    len: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(labels.len() >= adj.len(), "labels cover every node");
    let mut out = Vec::with_capacity(len + 1);
    let mut at = entry;
    out.push(labels[at.index()]);
    for _ in 0..len {
        let neighbors = &adj[at.index()];
        if neighbors.is_empty() {
            break;
        }
        at = neighbors[rng.gen_range(0..neighbors.len())];
        out.push(labels[at.index()]);
    }
    out
}

/// The paper's full walk set for one labeling: `count` walks of length
/// `multiplier · |V|` each.
pub fn walk_set<R: Rng>(
    cfg: &Cfg,
    labels: &[usize],
    multiplier: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    let len = multiplier * cfg.node_count();
    let adj = cfg.undirected_adjacency();
    (0..count)
        .map(|_| walk_adjacency(&adj, cfg.entry(), labels, len, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use soteria_cfg::CfgBuilder;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn diamond() -> Cfg {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let l = b.add_block(1, 1);
        let r = b.add_block(2, 1);
        let x = b.add_block(3, 1);
        b.add_edge(e, l).unwrap();
        b.add_edge(e, r).unwrap();
        b.add_edge(l, x).unwrap();
        b.add_edge(r, x).unwrap();
        b.build(e).unwrap()
    }

    #[test]
    fn walk_has_len_plus_one_labels() {
        let g = diamond();
        let labels = vec![0, 1, 2, 3];
        let w = random_walk(&g, &labels, 10, &mut rng(0));
        assert_eq!(w.len(), 11);
    }

    #[test]
    fn walk_starts_at_entry_label() {
        let g = diamond();
        let labels = vec![9, 1, 2, 3];
        let w = random_walk(&g, &labels, 5, &mut rng(1));
        assert_eq!(w[0], 9);
    }

    #[test]
    fn consecutive_labels_are_adjacent_nodes() {
        let g = diamond();
        let labels = vec![0, 1, 2, 3];
        let w = random_walk(&g, &labels, 50, &mut rng(2));
        // In the diamond, 0 is adjacent to 1,2; 3 is adjacent to 1,2.
        for pair in w.windows(2) {
            let ok = matches!(
                (pair[0], pair[1]),
                (0, 1) | (0, 2) | (1, 0) | (2, 0) | (1, 3) | (2, 3) | (3, 1) | (3, 2)
            );
            assert!(ok, "non-edge step {pair:?}");
        }
    }

    #[test]
    fn isolated_entry_stops_immediately() {
        let mut b = CfgBuilder::new();
        let e = b.add_block(0, 1);
        let g = b.build(e).unwrap();
        let w = random_walk(&g, &[0], 10, &mut rng(3));
        assert_eq!(w, vec![0]);
    }

    #[test]
    fn walks_differ_across_draws_but_not_across_equal_seeds() {
        let g = diamond();
        let labels = vec![0, 1, 2, 3];
        let a = random_walk(&g, &labels, 30, &mut rng(7));
        let b = random_walk(&g, &labels, 30, &mut rng(7));
        assert_eq!(a, b);
        let mut r = rng(7);
        let c = random_walk(&g, &labels, 30, &mut r);
        let d = random_walk(&g, &labels, 30, &mut r);
        assert_ne!(c, d, "successive walks from one stream should differ");
    }

    #[test]
    fn walk_set_matches_paper_dimensions() {
        let g = diamond();
        let labels = vec![0, 1, 2, 3];
        let set = walk_set(&g, &labels, 5, 10, &mut rng(4));
        assert_eq!(set.len(), 10);
        for w in &set {
            assert_eq!(w.len(), 5 * g.node_count() + 1);
        }
    }

    #[test]
    fn walk_visits_whole_connected_graph_eventually() {
        let g = diamond();
        let labels = vec![0, 1, 2, 3];
        let w = random_walk(&g, &labels, 200, &mut rng(5));
        for l in 0..4 {
            assert!(w.contains(&l), "label {l} never visited");
        }
    }
}
