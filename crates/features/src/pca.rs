//! Principal component analysis for the paper's feature-space figures
//! (Figs. 8–11 project feature vectors to two dimensions).
//!
//! Implementation: mean-center, then power iteration with per-step
//! Gram–Schmidt re-orthogonalization against already-found components.
//! When the sample count is below the feature dimension the eigenproblem
//! is solved on the `n×n` Gram matrix and mapped back (the usual small-n
//! trick), so fitting 800 samples of 1,000-dim vectors stays cheap.

use serde::{Deserialize, Serialize};

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    /// Row-major components, each unit length, mutually orthogonal.
    components: Vec<Vec<f64>>,
    /// Eigenvalue (variance) per component.
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits `n_components` principal components on `data` (rows are
    /// samples).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows have inconsistent widths, or
    /// `n_components` is 0.
    ///
    /// # Example
    ///
    /// ```
    /// use soteria_features::Pca;
    ///
    /// // Points along the x-axis: the first component is (±1, 0).
    /// let data = vec![
    ///     vec![-2.0, 0.1],
    ///     vec![-1.0, -0.1],
    ///     vec![1.0, 0.1],
    ///     vec![2.0, -0.1],
    /// ];
    /// let pca = Pca::fit(&data, 1);
    /// let p = pca.transform(&[10.0, 0.0]);
    /// assert!(p[0].abs() > 9.0);
    /// ```
    pub fn fit(data: &[Vec<f64>], n_components: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit PCA on no samples");
        assert!(n_components >= 1, "need at least one component");
        let d = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == d),
            "inconsistent feature widths"
        );
        let n = data.len();
        let k = n_components.min(d).min(n);

        let mut mean = vec![0.0; d];
        for row in data {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let centered: Vec<Vec<f64>> = data
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(&x, &m)| x - m).collect())
            .collect();

        let (components, eigenvalues) = if n < d {
            Self::fit_gram(&centered, k)
        } else {
            Self::fit_covariance(&centered, k)
        };
        Pca {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Power iteration on the `d×d` covariance matrix.
    fn fit_covariance(centered: &[Vec<f64>], k: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = centered.len();
        let d = centered[0].len();
        let mut cov = vec![0.0f64; d * d];
        for row in centered {
            for i in 0..d {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in 0..d {
                    cov[i * d + j] += ri * row[j];
                }
            }
        }
        for c in &mut cov {
            *c /= n as f64;
        }
        let matvec = |v: &[f64], out: &mut [f64]| {
            for i in 0..d {
                out[i] = cov[i * d..(i + 1) * d]
                    .iter()
                    .zip(v)
                    .map(|(&a, &b)| a * b)
                    .sum();
            }
        };
        power_iterate(d, k, matvec)
    }

    /// Small-n trick: eigenvectors of the `n×n` Gram matrix `X·Xᵀ/n`
    /// mapped back through `Xᵀ`.
    fn fit_gram(centered: &[Vec<f64>], k: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = centered.len();
        let d = centered[0].len();
        let mut gram = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let dot: f64 = centered[i]
                    .iter()
                    .zip(&centered[j])
                    .map(|(&a, &b)| a * b)
                    .sum();
                gram[i * n + j] = dot / n as f64;
                gram[j * n + i] = dot / n as f64;
            }
        }
        let matvec = |v: &[f64], out: &mut [f64]| {
            for i in 0..n {
                out[i] = gram[i * n..(i + 1) * n]
                    .iter()
                    .zip(v)
                    .map(|(&a, &b)| a * b)
                    .sum();
            }
        };
        let (gram_vecs, eigenvalues) = power_iterate(n, k, matvec);
        // Map u (n-dim) back to feature space: v = Xᵀ u, normalized.
        let components = gram_vecs
            .into_iter()
            .map(|u| {
                let mut v = vec![0.0f64; d];
                for (row, &ui) in centered.iter().zip(&u) {
                    if ui == 0.0 {
                        continue;
                    }
                    for (vj, &xj) in v.iter_mut().zip(row) {
                        *vj += ui * xj;
                    }
                }
                normalize(&mut v);
                v
            })
            .collect();
        (components, eigenvalues)
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Variance captured by each component.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Projects one vector onto the components.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(&ci, (&xi, &mi))| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Projects a batch of vectors.
    pub fn transform_batch(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|x| self.transform(x)).collect()
    }
}

/// Finds the top-`k` eigenpairs of a symmetric PSD operator via power
/// iteration with Gram–Schmidt deflation.
fn power_iterate(
    dim: usize,
    k: usize,
    matvec: impl Fn(&[f64], &mut [f64]),
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut eigenvalues = Vec::with_capacity(k);
    for c in 0..k {
        // Deterministic pseudo-random start vector.
        let mut v: Vec<f64> = (0..dim)
            .map(|i| {
                let x = ((i as u64 + 1)
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(c as u64 * 77))
                    % 1000;
                x as f64 / 1000.0 - 0.5
            })
            .collect();
        orthogonalize(&mut v, &components);
        if normalize(&mut v) == 0.0 {
            v[c % dim] = 1.0;
        }
        let mut next = vec![0.0; dim];
        let mut lambda = 0.0;
        for _ in 0..500 {
            matvec(&v, &mut next);
            orthogonalize(&mut next, &components);
            let norm = normalize(&mut next);
            if norm == 0.0 {
                break; // operator annihilates the remaining subspace
            }
            let delta: f64 = v
                .iter()
                .zip(&next)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut v, &mut next);
            lambda = norm;
            if delta < 1e-10 {
                break;
            }
        }
        components.push(v.clone());
        eigenvalues.push(lambda);
    }
    (components, eigenvalues)
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(&a, &c)| a * c).sum();
        for (vi, &bi) in v.iter_mut().zip(b) {
            *vi -= dot * bi;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
        norm
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anisotropic_cloud(n: usize) -> Vec<Vec<f64>> {
        // Variance 100 along (1,1,0)/√2, variance 1 along (1,-1,0)/√2,
        // ~0 along z.
        (0..n)
            .map(|i| {
                let t = (i as f64 / n as f64 - 0.5) * 20.0;
                let s = ((i * 7 % 13) as f64 / 13.0 - 0.5) * 2.0;
                vec![t + s, t - s, 0.001 * (i % 3) as f64]
            })
            .collect()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let data = anisotropic_cloud(60);
        let pca = Pca::fit(&data, 2);
        let c0 = &pca.transform(&[1.0, 1.0, 0.0]);
        let c0_mag = c0[0].abs();
        let c1_mag = pca.transform(&[1.0, -1.0, 0.0])[0].abs();
        assert!(c0_mag > c1_mag, "first PC should align with (1,1,0)");
        assert!(pca.eigenvalues()[0] > pca.eigenvalues()[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = anisotropic_cloud(50);
        let pca = Pca::fit(&data, 2);
        let c = &pca.components;
        let dot: f64 = c[0].iter().zip(&c[1]).map(|(&a, &b)| a * b).sum();
        assert!(dot.abs() < 1e-6, "components not orthogonal: {dot}");
        for comp in c {
            let norm: f64 = comp.iter().map(|&x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gram_trick_matches_covariance_path() {
        // n < d triggers the Gram path; compare projections against the
        // covariance path on transposable data.
        let data: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..8).map(|j| ((i * j) as f64).sin()).collect())
            .collect();
        let gram = Pca::fit(&data, 2); // n=5 < d=8 -> Gram
        let wide: Vec<Vec<f64>> = data.clone();
        // Re-fit forcing covariance by replicating rows so n >= d.
        let mut tall = wide.clone();
        while tall.len() < 9 {
            tall.extend(wide.iter().cloned());
        }
        let cov = Pca::fit(&tall, 2);
        // Same subspace: projections of a probe differ at most by sign.
        let probe: Vec<f64> = (0..8).map(|j| (j as f64).cos()).collect();
        let pg = gram.transform(&probe);
        let pc = cov.transform(&probe);
        for (a, b) in pg.iter().zip(&pc) {
            assert!(
                (a.abs() - b.abs()).abs() < 0.5,
                "projections diverge: {pg:?} vs {pc:?}"
            );
        }
    }

    #[test]
    fn transform_of_mean_is_origin() {
        let data = anisotropic_cloud(30);
        let pca = Pca::fit(&data, 2);
        let mean = pca.mean().to_vec();
        let p = pca.transform(&mean);
        assert!(p.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn constant_data_yields_zero_projections() {
        let data = vec![vec![3.0, 3.0]; 10];
        let pca = Pca::fit(&data, 2);
        let p = pca.transform(&[3.0, 3.0]);
        assert!(p.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn batch_matches_single() {
        let data = anisotropic_cloud(20);
        let pca = Pca::fit(&data, 2);
        let batch = pca.transform_batch(&data);
        assert_eq!(batch[3], pca.transform(&data[3]));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        let _ = Pca::fit(&[], 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_width_transform_panics() {
        let pca = Pca::fit(&[vec![1.0, 2.0]], 1);
        let _ = pca.transform(&[1.0]);
    }
}
