//! The deterministic parallel fast path for feature extraction.
//!
//! [`extract_fast`] produces output bit-identical to the sequential
//! reference implementation
//! ([`FeatureExtractor::extract_reference`](crate::FeatureExtractor::extract_reference))
//! while replacing its three hot data structures:
//!
//! * **Per-walk RNG streams.** The reference draws all `2·count` walks from
//!   one sequential ChaCha8 stream: DBL walks first, then LBL walks. Each
//!   accepted `gen_range` draw consumes exactly one `next_u64` — two 32-bit
//!   keystream words — so walk `w` starts at word `w · 2·len` *unless* a
//!   Lemire rejection (probability ≈ `span / 2⁶⁴` per draw) consumed an
//!   extra draw somewhere before it. The fast path speculates that no
//!   rejection occurs: each walk seeds its own rng, jumps to its predicted
//!   word offset with `set_word_pos`, and afterwards verifies it consumed
//!   exactly the predicted number of words. Any mismatch anywhere flips a
//!   shared flag and the whole sample is recomputed on the reference path,
//!   so a speculation miss costs time, never correctness.
//!
//! * **Interned gram counting.** Instead of a `HashMap<Gram, u32>` per
//!   walk, grams are packed on the fly from a ring buffer of the last four
//!   labels and looked up in a frozen open-addressing table built from the
//!   fitted vocabulary ([`VocabIndex`]). In-vocabulary grams bump a slot in
//!   a dense `u32` array indexed by feature id; out-of-vocabulary grams
//!   only bump the walk's total (the reference's TF denominator counts
//!   them too). Walks are never materialized as label vectors.
//!
//! * **Scratch arenas.** The flat count/total buffers are checked out of a
//!   process-wide pool and returned after use, so steady-state extraction
//!   does not reallocate them. The arena is a checkout/checkin pool rather
//!   than a thread-local because pool workers *help drain* the queue while
//!   waiting: one OS thread can interleave two extractions' tasks.
//!
//! Bit-identity of the floating-point output holds because every per-gram
//! count and per-walk total is an integer on both paths, and the float
//! expressions (`tf = count / total`, `tf * idf`, index-order L2 norm) are
//! replicated operation for operation.

use crate::ngram::MAX_LABEL;
use crate::tfidf::Vocabulary;
use crate::{labeling, ExtractorConfig, Labeling};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use soteria_cfg::{Cfg, CsrAdjacency};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A frozen open-addressing lookup table from packed gram to feature id.
///
/// Linear probing over a power-of-two slot array sized at 4× the
/// vocabulary (load factor ≤ 0.25), keyed by `(len, packed)`. `len == 0`
/// marks an empty slot — constructed grams always have `1 ≤ len ≤ 4`.
#[derive(Debug, Clone)]
pub(crate) struct VocabIndex {
    slots: Vec<Slot>,
    mask: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    len: u8,
    packed: u64,
    id: u32,
}

fn hash_gram(len: u8, packed: u64) -> u64 {
    let mut z = packed.wrapping_add(u64::from(len).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl VocabIndex {
    pub(crate) fn build(vocab: &Vocabulary) -> Self {
        let cap = (4 * vocab.len().max(1)).next_power_of_two();
        let mut slots = vec![
            Slot {
                len: 0,
                packed: 0,
                id: 0
            };
            cap
        ];
        let mask = cap - 1;
        for (i, g) in vocab.grams().iter().enumerate() {
            let (len, packed) = (g.len() as u8, g.packed());
            let mut at = hash_gram(len, packed) as usize & mask;
            while slots[at].len != 0 {
                at = (at + 1) & mask;
            }
            slots[at] = Slot {
                len,
                packed,
                id: i as u32,
            };
        }
        VocabIndex { slots, mask }
    }

    #[inline]
    fn get(&self, len: u8, packed: u64) -> Option<u32> {
        let mut at = hash_gram(len, packed) as usize & self.mask;
        loop {
            let s = self.slots[at];
            if s.len == 0 {
                return None;
            }
            if s.len == len && s.packed == packed {
                return Some(s.id);
            }
            at = (at + 1) & self.mask;
        }
    }
}

/// The two interned vocabularies, built once per fitted extractor and
/// cached behind a `OnceLock` (rebuilt transparently after deserialize).
#[derive(Debug, Clone)]
pub(crate) struct FastTables {
    dbl: VocabIndex,
    lbl: VocabIndex,
}

impl FastTables {
    pub(crate) fn build(dbl: &Vocabulary, lbl: &Vocabulary) -> Self {
        FastTables {
            dbl: VocabIndex::build(dbl),
            lbl: VocabIndex::build(lbl),
        }
    }
}

/// Reusable count/total buffers for one extraction.
#[derive(Default)]
struct Scratch {
    /// Per-walk dense counts: `count` DBL blocks then `count` LBL blocks.
    counts: Vec<u32>,
    /// Column sums over walks, DBL block then LBL block.
    merged: Vec<u32>,
    /// Per-walk window totals (including out-of-vocabulary windows).
    totals: Vec<u64>,
}

static SCRATCH_POOL: Mutex<Vec<Scratch>> = Mutex::new(Vec::new());
const SCRATCH_POOL_CAP: usize = 32;

fn checkout() -> Scratch {
    SCRATCH_POOL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pop()
        .unwrap_or_default()
}

fn checkin(scratch: Scratch) {
    let mut pool = SCRATCH_POOL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if pool.len() < SCRATCH_POOL_CAP {
        pool.push(scratch);
    }
}

/// The fast path's output; the extractor wraps it into `SampleFeatures`.
pub(crate) struct FastOutput {
    pub(crate) dbl_walks: Vec<Vec<f64>>,
    pub(crate) lbl_walks: Vec<Vec<f64>>,
    pub(crate) combined: Vec<f64>,
}

/// One walk's unit of work: its global index (which fixes its RNG word
/// offset), its labeling, and disjoint output slices.
struct WalkUnit<'a> {
    w: usize,
    labels: &'a [usize],
    idf: &'a [f64],
    index: &'a VocabIndex,
    vlen: usize,
    counts: &'a mut [u32],
    total: &'a mut u64,
    out: &'a mut [f64],
}

/// Appends one label to the fused walk/count state: the ring keeps the last
/// four labels, and every configured window ending at this position is
/// packed and counted. Counting all windows in `total` (in-vocabulary or
/// not) mirrors the reference's TF denominator.
#[inline]
fn push_label(
    label: usize,
    ring: &mut [u64; 4],
    pos: &mut usize,
    sizes: &[usize],
    index: &VocabIndex,
    counts: &mut [u32],
    total: &mut u64,
) {
    ring[*pos & 3] = label as u64;
    *pos += 1;
    for &n in sizes {
        if *pos < n {
            continue;
        }
        let mut packed = 0u64;
        for j in 0..n {
            packed |= ring[(*pos - n + j) & 3] << (16 * j);
        }
        *total += 1;
        if let Some(id) = index.get(n as u8, packed) {
            counts[id as usize] += 1;
        }
    }
}

/// Runs one walk end to end: jump the RNG to the walk's predicted word
/// offset, walk and count fused, verify the speculation, then transform and
/// normalize into the walk's output slice.
#[allow(clippy::too_many_arguments)]
fn run_unit(
    unit: &mut WalkUnit<'_>,
    csr: &CsrAdjacency,
    entry: usize,
    len: usize,
    sizes: &[usize],
    seed: u64,
    words_per_walk: u64,
    ok: &AtomicBool,
) {
    if !ok.load(Ordering::Relaxed) {
        return;
    }
    let start = (unit.w as u64).wrapping_mul(words_per_walk);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_word_pos(start);

    let mut ring = [0u64; 4];
    let mut pos = 0usize;
    let mut total = 0u64;
    let mut at = entry;
    push_label(
        unit.labels[at],
        &mut ring,
        &mut pos,
        sizes,
        unit.index,
        unit.counts,
        &mut total,
    );
    for _ in 0..len {
        let neighbors = csr.neighbors(at);
        if neighbors.is_empty() {
            break;
        }
        at = neighbors[rng.gen_range(0..neighbors.len())] as usize;
        push_label(
            unit.labels[at],
            &mut ring,
            &mut pos,
            sizes,
            unit.index,
            unit.counts,
            &mut total,
        );
    }
    if rng.get_word_pos() != start.wrapping_add(words_per_walk) {
        // A Lemire rejection shifted the sequential stream: this walk (and
        // every later one) no longer matches the reference. Abort the whole
        // sample; the caller falls back to the reference path.
        ok.store(false, Ordering::Relaxed);
        return;
    }
    *unit.total = total;
    if total > 0 {
        for i in 0..unit.vlen {
            let c = unit.counts[i];
            if c > 0 {
                let tf = f64::from(c) / total as f64;
                unit.out[i] = tf * unit.idf[i];
            }
        }
    }
    // Same operation order as the reference's `l2_normalized`.
    let norm = unit.out.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in unit.out.iter_mut() {
            *x /= norm;
        }
    }
}

/// Extracts one sample on the fast path, or returns `None` when the fast
/// path cannot guarantee bit-identical output and the caller must use the
/// reference implementation: an n-gram size the 4-label ring cannot hold
/// (the reference panics on those, and the fallback reproduces that), a
/// label outside the packable range, a vocabulary wider than `top_k`, or an
/// RNG speculation miss.
pub(crate) fn extract_fast(
    config: &ExtractorConfig,
    dbl_vocab: &Vocabulary,
    lbl_vocab: &Vocabulary,
    tables: &FastTables,
    cfg: &Cfg,
    seed: u64,
) -> Option<FastOutput> {
    let k = config.top_k;
    if config.ngram_sizes.iter().any(|&n| n == 0 || n > 4) {
        return None;
    }
    if dbl_vocab.len() > k || lbl_vocab.len() > k {
        return None;
    }

    let (reachable, _) = cfg.reachable_subgraph();
    let (dbl_labels, lbl_labels) = {
        let _span = soteria_telemetry::span("features.stage.labeling");
        let keys = labeling::NodeKeys::compute(&reachable);
        (
            labeling::label_nodes_with(&reachable, Labeling::Density, &keys),
            labeling::label_nodes_with(&reachable, Labeling::Level, &keys),
        )
    };
    if dbl_labels
        .iter()
        .chain(lbl_labels.iter())
        .any(|&l| l > MAX_LABEL)
    {
        return None;
    }

    let csr = reachable.csr_adjacency();
    let entry = reachable.entry().index();
    let len = config.walk_multiplier * reachable.node_count();
    let count = config.walks_per_labeling;
    let total_walks = 2 * count;
    let (dl, ll) = (dbl_vocab.len(), lbl_vocab.len());
    // Every accepted uniform draw costs exactly two keystream words; a walk
    // from an isolated entry stops before its first draw.
    let words_per_walk = if csr.degree(entry) == 0 {
        0
    } else {
        2 * len as u64
    };

    let mut scratch = checkout();
    let (dstride, lstride) = (dl.max(1), ll.max(1));
    scratch.counts.clear();
    scratch.counts.resize(count * (dstride + lstride), 0);
    scratch.totals.clear();
    scratch.totals.resize(total_walks, 0);
    scratch.merged.clear();
    scratch.merged.resize(dl + ll, 0);

    let mut dbl_walks: Vec<Vec<f64>> = (0..count).map(|_| vec![0.0; k]).collect();
    let mut lbl_walks: Vec<Vec<f64>> = (0..count).map(|_| vec![0.0; k]).collect();

    let ok = AtomicBool::new(true);
    {
        let _span = soteria_telemetry::span("features.stage.walks");
        let (dbl_flat, lbl_flat) = scratch.counts.split_at_mut(count * dstride);
        let (dbl_totals, lbl_totals) = scratch.totals.split_at_mut(count);
        let mut units: Vec<WalkUnit<'_>> = Vec::with_capacity(total_walks);
        for (w, ((counts, out), total)) in dbl_flat
            .chunks_mut(dstride)
            .zip(dbl_walks.iter_mut())
            .zip(dbl_totals.iter_mut())
            .enumerate()
        {
            units.push(WalkUnit {
                w,
                labels: &dbl_labels,
                idf: dbl_vocab.idf_weights(),
                index: &tables.dbl,
                vlen: dl,
                counts,
                total,
                out,
            });
        }
        for (j, ((counts, out), total)) in lbl_flat
            .chunks_mut(lstride)
            .zip(lbl_walks.iter_mut())
            .zip(lbl_totals.iter_mut())
            .enumerate()
        {
            units.push(WalkUnit {
                w: count + j,
                labels: &lbl_labels,
                idf: lbl_vocab.idf_weights(),
                index: &tables.lbl,
                vlen: ll,
                counts,
                total,
                out,
            });
        }

        let sizes: &[usize] = &config.ngram_sizes;
        let jobs = (soteria_pool::pool_threads() + 1).min(units.len().max(1));
        if jobs <= 1 {
            for unit in &mut units {
                run_unit(unit, csr, entry, len, sizes, seed, words_per_walk, &ok);
            }
        } else {
            let per = units.len().div_ceil(jobs);
            let ok = &ok;
            let tasks: Vec<soteria_pool::ScopedTask<'_>> = units
                .chunks_mut(per)
                .map(|chunk| {
                    Box::new(move || {
                        for unit in chunk.iter_mut() {
                            run_unit(unit, csr, entry, len, sizes, seed, words_per_walk, ok);
                        }
                    }) as soteria_pool::ScopedTask<'_>
                })
                .collect();
            soteria_telemetry::counter("features.fastpath.walk_jobs", tasks.len() as u64);
            soteria_pool::run_scoped(tasks);
        }
    }
    if !ok.load(Ordering::Relaxed) {
        checkin(scratch);
        return None;
    }

    // Merged vectors are integer column sums over the per-walk counts
    // (order-independent), then the same transform + single normalization
    // as the reference's combined vector.
    let _span = soteria_telemetry::span("features.stage.tfidf_transform");
    let (dbl_flat, lbl_flat) = scratch.counts.split_at(count * dstride);
    let (dbl_merged, lbl_merged) = scratch.merged.split_at_mut(dl);
    for walk in dbl_flat.chunks(dstride) {
        for (m, &c) in dbl_merged.iter_mut().zip(walk.iter()) {
            *m += c;
        }
    }
    for walk in lbl_flat.chunks(lstride) {
        for (m, &c) in lbl_merged.iter_mut().zip(walk.iter()) {
            *m += c;
        }
    }
    let dbl_total: u64 = scratch.totals[..count].iter().sum();
    let lbl_total: u64 = scratch.totals[count..].iter().sum();

    let mut combined = vec![0.0f64; 2 * k];
    if dbl_total > 0 {
        for (i, &c) in dbl_merged.iter().enumerate() {
            if c > 0 {
                let tf = f64::from(c) / dbl_total as f64;
                combined[i] = tf * dbl_vocab.idf(i);
            }
        }
    }
    if lbl_total > 0 {
        for (i, &c) in lbl_merged.iter().enumerate() {
            if c > 0 {
                let tf = f64::from(c) / lbl_total as f64;
                combined[k + i] = tf * lbl_vocab.idf(i);
            }
        }
    }
    let norm = combined.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in &mut combined {
            *x /= norm;
        }
    }

    checkin(scratch);
    Some(FastOutput {
        dbl_walks,
        lbl_walks,
        combined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::Gram;
    use crate::ngram::GramCounts;

    fn vocab_of(walks: &[&[usize]], sizes: &[usize], k: usize) -> Vocabulary {
        let docs: Vec<GramCounts> = walks
            .iter()
            .map(|w| {
                let mut c = GramCounts::new();
                c.add_walk(w, sizes);
                c
            })
            .collect();
        Vocabulary::fit(&docs, k)
    }

    #[test]
    fn vocab_index_finds_every_gram_and_rejects_others() {
        let vocab = vocab_of(&[&[0, 1, 2, 3, 0, 1], &[2, 2, 2]], &[2, 3], 64);
        let index = VocabIndex::build(&vocab);
        for (i, g) in vocab.grams().iter().enumerate() {
            assert_eq!(index.get(g.len() as u8, g.packed()), Some(i as u32));
        }
        let absent = Gram::new(&[9, 9, 9, 9]);
        assert_eq!(index.get(absent.len() as u8, absent.packed()), None);
    }

    #[test]
    fn vocab_index_on_empty_vocabulary_is_empty() {
        let vocab = Vocabulary::fit(&[], 8);
        let index = VocabIndex::build(&vocab);
        assert_eq!(index.get(2, 0), None);
    }

    #[test]
    fn push_label_counts_every_window_like_the_reference() {
        let walk = [0usize, 1, 0, 1, 2, 0];
        let sizes = [2usize, 3];
        let vocab = vocab_of(&[&walk], &sizes, 64);
        let index = VocabIndex::build(&vocab);

        let mut counts = vec![0u32; vocab.len()];
        let mut total = 0u64;
        let mut ring = [0u64; 4];
        let mut pos = 0usize;
        for &l in &walk {
            push_label(
                l,
                &mut ring,
                &mut pos,
                &sizes,
                &index,
                &mut counts,
                &mut total,
            );
        }

        let mut reference = GramCounts::new();
        reference.add_walk(&walk, &sizes);
        assert_eq!(total, reference.total());
        for (i, g) in vocab.grams().iter().enumerate() {
            assert_eq!(counts[i], reference.count(*g), "gram {g}");
        }
    }

    #[test]
    fn scratch_pool_round_trips() {
        let mut s = checkout();
        s.counts.resize(10, 7);
        checkin(s);
        let s2 = checkout();
        // Buffers come back with stale contents; extract_fast re-zeroes.
        checkin(s2);
    }
}
