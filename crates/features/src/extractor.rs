//! The end-to-end feature extractor: labeling + walks + n-grams + TF-IDF.

use crate::fastpath::{self, FastTables};
use crate::labeling::{self, Labeling, NodeKeys};
use crate::ngram::{count_walk_set, GramCounts};
use crate::tfidf::Vocabulary;
use crate::walk;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use soteria_cfg::Cfg;
use soteria_resilience::{FaultKind, ResourceGuards};
use std::borrow::Borrow;
use std::panic::AssertUnwindSafe;
use std::sync::OnceLock;

/// Extraction parameters; defaults are the paper's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractorConfig {
    /// Walk length as a multiple of `|V|` (paper: 5).
    pub walk_multiplier: usize,
    /// Walks per labeling (paper: 10, so 20 total).
    pub walks_per_labeling: usize,
    /// n-gram sizes (paper: 2, 3 and 4).
    pub ngram_sizes: Vec<usize>,
    /// Features kept per labeling (paper: 500).
    pub top_k: usize,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            walk_multiplier: 5,
            walks_per_labeling: 10,
            ngram_sizes: vec![2, 3, 4],
            top_k: 500,
        }
    }
}

impl ExtractorConfig {
    /// A scaled-down configuration for fast tests and CI experiments.
    pub fn small() -> Self {
        ExtractorConfig {
            walk_multiplier: 3,
            walks_per_labeling: 4,
            ngram_sizes: vec![2, 3],
            top_k: 128,
        }
    }
}

/// Features of one sample: the per-walk vectors consumed by the voting
/// classifier and the combined vector consumed by the detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleFeatures {
    dbl_walks: Vec<Vec<f64>>,
    lbl_walks: Vec<Vec<f64>>,
    combined: Vec<f64>,
}

impl SampleFeatures {
    /// The ten (by default) DBL walk vectors, each `top_k` wide.
    pub fn dbl_walks(&self) -> &[Vec<f64>] {
        &self.dbl_walks
    }

    /// The ten LBL walk vectors.
    pub fn lbl_walks(&self) -> &[Vec<f64>] {
        &self.lbl_walks
    }

    /// The combined `2·top_k` detector vector (DBL half then LBL half).
    pub fn combined(&self) -> &[f64] {
        &self.combined
    }

    /// The walk vectors of one labeling.
    pub fn walks(&self, labeling: Labeling) -> &[Vec<f64>] {
        match labeling {
            Labeling::Density => &self.dbl_walks,
            Labeling::Level => &self.lbl_walks,
        }
    }
}

/// A fitted feature extractor (vocabularies frozen on the training split).
///
/// The random walks themselves remain random per extraction — that is the
/// paper's randomization defense — while the gram vocabulary and IDF
/// weights are deterministic given the fit seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureExtractor {
    config: ExtractorConfig,
    dbl_vocab: Vocabulary,
    lbl_vocab: Vocabulary,
    /// Interned gram-lookup tables for the fast path, built lazily from the
    /// vocabularies. Skipped by serde and reset by `Default` on
    /// deserialization; rebuilding is cheap and changes no observable
    /// state.
    #[serde(skip)]
    fast: OnceLock<FastTables>,
}

/// Per-labeling gram bags for one sample.
struct SampleGrams {
    /// One bag per walk.
    per_walk: Vec<GramCounts>,
    /// All walks merged.
    merged: GramCounts,
}

impl FeatureExtractor {
    /// Walks + counts grams for one labeling of one (already
    /// reachability-restricted) graph.
    fn grams_for(
        config: &ExtractorConfig,
        cfg: &Cfg,
        labels: &[usize],
        rng: &mut ChaCha8Rng,
    ) -> SampleGrams {
        let walks = {
            let _span = soteria_telemetry::span("features.stage.walks");
            walk::walk_set(
                cfg,
                labels,
                config.walk_multiplier,
                config.walks_per_labeling,
                rng,
            )
        };
        let _span = soteria_telemetry::span("features.stage.ngrams");
        let per_walk: Vec<GramCounts> = walks
            .iter()
            .map(|w| count_walk_set(std::slice::from_ref(w), &config.ngram_sizes))
            .collect();
        let mut merged = GramCounts::new();
        for b in &per_walk {
            merged.merge(b);
        }
        SampleGrams { per_walk, merged }
    }

    /// Labels both ways and walks both labelings.
    fn both_grams(config: &ExtractorConfig, cfg: &Cfg, seed: u64) -> (SampleGrams, SampleGrams) {
        let (reachable, _) = cfg.reachable_subgraph();
        let (dbl, lbl) = {
            let _span = soteria_telemetry::span("features.stage.labeling");
            let keys = NodeKeys::compute(&reachable);
            let dbl = labeling::label_nodes_with(&reachable, Labeling::Density, &keys);
            let lbl = labeling::label_nodes_with(&reachable, Labeling::Level, &keys);
            (dbl, lbl)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = Self::grams_for(config, &reachable, &dbl, &mut rng);
        let l = Self::grams_for(config, &reachable, &lbl, &mut rng);
        (d, l)
    }

    /// Fits the DBL and LBL vocabularies on training graphs with a
    /// globally-frequent gram selection.
    ///
    /// `seed` drives the training walks; per-graph seeds are derived from
    /// it so results do not depend on iteration order (training samples are
    /// walked in parallel on the shared worker pool when it is warm).
    ///
    /// Accepts any slice of graphs, owned or borrowed (`&[Cfg]` and
    /// `&[&Cfg]` both work).
    pub fn fit<B: Borrow<Cfg> + Sync>(config: &ExtractorConfig, train: &[B], seed: u64) -> Self {
        let _span = soteria_telemetry::span("features.fit");
        soteria_telemetry::counter("features.fit.samples", train.len() as u64);
        let (dbl_docs, lbl_docs) = Self::train_documents(config, train, seed);
        let _tfidf = soteria_telemetry::span("features.stage.tfidf_fit");
        FeatureExtractor {
            config: config.clone(),
            dbl_vocab: Vocabulary::fit(&dbl_docs, config.top_k),
            lbl_vocab: Vocabulary::fit(&lbl_docs, config.top_k),
            fast: OnceLock::new(),
        }
    }

    /// Like [`fit`](FeatureExtractor::fit) but with class labels: the gram
    /// budget is stratified over the classes (the paper's "top
    /// discriminative grams"), so a majority family cannot crowd minority
    /// classes out of the vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if `train` and `labels` lengths differ.
    pub fn fit_stratified<B: Borrow<Cfg> + Sync>(
        config: &ExtractorConfig,
        train: &[B],
        labels: &[usize],
        classes: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(train.len(), labels.len(), "train/labels mismatch");
        let _span = soteria_telemetry::span("features.fit");
        soteria_telemetry::counter("features.fit.samples", train.len() as u64);
        let (dbl_docs, lbl_docs) = Self::train_documents(config, train, seed);
        let _tfidf = soteria_telemetry::span("features.stage.tfidf_fit");
        FeatureExtractor {
            config: config.clone(),
            dbl_vocab: Vocabulary::fit_stratified(&dbl_docs, labels, classes, config.top_k),
            lbl_vocab: Vocabulary::fit_stratified(&lbl_docs, labels, classes, config.top_k),
            fast: OnceLock::new(),
        }
    }

    /// Walks every training sample and returns its merged DBL/LBL gram
    /// bags, in input order. Samples fan out over the shared worker pool
    /// (per-sample derived seeds and order-preserving slots keep the result
    /// independent of scheduling).
    fn train_documents<B: Borrow<Cfg> + Sync>(
        config: &ExtractorConfig,
        train: &[B],
        seed: u64,
    ) -> (Vec<GramCounts>, Vec<GramCounts>) {
        let n = train.len();
        let mut slots: Vec<Option<(GramCounts, GramCounts)>> = vec![None; n];
        let jobs = (soteria_pool::pool_threads() + 1).min(n.max(1));
        if jobs <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                let (d, l) =
                    Self::both_grams(config, train[i].borrow(), derive_seed(seed, i as u64));
                *slot = Some((d.merged, l.merged));
            }
        } else {
            let per = n.div_ceil(jobs);
            let tasks: Vec<soteria_pool::ScopedTask<'_>> = slots
                .chunks_mut(per)
                .enumerate()
                .map(|(t, chunk)| {
                    Box::new(move || {
                        let _worker = soteria_telemetry::span("features.fit.worker");
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let i = t * per + j;
                            let (d, l) = Self::both_grams(
                                config,
                                train[i].borrow(),
                                derive_seed(seed, i as u64),
                            );
                            *slot = Some((d.merged, l.merged));
                        }
                    }) as soteria_pool::ScopedTask<'_>
                })
                .collect();
            soteria_pool::run_scoped(tasks);
        }
        let mut dbl_docs = Vec::with_capacity(n);
        let mut lbl_docs = Vec::with_capacity(n);
        for slot in slots {
            let (d, l) = slot.expect("every training sample walked");
            dbl_docs.push(d);
            lbl_docs.push(l);
        }
        (dbl_docs, lbl_docs)
    }

    /// Rebuilds a fitted extractor from its configuration and fitted
    /// vocabularies (the binary artifact loader's constructor). The fast
    /// gram-lookup tables are rebuilt lazily on first use, exactly as
    /// after deserialization.
    pub fn from_parts(
        config: ExtractorConfig,
        dbl_vocab: Vocabulary,
        lbl_vocab: Vocabulary,
    ) -> Self {
        FeatureExtractor {
            config,
            dbl_vocab,
            lbl_vocab,
            fast: OnceLock::new(),
        }
    }

    /// The extraction configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Width of each per-labeling vector.
    pub fn per_labeling_dim(&self) -> usize {
        self.config.top_k
    }

    /// Width of the combined detector vector.
    pub fn combined_dim(&self) -> usize {
        2 * self.config.top_k
    }

    /// The fitted DBL vocabulary, in feature order (inspection and
    /// golden-fixture tooling).
    pub fn dbl_vocabulary(&self) -> &Vocabulary {
        &self.dbl_vocab
    }

    /// The fitted LBL vocabulary, in feature order.
    pub fn lbl_vocabulary(&self) -> &Vocabulary {
        &self.lbl_vocab
    }

    /// Extracts features for one sample. `seed` drives this sample's
    /// random walks — pass a fresh value per extraction to exercise the
    /// randomization property, or a fixed one for reproducible tests.
    ///
    /// Every emitted vector is L2-normalized (the standard companion of
    /// TF-IDF): raw term frequencies scale inversely with walk length, and
    /// normalization keeps clean vectors at unit magnitude so the
    /// auto-encoder and CNNs see well-conditioned inputs.
    ///
    /// Runs on the parallel fast path (per-walk RNG streams, interned gram
    /// counting, scratch arenas — see the `fastpath` module) and falls back
    /// to [`extract_reference`](Self::extract_reference) whenever the fast
    /// path cannot guarantee bit-identical output. Both paths produce the
    /// same bytes for the same `(cfg, seed)`.
    pub fn extract(&self, cfg: &Cfg, seed: u64) -> SampleFeatures {
        let _span = soteria_telemetry::span("features.extract");
        soteria_telemetry::counter("features.extracted", 1);
        let tables = self
            .fast
            .get_or_init(|| FastTables::build(&self.dbl_vocab, &self.lbl_vocab));
        if let Some(out) = fastpath::extract_fast(
            &self.config,
            &self.dbl_vocab,
            &self.lbl_vocab,
            tables,
            cfg,
            seed,
        ) {
            soteria_telemetry::counter("features.fastpath.hits", 1);
            return SampleFeatures {
                dbl_walks: out.dbl_walks,
                lbl_walks: out.lbl_walks,
                combined: out.combined,
            };
        }
        soteria_telemetry::counter("features.fastpath.fallbacks", 1);
        self.extract_reference(cfg, seed)
    }

    /// The sequential reference implementation of [`extract`](Self::extract):
    /// one RNG stream, materialized walks, hash-map gram counting. Retained
    /// verbatim as the differential oracle for the fast path's test battery
    /// and as the fallback when the fast path declines a sample.
    pub fn extract_reference(&self, cfg: &Cfg, seed: u64) -> SampleFeatures {
        let k = self.config.top_k;
        let (d, l) = Self::both_grams(&self.config, cfg, seed);
        let _tfidf = soteria_telemetry::span("features.stage.tfidf_transform");
        let dbl_walks = d
            .per_walk
            .iter()
            .map(|b| l2_normalized(self.dbl_vocab.transform_fixed(b, k)))
            .collect();
        let lbl_walks = l
            .per_walk
            .iter()
            .map(|b| l2_normalized(self.lbl_vocab.transform_fixed(b, k)))
            .collect();
        // The combined vector is one document over the concatenated
        // vocabulary, so it gets a single normalization — normalizing the
        // halves independently would blow sampling noise in a sparse half
        // up to unit magnitude.
        let mut combined = self.dbl_vocab.transform_fixed(&d.merged, k);
        combined.extend(self.lbl_vocab.transform_fixed(&l.merged, k));
        let combined = l2_normalized(combined);
        SampleFeatures {
            dbl_walks,
            lbl_walks,
            combined,
        }
    }

    /// Fallible extraction for one sample: admission control against
    /// `guards` (graph size, walk-step budget), chaos injection, panic
    /// isolation, and a post-hoc wall-clock check. A pathological graph
    /// yields an `Err(FaultKind)` instead of unwinding into the caller.
    pub fn try_extract(
        &self,
        cfg: &Cfg,
        seed: u64,
        guards: &ResourceGuards,
    ) -> Result<SampleFeatures, FaultKind> {
        let budget = guards.start_budget();
        guards.admit_graph(cfg.node_count(), cfg.edge_count())?;
        // Total steps this sample will walk: 2 labelings × walks ×
        // (multiplier · |V|) steps per walk.
        let steps = 2usize
            .saturating_mul(self.config.walks_per_labeling)
            .saturating_mul(self.config.walk_multiplier)
            .saturating_mul(cfg.node_count());
        guards.admit_walk_steps(steps)?;
        let features = soteria_resilience::isolate(AssertUnwindSafe(|| {
            soteria_resilience::chaos_point("features.extract", seed);
            self.extract(cfg, seed)
        }))?;
        budget.check()?;
        Ok(features)
    }

    /// Extracts features for many samples in parallel on the shared worker
    /// pool (deterministic per-sample seeds derived from `seed`). Accepts
    /// any slice of graphs, owned or borrowed.
    ///
    /// # Panics
    ///
    /// Panics if any sample faults. Batch callers that must survive bad
    /// samples use [`extract_batch_isolated`](Self::extract_batch_isolated).
    pub fn extract_batch<B: Borrow<Cfg> + Sync>(
        &self,
        graphs: &[B],
        seed: u64,
    ) -> Vec<SampleFeatures> {
        self.extract_batch_isolated(graphs, seed, &ResourceGuards::unlimited())
            .into_iter()
            .map(|r| r.unwrap_or_else(|fault| panic!("feature extraction failed: {fault}")))
            .collect()
    }

    /// Extracts features for many samples in parallel with per-sample fault
    /// isolation: a panic, oversized graph, or budget overrun in sample `i`
    /// yields `Err(FaultKind)` in slot `i` and leaves every other sample
    /// untouched. Seeds are derived per sample from `seed`, exactly as in
    /// [`extract_batch`](Self::extract_batch).
    ///
    /// Samples fan out over the shared worker pool ([`soteria_pool`]); the
    /// pool is warmed here so batch extraction is parallel by default, as
    /// the previous scoped-thread implementation was.
    pub fn extract_batch_isolated<B: Borrow<Cfg> + Sync>(
        &self,
        graphs: &[B],
        seed: u64,
        guards: &ResourceGuards,
    ) -> Vec<Result<SampleFeatures, FaultKind>> {
        let _span = soteria_telemetry::span("features.extract_batch");
        soteria_telemetry::counter("features.extract_batch.samples", graphs.len() as u64);
        if graphs.is_empty() {
            return Vec::new();
        }
        soteria_pool::warm();
        let jobs = (soteria_pool::pool_threads() + 1).min(graphs.len());
        let mut out: Vec<Option<Result<SampleFeatures, FaultKind>>> = vec![None; graphs.len()];
        let run_one = |i: usize, slot: &mut Option<Result<SampleFeatures, FaultKind>>| {
            // try_extract already confines faults per sample; this outer
            // net only catches panics from the dispatch plumbing itself, so
            // one bad sample can never poison its chunk-mates.
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.try_extract(graphs[i].borrow(), derive_seed(seed, i as u64), guards)
            }));
            *slot = Some(caught.unwrap_or_else(|payload| {
                soteria_telemetry::counter("features.extract_batch.worker_deaths", 1);
                Err(FaultKind::from_panic(payload))
            }));
        };
        if jobs <= 1 {
            for (i, slot) in out.iter_mut().enumerate() {
                run_one(i, slot);
            }
        } else {
            let chunk = graphs.len().div_ceil(jobs);
            let run_one = &run_one;
            let tasks: Vec<soteria_pool::ScopedTask<'_>> = out
                .chunks_mut(chunk)
                .enumerate()
                .map(|(t, slot_chunk)| {
                    let start = t * chunk;
                    Box::new(move || {
                        // Per-worker span: the spread between workers shows
                        // chunking imbalance in the summary table.
                        let _worker = soteria_telemetry::span("features.extract_batch.worker");
                        for (j, slot) in slot_chunk.iter_mut().enumerate() {
                            run_one(start + j, slot);
                        }
                    }) as soteria_pool::ScopedTask<'_>
                })
                .collect();
            soteria_pool::run_scoped(tasks);
        }
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(FaultKind::Panic {
                        message: "extraction worker died before reaching this sample".to_owned(),
                    })
                })
            })
            .collect()
    }
}

/// L2-normalizes a vector in place (zero vectors pass through unchanged).
fn l2_normalized(mut v: Vec<f64>) -> Vec<f64> {
    let norm = v.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// SplitMix-style seed derivation so per-sample streams are independent.
fn derive_seed(master: u64, i: u64) -> u64 {
    let mut z = master ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_corpus::{Family, SampleGenerator};

    fn graphs(n: usize, family: Family, seed: u64) -> Vec<Cfg> {
        let mut gen = SampleGenerator::new(seed);
        (0..n)
            .map(|_| gen.generate(family).graph().clone())
            .collect()
    }

    fn fitted() -> (FeatureExtractor, Vec<Cfg>) {
        let train = graphs(6, Family::Gafgyt, 2);
        let ex = FeatureExtractor::fit(&ExtractorConfig::small(), &train, 0);
        (ex, train)
    }

    #[test]
    fn dimensions_match_config() {
        let (ex, train) = fitted();
        let f = ex.extract(&train[0], 1);
        assert_eq!(f.combined().len(), ex.combined_dim());
        assert_eq!(f.dbl_walks().len(), ex.config().walks_per_labeling);
        assert_eq!(f.lbl_walks().len(), ex.config().walks_per_labeling);
        for w in f.dbl_walks().iter().chain(f.lbl_walks()) {
            assert_eq!(w.len(), ex.per_labeling_dim());
        }
    }

    #[test]
    fn in_vocabulary_samples_have_nonzero_features() {
        let (ex, train) = fitted();
        let f = ex.extract(&train[0], 3);
        assert!(f.combined().iter().any(|&x| x > 0.0));
    }

    #[test]
    fn extraction_is_randomized_across_seeds() {
        let (ex, train) = fitted();
        let a = ex.extract(&train[0], 1);
        let b = ex.extract(&train[0], 2);
        assert_ne!(a.combined(), b.combined());
        // ...but deterministic for a fixed seed.
        let c = ex.extract(&train[0], 1);
        assert_eq!(a, c);
    }

    #[test]
    fn walks_accessor_selects_labeling() {
        let (ex, train) = fitted();
        let f = ex.extract(&train[0], 4);
        assert_eq!(f.walks(Labeling::Density), f.dbl_walks());
        assert_eq!(f.walks(Labeling::Level), f.lbl_walks());
    }

    #[test]
    fn unreachable_blocks_do_not_affect_features() {
        // Append a dead fragment at the binary level and re-extract: the
        // combined vectors must be identical for equal seeds.
        let mut gen = SampleGenerator::new(9);
        let sample = gen.generate(Family::Mirai);
        let (ex, _) = fitted();
        let clean = ex.extract(sample.graph(), 5);

        let mut binary = sample.binary().clone();
        let base = binary.code().len() as u32;
        binary.append_dead_code(&soteria_corpus::asm::dead_fragment(base, 3));
        let dirty = soteria_corpus::disasm::lift(&binary).unwrap();
        let dirty_features = ex.extract(&dirty.cfg, 5);
        assert_eq!(clean, dirty_features);
    }

    #[test]
    fn batch_matches_individual_extraction() {
        let (ex, train) = fitted();
        let refs: Vec<&Cfg> = train.iter().collect();
        let batch = ex.extract_batch(&refs, 7);
        for (i, f) in batch.iter().enumerate() {
            assert_eq!(f, &ex.extract(&train[i], derive_seed(7, i as u64)));
        }
    }

    #[test]
    fn empty_batch_extraction_is_empty() {
        let (ex, _) = fitted();
        assert!(ex
            .extract_batch_isolated::<Cfg>(&[], 0, &ResourceGuards::unlimited())
            .is_empty());
    }

    #[test]
    fn fit_is_deterministic() {
        let train = graphs(4, Family::Tsunami, 3);
        let a = FeatureExtractor::fit(&ExtractorConfig::small(), &train, 11);
        let b = FeatureExtractor::fit(&ExtractorConfig::small(), &train, 11);
        let g = &train[0];
        assert_eq!(a.extract(g, 0), b.extract(g, 0));
    }

    #[test]
    fn different_families_get_different_features() {
        let mut train = graphs(4, Family::Mirai, 5);
        train.extend(graphs(4, Family::Benign, 6));
        let ex = FeatureExtractor::fit(&ExtractorConfig::small(), &train, 1);
        let m = ex.extract(&train[0], 0);
        let b = ex.extract(&train[4], 0);
        assert_ne!(m.combined(), b.combined());
    }
}
