//! Consistent node labeling: density-based (DBL) and level-based (LBL).
//!
//! Both labelings follow the paper's strict tie-break hierarchy so that
//! *any* structural modification of the graph is reflected in the label
//! assignment:
//!
//! * **DBL** orders nodes by density (descending); ties by centrality
//!   factor `CF = betweenness + closeness` (descending); remaining ties by
//!   level (ascending, entry first); remaining ties ("symmetric nodes") by
//!   node index (ascending).
//! * **LBL** orders nodes by BFS level from the entry (ascending — the
//!   entry always gets label 0); ties within a level follow the DBL
//!   mechanism (density, then centrality factor, then index).
//!
//! Labels are dense: every node gets a unique label in `[0, |V|-1]`.

use serde::{Deserialize, Serialize};
use soteria_cfg::{density, CentralityFactors, Cfg};
use std::cmp::Ordering;

/// Which labeling to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Labeling {
    /// Density-based labeling.
    Density,
    /// Level-based labeling.
    Level,
}

impl Labeling {
    /// Both labelings in the order the paper reports them.
    pub const BOTH: [Labeling; 2] = [Labeling::Density, Labeling::Level];
}

impl std::fmt::Display for Labeling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Labeling::Density => "DBL",
            Labeling::Level => "LBL",
        })
    }
}

/// Computes the label of every node under `labeling`.
///
/// Returns `labels[node_index] = label`. Nodes unreachable from the entry
/// sort after all reachable nodes (callers normally pass the reachable
/// subgraph, where this cannot occur).
///
/// # Example
///
/// ```
/// use soteria_cfg::CfgBuilder;
/// use soteria_features::{label_nodes, Labeling};
///
/// # fn main() -> Result<(), soteria_cfg::CfgError> {
/// // entry -> {a, b} -> exit: the entry must get LBL label 0.
/// let mut bld = CfgBuilder::new();
/// let e = bld.add_block(0, 1);
/// let a = bld.add_block(1, 1);
/// let b = bld.add_block(2, 1);
/// let x = bld.add_block(3, 1);
/// bld.add_edge(e, a)?;
/// bld.add_edge(e, b)?;
/// bld.add_edge(a, x)?;
/// bld.add_edge(b, x)?;
/// let g = bld.build(e)?;
///
/// let lbl = label_nodes(&g, Labeling::Level);
/// assert_eq!(lbl[e.index()], 0);
/// # Ok(())
/// # }
/// ```
pub fn label_nodes(cfg: &Cfg, labeling: Labeling) -> Vec<usize> {
    let keys = NodeKeys::compute(cfg);
    label_nodes_with(cfg, labeling, &keys)
}

/// Like [`label_nodes`] but reusing precomputed [`NodeKeys`] — both
/// labelings share the density/centrality/level computation, so callers
/// labeling a graph twice should compute keys once.
pub fn label_nodes_with(cfg: &Cfg, labeling: Labeling, keys: &NodeKeys) -> Vec<usize> {
    let n = cfg.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    match labeling {
        Labeling::Density => order.sort_by(|&a, &b| keys.density_order(a, b)),
        Labeling::Level => order.sort_by(|&a, &b| keys.level_order(a, b)),
    }
    let mut labels = vec![0usize; n];
    for (label, &node) in order.iter().enumerate() {
        labels[node] = label;
    }
    labels
}

/// Per-node sort keys shared by both labelings.
#[derive(Debug, Clone)]
pub struct NodeKeys {
    density: Vec<f64>,
    factor: Vec<f64>,
    /// BFS level; `usize::MAX` for unreachable nodes.
    level: Vec<usize>,
}

impl NodeKeys {
    /// Computes densities, centrality factors, and levels for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let density = density::node_densities(cfg);
        let cf = CentralityFactors::compute(cfg);
        let factor = cfg.block_ids().map(|v| cf.factor(v)).collect();
        let level = cfg
            .levels()
            .into_iter()
            .map(|l| l.unwrap_or(usize::MAX))
            .collect();
        NodeKeys {
            density,
            factor,
            level,
        }
    }

    /// DBL comparison: density desc, factor desc, level asc, index asc.
    fn density_order(&self, a: usize, b: usize) -> Ordering {
        cmp_f64_desc(self.density[a], self.density[b])
            .then_with(|| cmp_f64_desc(self.factor[a], self.factor[b]))
            .then_with(|| self.level[a].cmp(&self.level[b]))
            .then_with(|| a.cmp(&b))
    }

    /// LBL comparison: level asc, then the DBL mechanism.
    fn level_order(&self, a: usize, b: usize) -> Ordering {
        self.level[a]
            .cmp(&self.level[b])
            .then_with(|| cmp_f64_desc(self.density[a], self.density[b]))
            .then_with(|| cmp_f64_desc(self.factor[a], self.factor[b]))
            .then_with(|| a.cmp(&b))
    }
}

/// Descending total order over the non-NaN floats produced by the density
/// and centrality computations.
fn cmp_f64_desc(a: f64, b: f64) -> Ordering {
    b.partial_cmp(&a)
        .expect("density/centrality values are never NaN")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_cfg::{BlockId, CfgBuilder};

    /// The paper's Fig. 4 style example: a diamond with an extra tail.
    ///
    /// ```text
    ///        e
    ///       / \
    ///      a   b
    ///       \ /
    ///        j
    ///        |
    ///        t
    /// ```
    fn fig4() -> (Cfg, [BlockId; 5]) {
        let mut bld = CfgBuilder::new();
        let e = bld.add_block(0, 1);
        let a = bld.add_block(1, 1);
        let b = bld.add_block(2, 1);
        let j = bld.add_block(3, 1);
        let t = bld.add_block(4, 1);
        bld.add_edge(e, a).unwrap();
        bld.add_edge(e, b).unwrap();
        bld.add_edge(a, j).unwrap();
        bld.add_edge(b, j).unwrap();
        bld.add_edge(j, t).unwrap();
        (bld.build(e).unwrap(), [e, a, b, j, t])
    }

    #[test]
    fn labels_are_a_permutation() {
        let (g, _) = fig4();
        for labeling in Labeling::BOTH {
            let mut labels = label_nodes(&g, labeling);
            labels.sort_unstable();
            assert_eq!(labels, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn lbl_gives_entry_label_zero() {
        let (g, [e, ..]) = fig4();
        let labels = label_nodes(&g, Labeling::Level);
        assert_eq!(labels[e.index()], 0);
    }

    #[test]
    fn lbl_orders_by_level_first() {
        let (g, [e, a, b, j, t]) = fig4();
        let labels = label_nodes(&g, Labeling::Level);
        // Levels: e=0; a,b=1; j=2; t=3.
        assert!(labels[e.index()] < labels[a.index()]);
        assert!(labels[a.index()] < labels[j.index()]);
        assert!(labels[b.index()] < labels[j.index()]);
        assert!(labels[j.index()] < labels[t.index()]);
    }

    #[test]
    fn dbl_ranks_most_dense_first() {
        let (g, [e, _a, _b, j, t]) = fig4();
        let labels = label_nodes(&g, Labeling::Density);
        // j has degree 3 like e... e: out 2; j: in 2 + out 1 = 3. e = 2.
        // So j (density 3/5) gets label 0, e (2/5) next among the rest.
        assert_eq!(labels[j.index()], 0);
        assert!(labels[e.index()] < labels[t.index()]);
    }

    #[test]
    fn symmetric_nodes_break_ties_by_index() {
        let (g, [_, a, b, ..]) = fig4();
        // a and b are perfectly symmetric: same density, same centrality,
        // same level. The lower index gets the lower label.
        for labeling in Labeling::BOTH {
            let labels = label_nodes(&g, labeling);
            assert_eq!(labels[b.index()], labels[a.index()] + 1, "{labeling}");
        }
    }

    #[test]
    fn centrality_factor_breaks_density_ties() {
        // Path e -> m -> x -> t: m and x have equal density (2 edges
        // each... e:1, m:2, x:2, t:1 of 3 edges) but m has higher
        // centrality factor? Both are interior; by symmetry of the path
        // their betweenness is equal and closeness is equal, so the tie
        // falls through to level: m (level 1) before x (level 2).
        let mut bld = CfgBuilder::new();
        let e = bld.add_block(0, 1);
        let m = bld.add_block(1, 1);
        let x = bld.add_block(2, 1);
        let t = bld.add_block(3, 1);
        bld.add_edge(e, m).unwrap();
        bld.add_edge(m, x).unwrap();
        bld.add_edge(x, t).unwrap();
        let g = bld.build(e).unwrap();
        let labels = label_nodes(&g, Labeling::Density);
        assert!(labels[m.index()] < labels[x.index()]);
    }

    #[test]
    fn labeling_is_deterministic() {
        let (g, _) = fig4();
        for labeling in Labeling::BOTH {
            assert_eq!(label_nodes(&g, labeling), label_nodes(&g, labeling));
        }
    }

    #[test]
    fn modification_shifts_labels() {
        // The consistency property the paper relies on: grafting a subgraph
        // changes the labels of pre-existing nodes.
        let (g, [_, _, _, j, _]) = fig4();
        let before = label_nodes(&g, Labeling::Density);

        let mut bld = soteria_cfg::CfgBuilder::from(&g);
        // Attach a hub that rivals j's density.
        let hub = bld.add_block(9, 1);
        let l1 = bld.add_block(10, 1);
        let l2 = bld.add_block(11, 1);
        bld.add_edge(j, hub).unwrap();
        bld.add_edge(hub, l1).unwrap();
        bld.add_edge(hub, l2).unwrap();
        let g2 = bld.build(g.entry()).unwrap();
        let after = label_nodes(&g2, Labeling::Density);
        assert_ne!(&before[..], &after[..before.len()]);
    }

    #[test]
    fn shared_keys_match_fresh_computation() {
        let (g, _) = fig4();
        let keys = NodeKeys::compute(&g);
        for labeling in Labeling::BOTH {
            assert_eq!(
                label_nodes_with(&g, labeling, &keys),
                label_nodes(&g, labeling)
            );
        }
    }

    #[test]
    fn single_node_graph_gets_label_zero() {
        let mut bld = CfgBuilder::new();
        let e = bld.add_block(0, 1);
        let g = bld.build(e).unwrap();
        assert_eq!(label_nodes(&g, Labeling::Density), vec![0]);
        assert_eq!(label_nodes(&g, Labeling::Level), vec![0]);
    }
}
