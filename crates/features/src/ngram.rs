//! n-gram extraction over walk label sequences.
//!
//! A gram is a short window (the paper uses n ∈ {2, 3, 4}) of consecutive
//! labels from a random walk. Grams are packed into a fixed-size key for
//! cheap hashing: each label occupies 16 bits (labels are bounded by
//! `|V| - 1` and the paper's graphs stay far below 65,536 nodes).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Maximum label value a gram can carry.
pub const MAX_LABEL: usize = u16::MAX as usize;

/// A packed n-gram of walk labels, `2 ≤ n ≤ 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Gram {
    len: u8,
    packed: u64,
}

impl Gram {
    /// Packs a window of labels.
    ///
    /// # Panics
    ///
    /// Panics if the window length is not in `1..=4` or a label exceeds
    /// [`MAX_LABEL`].
    pub fn new(labels: &[usize]) -> Self {
        assert!(
            (1..=4).contains(&labels.len()),
            "gram length {} not in 1..=4",
            labels.len()
        );
        let mut packed = 0u64;
        for (i, &l) in labels.iter().enumerate() {
            assert!(l <= MAX_LABEL, "label {l} exceeds 16 bits");
            packed |= (l as u64) << (16 * i);
        }
        Gram {
            len: labels.len() as u8,
            packed,
        }
    }

    /// Number of labels in the gram.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the gram is empty (never true for constructed grams).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw packed label bits (16 bits per label, first label in the low
    /// bits) — the fast path's interned key and the binary artifact's
    /// on-disk form.
    pub fn packed(&self) -> u64 {
        self.packed
    }

    /// Rebuilds a gram from its raw parts (the inverse of
    /// [`packed`](Gram::packed) + [`len`](Gram::len), used by the binary
    /// artifact loader).
    ///
    /// # Panics
    ///
    /// Panics if `len` is not in `1..=4` or `packed` carries bits beyond
    /// `len` labels.
    pub fn from_raw(len: u8, packed: u64) -> Self {
        assert!((1..=4).contains(&len), "gram length {len} not in 1..=4");
        assert!(
            len == 4 || packed >> (16 * len as u32) == 0,
            "packed bits beyond gram length"
        );
        Gram { len, packed }
    }

    /// Unpacks the labels.
    pub fn labels(&self) -> Vec<usize> {
        (0..self.len as usize)
            .map(|i| ((self.packed >> (16 * i)) & 0xFFFF) as usize)
            .collect()
    }
}

impl std::fmt::Display for Gram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<String> = self.labels().iter().map(|l| l.to_string()).collect();
        write!(f, "({})", labels.join(","))
    }
}

/// A bag of gram counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GramCounts {
    counts: HashMap<Gram, u32>,
    total: u64,
}

impl GramCounts {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every n-gram of each size in `sizes` from `walk`.
    pub fn add_walk(&mut self, walk: &[usize], sizes: &[usize]) {
        for &n in sizes {
            if walk.len() < n {
                continue;
            }
            for window in walk.windows(n) {
                *self.counts.entry(Gram::new(window)).or_insert(0) += 1;
                self.total += 1;
            }
        }
    }

    /// Merges another bag into this one.
    pub fn merge(&mut self, other: &GramCounts) {
        for (&g, &c) in &other.counts {
            *self.counts.entry(g).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Count of one gram.
    pub fn count(&self, gram: Gram) -> u32 {
        self.counts.get(&gram).copied().unwrap_or(0)
    }

    /// Total grams added (with multiplicity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(gram, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Gram, u32)> + '_ {
        self.counts.iter().map(|(&g, &c)| (g, c))
    }

    /// The `k` most frequent grams, ties broken by gram order for
    /// determinism.
    pub fn top_k(&self, k: usize) -> Vec<Gram> {
        let mut pairs: Vec<(Gram, u32)> = self.iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.into_iter().take(k).map(|(g, _)| g).collect()
    }
}

/// Convenience: count the grams of a whole walk set.
pub fn count_walk_set(walks: &[Vec<usize>], sizes: &[usize]) -> GramCounts {
    let mut counts = GramCounts::new();
    for w in walks {
        counts.add_walk(w, sizes);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_round_trips_labels() {
        for labels in [vec![5], vec![1, 2], vec![3, 1, 4], vec![9, 8, 7, 6]] {
            assert_eq!(Gram::new(&labels).labels(), labels);
            assert_eq!(Gram::new(&labels).len(), labels.len());
        }
    }

    #[test]
    fn grams_of_different_length_never_collide() {
        // [0,0] vs [0,0,0]: same packed bits, different len.
        assert_ne!(Gram::new(&[0, 0]), Gram::new(&[0, 0, 0]));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Gram::new(&[1, 2, 3]).to_string(), "(1,2,3)");
    }

    #[test]
    #[should_panic(expected = "not in 1..=4")]
    fn oversized_gram_panics() {
        let _ = Gram::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "exceeds 16 bits")]
    fn oversized_label_panics() {
        let _ = Gram::new(&[70_000]);
    }

    #[test]
    fn add_walk_counts_all_windows() {
        let mut c = GramCounts::new();
        c.add_walk(&[0, 1, 0, 1], &[2, 3]);
        // 2-grams: (0,1),(1,0),(0,1) ; 3-grams: (0,1,0),(1,0,1).
        assert_eq!(c.count(Gram::new(&[0, 1])), 2);
        assert_eq!(c.count(Gram::new(&[1, 0])), 1);
        assert_eq!(c.count(Gram::new(&[0, 1, 0])), 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 4);
    }

    #[test]
    fn short_walks_skip_large_ngrams() {
        let mut c = GramCounts::new();
        c.add_walk(&[1, 2], &[2, 3, 4]);
        assert_eq!(c.total(), 1); // only the single 2-gram
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = GramCounts::new();
        a.add_walk(&[0, 1], &[2]);
        let mut b = GramCounts::new();
        b.add_walk(&[0, 1, 0], &[2]);
        a.merge(&b);
        assert_eq!(a.count(Gram::new(&[0, 1])), 2);
        assert_eq!(a.count(Gram::new(&[1, 0])), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn top_k_orders_by_frequency_then_gram() {
        let mut c = GramCounts::new();
        c.add_walk(&[0, 1, 0, 1, 0], &[2]); // (0,1)x2, (1,0)x2
        c.add_walk(&[2, 3], &[2]); // (2,3)x1
        let top = c.top_k(2);
        assert_eq!(top.len(), 2);
        // (0,1) and (1,0) tie at 2; gram order puts (1,0) first, whose
        // packed value (label 1 in the low 16 bits) is smaller.
        assert_eq!(top[0], Gram::new(&[1, 0]));
        assert_eq!(top[1], Gram::new(&[0, 1]));
    }

    #[test]
    fn top_k_with_large_k_returns_all() {
        let mut c = GramCounts::new();
        c.add_walk(&[0, 1, 2], &[2]);
        assert_eq!(c.top_k(100).len(), 2);
    }

    #[test]
    fn count_walk_set_merges_walks() {
        let walks = vec![vec![0, 1], vec![0, 1]];
        let c = count_walk_set(&walks, &[2]);
        assert_eq!(c.count(Gram::new(&[0, 1])), 2);
    }
}
