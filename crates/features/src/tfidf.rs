//! TF-IDF weighting over a fixed gram vocabulary.
//!
//! The vocabulary is the top-`k` most frequent grams of the *training*
//! corpus (the paper keeps the 500 most discriminative grams per labeling,
//! selected "based on the frequency of W"). Each sample is then represented
//! by the TF-IDF weight of every vocabulary gram:
//!
//! * `tf(g, s)` — the gram's count in the sample's walks divided by the
//!   sample's total gram count,
//! * `idf(g)` — `ln((1 + N) / (1 + df(g))) + 1` (the smoothed form, so
//!   grams present in every document still carry weight and unseen grams
//!   cannot divide by zero).

use crate::ngram::{Gram, GramCounts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fitted gram vocabulary with IDF weights.
///
/// Serialization stores only the gram list and IDF weights (JSON cannot
/// key maps by struct); the lookup index is rebuilt on deserialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "VocabularyData", into = "VocabularyData")]
pub struct Vocabulary {
    grams: Vec<Gram>,
    index: HashMap<Gram, usize>,
    idf: Vec<f64>,
}

/// The serialized form of [`Vocabulary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct VocabularyData {
    grams: Vec<Gram>,
    idf: Vec<f64>,
}

impl From<VocabularyData> for Vocabulary {
    fn from(d: VocabularyData) -> Self {
        let index = d.grams.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        Vocabulary {
            grams: d.grams,
            index,
            idf: d.idf,
        }
    }
}

impl From<Vocabulary> for VocabularyData {
    fn from(v: Vocabulary) -> Self {
        VocabularyData {
            grams: v.grams,
            idf: v.idf,
        }
    }
}

impl Vocabulary {
    /// Fits a vocabulary on training documents (one [`GramCounts`] per
    /// sample): keeps the `k` grams with the highest total frequency and
    /// computes their smoothed IDF.
    ///
    /// # Example
    ///
    /// ```
    /// use soteria_features::ngram::GramCounts;
    /// use soteria_features::Vocabulary;
    ///
    /// let mut doc = GramCounts::new();
    /// doc.add_walk(&[0, 1, 0, 1], &[2]);
    /// let vocab = Vocabulary::fit(&[doc.clone()], 10);
    /// let v = vocab.transform(&doc);
    /// assert_eq!(v.len(), vocab.len());
    /// assert!(v.iter().any(|&x| x > 0.0));
    /// ```
    pub fn fit(documents: &[GramCounts], k: usize) -> Self {
        let mut corpus = GramCounts::new();
        for d in documents {
            corpus.merge(d);
        }
        Self::from_grams(corpus.top_k(k), documents)
    }

    /// Fits a *class-stratified* vocabulary: the budget `k` is divided
    /// evenly over the classes, each class contributes its own most
    /// frequent grams, and any remaining budget is filled from the global
    /// ranking. This is the paper's "top discriminative grams" selection:
    /// a purely global ranking lets the majority family crowd out every
    /// other class's characteristic grams.
    ///
    /// # Panics
    ///
    /// Panics if `documents` and `labels` lengths differ.
    pub fn fit_stratified(
        documents: &[GramCounts],
        labels: &[usize],
        classes: usize,
        k: usize,
    ) -> Self {
        assert_eq!(documents.len(), labels.len(), "documents/labels mismatch");
        let per_class = (k / classes.max(1)).max(1);
        let mut selected: Vec<Gram> = Vec::with_capacity(k);
        let mut seen: std::collections::HashSet<Gram> = std::collections::HashSet::new();
        for class in 0..classes {
            let mut class_corpus = GramCounts::new();
            for (d, &l) in documents.iter().zip(labels) {
                if l == class {
                    class_corpus.merge(d);
                }
            }
            for g in class_corpus.top_k(per_class) {
                if seen.insert(g) {
                    selected.push(g);
                }
            }
        }
        // Fill any remaining budget from the global ranking.
        if selected.len() < k {
            let mut corpus = GramCounts::new();
            for d in documents {
                corpus.merge(d);
            }
            for g in corpus.top_k(k * 2) {
                if selected.len() >= k {
                    break;
                }
                if seen.insert(g) {
                    selected.push(g);
                }
            }
        }
        Self::from_grams(selected, documents)
    }

    /// Rebuilds a fitted vocabulary from its gram list and IDF weights
    /// (the binary artifact loader's constructor — the lookup index is the
    /// only thing recomputed).
    ///
    /// # Panics
    ///
    /// Panics if `grams` and `idf` lengths differ.
    pub fn from_parts(grams: Vec<Gram>, idf: Vec<f64>) -> Self {
        assert_eq!(grams.len(), idf.len(), "grams/idf length mismatch");
        let index = grams.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        Vocabulary { grams, index, idf }
    }

    fn from_grams(grams: Vec<Gram>, documents: &[GramCounts]) -> Self {
        let index: HashMap<Gram, usize> = grams.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let n = documents.len() as f64;
        let mut df = vec![0usize; grams.len()];
        for d in documents {
            for (g, _) in d.iter() {
                if let Some(&i) = index.get(&g) {
                    df[i] += 1;
                }
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        Vocabulary { grams, index, idf }
    }

    /// Number of features (≤ the `k` passed to [`fit`](Vocabulary::fit) if
    /// the corpus had fewer distinct grams).
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// The vocabulary grams in feature order.
    pub fn grams(&self) -> &[Gram] {
        &self.grams
    }

    /// IDF weight of feature `i`.
    pub fn idf(&self, i: usize) -> f64 {
        self.idf[i]
    }

    /// All IDF weights in feature order (parallel to
    /// [`grams`](Vocabulary::grams)).
    pub fn idf_weights(&self) -> &[f64] {
        &self.idf
    }

    /// Transforms a sample's gram counts into its TF-IDF vector.
    pub fn transform(&self, sample: &GramCounts) -> Vec<f64> {
        let mut out = vec![0.0; self.grams.len()];
        let total = sample.total();
        if total == 0 {
            return out;
        }
        for (g, c) in sample.iter() {
            if let Some(&i) = self.index.get(&g) {
                let tf = f64::from(c) / total as f64;
                out[i] = tf * self.idf[i];
            }
        }
        out
    }

    /// Transforms a sample and pads/truncates to exactly `dim` entries
    /// (vocabularies fitted on tiny corpora can come up short of `k`; the
    /// fixed-width models need a stable input size).
    pub fn transform_fixed(&self, sample: &GramCounts, dim: usize) -> Vec<f64> {
        let mut v = self.transform(sample);
        v.resize(dim, 0.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(walk: &[usize]) -> GramCounts {
        let mut c = GramCounts::new();
        c.add_walk(walk, &[2]);
        c
    }

    #[test]
    fn fit_keeps_most_frequent_grams() {
        let docs = vec![doc(&[0, 1, 0, 1, 0]), doc(&[0, 1, 2])];
        let vocab = Vocabulary::fit(&docs, 2);
        assert_eq!(vocab.len(), 2);
        assert!(vocab.grams().contains(&Gram::new(&[0, 1])));
    }

    #[test]
    fn idf_downweights_ubiquitous_grams() {
        // (0,1) appears in both docs; (2,3) in one.
        let docs = vec![doc(&[0, 1, 2, 3]), doc(&[0, 1])];
        let vocab = Vocabulary::fit(&docs, 10);
        let i01 = vocab
            .grams()
            .iter()
            .position(|&g| g == Gram::new(&[0, 1]))
            .unwrap();
        let i23 = vocab
            .grams()
            .iter()
            .position(|&g| g == Gram::new(&[2, 3]))
            .unwrap();
        assert!(vocab.idf(i23) > vocab.idf(i01));
    }

    #[test]
    fn transform_is_zero_for_unseen_grams() {
        let docs = vec![doc(&[0, 1, 2])];
        let vocab = Vocabulary::fit(&docs, 10);
        let v = vocab.transform(&doc(&[7, 8]));
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transform_of_empty_sample_is_zero() {
        let docs = vec![doc(&[0, 1])];
        let vocab = Vocabulary::fit(&docs, 10);
        let v = vocab.transform(&GramCounts::new());
        assert_eq!(v, vec![0.0]);
    }

    #[test]
    fn tf_scales_with_relative_frequency() {
        let docs = vec![doc(&[0, 1, 0, 1, 0, 2])];
        let vocab = Vocabulary::fit(&docs, 10);
        let v = vocab.transform(&docs[0]);
        let at = |g: Gram| {
            vocab
                .grams()
                .iter()
                .position(|&x| x == g)
                .map(|i| v[i])
                .unwrap()
        };
        // (0,1) occurs twice, (0,2) once, same IDF (single doc).
        assert!(at(Gram::new(&[0, 1])) > at(Gram::new(&[0, 2])));
    }

    #[test]
    fn transform_fixed_pads_and_truncates() {
        let docs = vec![doc(&[0, 1])];
        let vocab = Vocabulary::fit(&docs, 10);
        assert_eq!(vocab.transform_fixed(&docs[0], 5).len(), 5);
        assert_eq!(vocab.transform_fixed(&docs[0], 1).len(), 1);
    }

    #[test]
    fn fit_on_empty_corpus_is_empty() {
        let vocab = Vocabulary::fit(&[], 10);
        assert!(vocab.is_empty());
        assert_eq!(vocab.transform(&GramCounts::new()), Vec::<f64>::new());
    }
}
