//! Offline shim for `crossbeam`: the `thread::scope` API implemented on
//! `std::thread::scope` (std has had scoped threads since 1.63).
//!
//! Differences from upstream worth knowing:
//!
//! * crossbeam joins all threads and returns `Err` if any panicked;
//!   std's scope re-raises the panic instead. Every caller in this
//!   workspace immediately `.expect()`s the result, so the observable
//!   behavior — abort the process with the panic message — is the same.
//! * The closure passed to `spawn` receives the scope again (crossbeam's
//!   nested-spawn affordance), which this shim also provides.

pub mod thread {
    use std::any::Any;

    /// A scope handle; lets spawned threads spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    ///
    /// Unlike upstream, a panicking child propagates its panic here rather
    /// than surfacing as `Err` — callers that `.expect()` the result see
    /// identical process behavior.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        crate::thread::scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let total = std::sync::atomic::AtomicU64::new(0);
        crate::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_the_thread_result() {
        let r = crate::thread::scope(|s| s.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(r, 42);
    }
}
