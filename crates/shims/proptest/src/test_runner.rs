//! The deterministic case runner behind the `proptest!` macro.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; the shim trades a little
        // coverage for suite latency (generation here is not shrunk, so
        // failures replay instantly either way).
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
pub enum TestCaseError {
    /// A `prop_assert*` failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runs `config.cases` successful cases of `f`, panicking on the first
/// failure. Case `i` of test `name` always sees the same RNG stream.
pub fn run(
    config: ProptestConfig,
    name: &str,
    f: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let attempt_limit = config.cases as u64 * 10 + 100;
    while passed < config.cases {
        attempt += 1;
        if attempt > attempt_limit {
            panic!(
                "proptest `{name}`: gave up after {attempt_limit} attempts \
                 ({passed}/{} cases passed, rest rejected by prop_assume!)",
                config.cases
            );
        }
        let mut rng = TestRng::seed_from_u64(base ^ attempt);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case #{attempt} (seed {base:#x} ^ {attempt}):\n{msg}")
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runner_is_deterministic() {
        let mut seen_a = Vec::new();
        run(ProptestConfig::with_cases(8), "det", |rng| {
            seen_a.push((0u64..1_000_000).generate(rng));
            Ok(())
        });
        let mut seen_b = Vec::new();
        run(ProptestConfig::with_cases(8), "det", |rng| {
            seen_b.push((0u64..1_000_000).generate(rng));
            Ok(())
        });
        assert_eq!(seen_a, seen_b);
        assert!(seen_a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn rejection_storm_gives_up() {
        run(ProptestConfig::with_cases(4), "reject", |_| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(ProptestConfig::with_cases(4), "fail", |_| {
            Err(TestCaseError::fail("boom".into()))
        });
    }
}
