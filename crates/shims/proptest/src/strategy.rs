//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, [`Just`], and the `prop_map`/`prop_flat_map` combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// The shim's strategies generate directly from a deterministic RNG; there
/// is no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe subset of [`Strategy`] backing [`BoxedStrategy`].
trait StrategyObject {
    type Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// An inclusive length range for collection strategies, converted from
/// `usize`, `Range<usize>`, or `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeBounds {
    /// Smallest permitted length.
    pub min: usize,
    /// Largest permitted length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeBounds {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range {r:?}");
        SizeBounds {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeBounds {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.end() >= r.start(), "empty size range {r:?}");
        SizeBounds {
            min: *r.start(),
            max: *r.end(),
        }
    }
}
