//! Offline shim for `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `collection::vec`, `sample::subsequence`,
//! [`any`], and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! its inputs (via the pattern bindings' `Debug` where the assertion
//! message includes them) and the deterministic case number, which is
//! enough to replay it. Generation is fully deterministic — the RNG for
//! case `i` of test `t` is seeded from `hash(t) ^ i` — so failures
//! reproduce across runs and machines.

pub mod strategy;
pub mod test_runner;

use rand::Rng;
use std::marker::PhantomData;

/// Strategy for "any value of `T`" (uniform over the type's range).
pub struct AnyStrategy<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: rand::StandardSample>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: rand::StandardSample + std::fmt::Debug> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        rng.gen()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeBounds, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeBounds,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::subsequence`).
pub mod sample {
    use crate::strategy::{SizeBounds, Strategy};
    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// Strategy choosing an order-preserving subsequence of `values` whose
    /// length is drawn from `size` (clamped to `values.len()`).
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeBounds>,
    ) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeBounds,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.size.max.min(self.values.len());
            let min = self.size.min.min(max);
            let len = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            let mut indices: Vec<usize> = (0..self.values.len()).collect();
            indices.shuffle(rng);
            indices.truncate(len);
            indices.sort_unstable();
            indices.iter().map(|&i| self.values[i].clone()).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        {
                            $body
                        }
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Discards the current case (without counting it) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
