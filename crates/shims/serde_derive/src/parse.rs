//! A minimal item parser over `proc_macro::TokenTree`.
//!
//! Parses just enough of a `struct`/`enum` item for the derives: names,
//! field lists, variant shapes, and the `#[serde(...)]` attributes the
//! shim supports. Everything the derives do not understand fails the
//! build with a clear message rather than generating wrong code.

use crate::{bail, group_tokens};
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One field of a struct or struct variant.
pub struct Field {
    /// Field name.
    pub name: String,
    /// `#[serde(skip)]`: omit on write, `Default` on read.
    pub skip: bool,
    /// `#[serde(default)]`: `Default` when absent on read.
    pub default: bool,
}

/// The shape of the derived item.
pub enum Shape {
    /// `struct S { .. }`
    NamedStruct {
        /// Fields in declaration order.
        fields: Vec<Field>,
    },
    /// `struct S(..);`
    TupleStruct {
        /// Number of tuple elements.
        arity: usize,
    },
    /// `struct S;`
    UnitStruct,
    /// `enum E { .. }`
    Enum {
        /// Variants in declaration order.
        variants: Vec<Variant>,
    },
}

/// One enum variant.
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Payload shape.
    pub kind: VariantKind,
}

/// Payload shape of an enum variant.
pub enum VariantKind {
    /// `Name`
    Unit,
    /// `Name(..)` with the element count.
    Tuple(usize),
    /// `Name { .. }`
    Named(Vec<Field>),
}

/// A parsed derive input.
pub struct Input {
    /// Type name.
    pub name: String,
    /// `#[serde(from = "T")]` proxy type, if any.
    pub from_ty: Option<String>,
    /// `#[serde(into = "T")]` proxy type, if any.
    pub into_ty: Option<String>,
    /// Item shape.
    pub shape: Shape,
}

/// Serde attributes collected from one attribute site.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(toks: Vec<TokenTree>) -> Self {
        Cursor { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.is_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, ch: char, context: &str) {
        if !self.eat_punct(ch) {
            bail(&format!("expected `{ch}` {context}"));
        }
    }

    fn ident(&mut self, context: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => bail(&format!("expected identifier {context}, found {other:?}")),
        }
    }

    /// Consumes leading attributes, merging any `#[serde(...)]` contents.
    fn attrs(&mut self) -> SerdeAttrs {
        let mut out = SerdeAttrs::default();
        while self.is_punct('#') {
            self.pos += 1;
            let Some(tree) = self.next() else {
                bail("dangling `#`");
            };
            let Some(tokens) = group_tokens(&tree, Delimiter::Bracket) else {
                bail("expected `[...]` after `#`");
            };
            parse_attr(&tokens, &mut out);
        }
        out
    }

    /// Consumes `pub`, `pub(crate)`, etc.
    fn visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Skips a type (or expression) until a top-level comma, tracking
    /// `<...>` nesting so `HashMap<K, V>` does not split early.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(tree) = self.peek() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Parses the contents of one `#[...]` attribute into `out` (non-serde
/// attributes are ignored).
fn parse_attr(tokens: &[TokenTree], out: &mut SerdeAttrs) {
    let mut c = Cursor::new(tokens.to_vec());
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return, // e.g. `#[doc = "..."]` styles we don't care about
    };
    if name != "serde" {
        return;
    }
    let Some(tree) = c.next() else {
        bail("bare `#[serde]` attribute");
    };
    let Some(inner) = group_tokens(&tree, Delimiter::Parenthesis) else {
        bail("expected `#[serde(...)]`");
    };
    let mut c = Cursor::new(inner);
    while !c.at_end() {
        let key = c.ident("in #[serde(...)]");
        match key.as_str() {
            "skip" | "skip_serializing" | "skip_deserializing" => out.skip = true,
            "default" => out.default = true,
            "from" | "into" => {
                c.expect_punct('=', "after from/into");
                let ty = match c.next() {
                    Some(TokenTree::Literal(l)) => {
                        let s = l.to_string();
                        s.trim_matches('"').to_string()
                    }
                    other => bail(&format!("expected string literal, found {other:?}")),
                };
                if key == "from" {
                    out.from_ty = Some(ty);
                } else {
                    out.into_ty = Some(ty);
                }
            }
            other => bail(&format!(
                "unsupported serde attribute `{other}` (shim supports skip/default/from/into)"
            )),
        }
        if !c.eat_punct(',') {
            break;
        }
    }
}

/// Parses `name: Type` fields from the tokens of a brace group.
fn named_fields(tokens: Vec<TokenTree>) -> Vec<Field> {
    let mut c = Cursor::new(tokens);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.attrs();
        if c.at_end() {
            break;
        }
        c.visibility();
        let name = c.ident("as field name");
        c.expect_punct(':', "after field name");
        c.skip_until_comma();
        c.eat_punct(',');
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

/// Counts the elements of a tuple struct/variant from its paren-group
/// tokens.
fn tuple_arity(tokens: Vec<TokenTree>) -> usize {
    let mut c = Cursor::new(tokens);
    let mut arity = 0;
    while !c.at_end() {
        let attrs = c.attrs();
        if attrs.skip || attrs.default {
            bail("serde field attributes on tuple fields are not supported by the shim");
        }
        if c.at_end() {
            break;
        }
        c.visibility();
        c.skip_until_comma();
        arity += 1;
        c.eat_punct(',');
    }
    arity
}

fn variants(tokens: Vec<TokenTree>) -> Vec<Variant> {
    let mut c = Cursor::new(tokens);
    let mut out = Vec::new();
    while !c.at_end() {
        let _ = c.attrs();
        if c.at_end() {
            break;
        }
        let name = c.ident("as variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let toks = g.stream().into_iter().collect();
                c.pos += 1;
                VariantKind::Tuple(tuple_arity(toks))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let toks = g.stream().into_iter().collect();
                c.pos += 1;
                VariantKind::Named(named_fields(toks))
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip the expression.
            c.skip_until_comma();
        }
        c.eat_punct(',');
        out.push(Variant { name, kind });
    }
    out
}

impl Input {
    /// Parses a derive input item.
    pub fn parse(input: TokenStream) -> Input {
        let mut c = Cursor::new(input.into_iter().collect());
        let attrs = c.attrs();
        c.visibility();
        let kind = c.ident("(`struct` or `enum`)");
        let name = c.ident("as type name");
        if c.is_punct('<') {
            bail(&format!(
                "generic type `{name}` is not supported by the serde shim derives"
            ));
        }
        let shape = match kind.as_str() {
            "struct" => match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::NamedStruct {
                        fields: named_fields(g.stream().into_iter().collect()),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::TupleStruct {
                        arity: tuple_arity(g.stream().into_iter().collect()),
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
                other => bail(&format!("unexpected token after struct name: {other:?}")),
            },
            "enum" => match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                    variants: variants(g.stream().into_iter().collect()),
                },
                other => bail(&format!("unexpected token after enum name: {other:?}")),
            },
            other => bail(&format!("cannot derive serde for `{other}` items")),
        };
        if (attrs.from_ty.is_some()) != (attrs.into_ty.is_some()) {
            // Allow one-sided use: from only matters to Deserialize and
            // into only to Serialize, mirroring serde.
        }
        Input {
            name,
            from_ty: attrs.from_ty,
            into_ty: attrs.into_ty,
            shape,
        }
    }
}
