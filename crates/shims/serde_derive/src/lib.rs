//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the `serde` shim's value-tree model, parsing the item with a small
//! hand-written cursor over `proc_macro::TokenTree` (the build
//! environment has no `syn`/`quote`).
//!
//! Supported item shapes — exactly what this workspace declares:
//!
//! * named-field structs (→ JSON objects),
//! * tuple structs (newtype → inner value; wider → arrays),
//! * unit structs (→ `null`),
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   serde's default),
//! * field attribute `#[serde(skip)]` (omitted on write, `Default` on
//!   read) and `#[serde(default)]` (`Default` when missing on read),
//! * container attribute `#[serde(from = "T", into = "T")]`.
//!
//! Generics and lifetimes are intentionally rejected with a compile
//! error: nothing in the workspace derives serde on a generic type, and
//! failing loudly beats miscompiling quietly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Input, Shape, VariantKind};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Input::parse(input);
    let body = match (&item.into_ty, &item.shape) {
        (Some(proxy), _) => format!(
            "let __proxy: {proxy} = <{proxy} as ::core::convert::From<Self>>::from(self.clone());\n\
             ::serde::Serialize::to_value(&__proxy)"
        ),
        (None, Shape::NamedStruct { fields }) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        (None, Shape::TupleStruct { arity: 1 }) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        (None, Shape::TupleStruct { arity }) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        (None, Shape::UnitStruct) => "::serde::Value::Null".to_string(),
        (None, Shape::Enum { variants }) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &item.name;
                let name = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{ty}::{name} => ::serde::Value::Str(\"{name}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{ty}::{name}({binds}) => ::serde::Value::Object(vec![(\"{name}\".to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{name} {{ {binds} }} => ::serde::Value::Object(vec![(\"{name}\".to_string(), ::serde::Value::Object(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        item.name
    );
    out.parse().expect("derive(Serialize) generated invalid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Input::parse(input);
    let ty = &item.name;
    let body = match (&item.from_ty, &item.shape) {
        (Some(proxy), _) => format!(
            "let __proxy: {proxy} = ::serde::Deserialize::from_value(__v)?;\n\
             Ok(<Self as ::core::convert::From<{proxy}>>::from(__proxy))"
        ),
        (None, Shape::NamedStruct { fields }) => {
            format!(
                "Ok({ty} {{\n{}}})",
                named_field_inits(ty, fields, "__v")
            )
        }
        (None, Shape::TupleStruct { arity: 1 }) => {
            format!("Ok({ty}(::serde::Deserialize::from_value(__v)?))")
        }
        (None, Shape::TupleStruct { arity }) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::__private::elements(__v, \"{ty}\", {arity})?;\n\
                 Ok({ty}({}))",
                items.join(", ")
            )
        }
        (None, Shape::UnitStruct) => format!("Ok({ty})"),
        (None, Shape::Enum { variants }) => {
            let mut arms = String::new();
            for v in variants {
                let name = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "(\"{name}\", None) => Ok({ty}::{name}),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "(\"{name}\", Some(__payload)) => Ok({ty}::{name}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "(\"{name}\", Some(__payload)) => {{\n\
                                 let __items = ::serde::__private::elements(__payload, \"{ty}::{name}\", {arity})?;\n\
                                 Ok({ty}::{name}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        arms.push_str(&format!(
                            "(\"{name}\", Some(__payload)) => Ok({ty}::{name} {{\n{}}}),\n",
                            named_field_inits(&format!("{ty}::{name}"), fields, "__payload")
                        ));
                    }
                }
            }
            format!(
                "match ::serde::__private::variant(__v, \"{ty}\")? {{\n\
                     {arms}\
                     (__other, _) => Err(::serde::__private::unknown_variant(\"{ty}\", __other)),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("derive(Deserialize) generated invalid Rust")
}

/// `field: <expr>,` initializers for a named-field composite.
fn named_field_inits(ty: &str, fields: &[parse::Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
        } else if f.default {
            out.push_str(&format!(
                "{0}: match ::serde::Value::get({source}, \"{0}\") {{\n\
                     Some(__inner) => ::serde::Deserialize::from_value(__inner)?,\n\
                     None => ::core::default::Default::default(),\n\
                 }},\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: ::serde::__private::field({source}, \"{ty}\", \"{0}\")?,\n",
                f.name
            ));
        }
    }
    out
}

/// Panics with a location-free diagnostic; proc-macro panics surface as
/// compile errors on the derive site.
pub(crate) fn bail(msg: &str) -> ! {
    panic!("serde_derive shim: {msg}")
}

/// Returns the tokens inside a group if the tree is one with the given
/// delimiter.
pub(crate) fn group_tokens(tree: &TokenTree, delim: Delimiter) -> Option<Vec<TokenTree>> {
    match tree {
        TokenTree::Group(g) if g.delimiter() == delim => Some(g.stream().into_iter().collect()),
        _ => None,
    }
}
