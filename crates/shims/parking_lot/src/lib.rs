//! Offline shim for `parking_lot`: [`Mutex`], [`RwLock`], and [`Once`]
//! with parking_lot's ergonomics (no poisoning, guards returned directly)
//! implemented over the std primitives.
//!
//! Poison errors are swallowed by taking the inner guard from
//! `PoisonError` — parking_lot's documented behavior is that a panicking
//! holder simply releases the lock, and that is what consumers of this
//! shim rely on.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One-time initialization.
#[derive(Debug)]
pub struct Once {
    inner: sync::Once,
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Self {
        Once {
            inner: sync::Once::new(),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, value still accessible.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(3);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 6);
        drop((a, b));
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }
}
