//! Offline shim for `criterion`.
//!
//! A minimal wall-clock harness with criterion's API shape: per-benchmark
//! warmup, a fixed number of timed samples, and a mean/min/max report on
//! stdout. No statistics beyond that, no HTML report, no comparison with
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark harness handle passed to every bench function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards its trailing args to the
        // bench binary; mirror criterion's substring filtering.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.filter, &id.0, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(&self.criterion.filter, &full, self.sample_size, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter` shaped.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one<F>(filter: &Option<String>, id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    // One untimed warmup sample, then `samples` timed ones.
    let mut warmup = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut warmup);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if times.is_empty() {
        println!("{id:<48} (no iterations)");
        return;
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<48} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        times.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles bench functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut calls = 0u32;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| calls += 1);
        });
        // warmup + DEFAULT_SAMPLE_SIZE timed samples, 1 iter each
        assert_eq!(calls, 1 + DEFAULT_SAMPLE_SIZE as u32);
    }

    #[test]
    fn groups_honor_sample_size_and_filter() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
        };
        let mut wanted = 0u32;
        let mut skipped = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("wanted", 1), &5u32, |b, five| {
            b.iter(|| wanted += *five);
        });
        g.bench_function(BenchmarkId::from_parameter("other"), |b| {
            b.iter(|| skipped += 1);
        });
        g.finish();
        assert_eq!(wanted, 5 * 4); // warmup + 3 samples
        assert_eq!(skipped, 0);
    }
}
