//! Offline shim for `serde_json`: [`to_string`], [`to_string_pretty`],
//! and [`from_str`] over the `serde` shim's [`Value`] tree.
//!
//! Emission rules match serde_json where observable: floats print their
//! shortest round-trip representation (with a `.0` suffix when integral),
//! non-finite floats become `null`, strings escape control characters,
//! object key order is preserved.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value of `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Parses JSON text into an untyped [`Value`].
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    from_str::<Value>(s)
}

// ---------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------

fn emit(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => emit_float(*f, out),
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                emit(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn emit_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display prints the shortest decimal that round-trips; add
    // `.0` for integral values so the token reads back as a float-y
    // number (serde_json does the same).
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string(&-42i32).unwrap(), "-42");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        for &x in &[0.1f32, 2.7182817f32, f32::MIN_POSITIVE] {
            let back: f32 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1}\u{1F600}";
        let json = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // Surrogate-pair escapes parse too.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn nested_collections_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u8, 2u8), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u8, u8)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<String>("\"\u{9}\"").is_err());
    }

    #[test]
    fn untyped_value_access() {
        let v = from_str_value("{\"a\": [1, 2.5], \"b\": null}").unwrap();
        assert_eq!(v.get("a").and_then(|a| match a {
            serde::Value::Array(items) => Some(items.len()),
            _ => None,
        }), Some(2));
        assert_eq!(v.get("b"), Some(&serde::Value::Null));
    }
}
