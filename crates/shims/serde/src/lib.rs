//! Offline shim for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this shim trades that
//! generality for a simple value-tree model that is entirely sufficient
//! for the workspace's use (JSON persistence of owned data):
//!
//! * [`Serialize`] renders a type into a [`Value`] tree;
//! * [`Deserialize`] rebuilds a type from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generates both, honoring `#[serde(skip)]` on fields and
//!   `#[serde(from = "T", into = "T")]` on containers;
//! * the `serde_json` shim converts [`Value`] to and from JSON text.
//!
//! The derived representations mirror serde's defaults so persisted JSON
//! looks the way readers expect: structs are objects, newtype structs are
//! their inner value, unit enum variants are strings, and data-carrying
//! variants are single-key objects.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the shim's data model).
///
/// Object fields keep insertion order so emitted JSON is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key-value map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error (shared with the `serde_json`
/// shim).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} overflows i64")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} is negative")))?,
                    Value::UInt(u) => *u,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                // JSON has no NaN/infinity; follow serde_json and emit null.
                if x.is_finite() {
                    Value::Float(x)
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!("expected single-char string, found {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// In real serde, `DeserializeOwned` frees callers from naming the
    /// deserializer lifetime; the shim's [`Deserialize`](crate::Deserialize)
    /// has no lifetime, so this is a plain alias trait.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected {}-tuple, found array of {}",
                        ARITY,
                        items.len()
                    ))),
                    other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support functions called by `serde_derive`-generated code. Not part of
/// the public API surface the workspace programs against.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Extracts and deserializes a named field of a struct object.
    pub fn field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(_) => match v.get(name) {
                Some(inner) => T::from_value(inner)
                    .map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
                None => Err(Error::custom(format!("{ty}: missing field `{name}`"))),
            },
            other => Err(Error::custom(format!(
                "{ty}: expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Borrows the elements of an array value, checking arity.
    pub fn elements<'a>(v: &'a Value, ty: &str, arity: usize) -> Result<&'a [Value], Error> {
        match v {
            Value::Array(items) if items.len() == arity => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "{ty}: expected {arity} elements, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "{ty}: expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Splits an externally tagged enum value into `(variant, payload)`.
    /// Unit variants are plain strings (payload `None`); data variants are
    /// single-key objects.
    pub fn variant<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
        match v {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Object(pairs) if pairs.len() == 1 => {
                Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
            }
            other => Err(Error::custom(format!(
                "{ty}: expected variant string or single-key object, found {}",
                other.kind()
            ))),
        }
    }

    /// Error for an unknown enum variant name.
    pub fn unknown_variant(ty: &str, got: &str) -> Error {
        Error::custom(format!("{ty}: unknown variant `{got}`"))
    }

    /// Error for a variant that got the wrong payload shape.
    pub fn bad_payload(ty: &str, variant: &str) -> Error {
        Error::custom(format!("{ty}: wrong payload for variant `{variant}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_and_range_check() {
        let v = 300u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 300);
        assert!(u8::from_value(&v).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(i32::from_value(&Value::Int(-5)).unwrap(), -5);
        // A u64 beyond i64::MAX survives.
        let big = u64::MAX.to_value();
        assert_eq!(u64::from_value(&big).unwrap(), u64::MAX);
    }

    #[test]
    fn floats_accept_integers_and_null() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(f32::from_value(&Value::Null).unwrap().is_nan());
        assert_eq!(f32::INFINITY.to_value(), Value::Null);
    }

    #[test]
    fn options_map_null() {
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::Int(4)).unwrap(), Some(4));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn arrays_enforce_length() {
        let v = vec![1u8, 2, 3].to_value();
        assert_eq!(<[u8; 3]>::from_value(&v).unwrap(), [1, 2, 3]);
        assert!(<[u8; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn tuples_round_trip() {
        let v = (1u8, 2u32).to_value();
        assert_eq!(<(u8, u32)>::from_value(&v).unwrap(), (1, 2));
        assert!(<(u8, u32, u8)>::from_value(&v).is_err());
    }

    #[test]
    fn string_keyed_maps_round_trip_as_objects() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("deadline".to_owned(), 3usize);
        map.insert("overload".to_owned(), 1);
        let v = map.to_value();
        assert!(matches!(&v, Value::Object(pairs) if pairs.len() == 2));
        let back = std::collections::BTreeMap::<String, usize>::from_value(&v).unwrap();
        assert_eq!(back, map);
        assert!(std::collections::BTreeMap::<String, usize>::from_value(&Value::Int(1)).is_err());
    }
}
