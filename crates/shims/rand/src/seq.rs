//! Sequence-related randomness: the `SliceRandom` subset.

use crate::{Rng, RngCore};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut Lcg::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_covers_all_elements() {
        let v = [1, 2, 3, 4];
        let mut rng = Lcg::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
