//! Offline shim for the `rand` crate.
//!
//! The build environment resolves crates without network access, so this
//! workspace vendors the subset of `rand`'s API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_bool`, `gen_range`, `fill`),
//! [`SeedableRng`] (with the SplitMix64-based `seed_from_u64` the real
//! crate documents), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Algorithms follow the published `rand` 0.8 behavior where it matters
//! for quality (53-bit float generation, Fisher–Yates shuffling); exact
//! stream-compatibility with upstream is *not* a goal — every consumer and
//! producer of randomness in this workspace goes through this shim, so
//! determinism only has to hold internally.

pub mod seq;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like `rand` 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna); rand uses this to spread entropy over
            // the full seed so nearby u64 seeds give unrelated streams.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1), as in rand's `Standard`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges (and range-likes) that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

macro_rules! impl_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);
impl_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Uniform integer in `[0, span)` via widening multiply (Lemire); unbiased
/// enough for every use in this workspace and branch-free in the common
/// case.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply maps the 64-bit output onto [0, span) almost
    // uniformly; one rejection round removes the residual bias.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing generator methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as StandardSample>::sample_standard(self) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = Counter(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Counter(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
