//! Offline shim for `rand_chacha`: [`ChaCha8Rng`], a real ChaCha stream
//! cipher with 8 double-rounds driving the `rand` shim's traits.
//!
//! The keystream follows RFC 8439's state layout (constants, 256-bit key,
//! 64-bit block counter, 64-bit stream id) with the round count dropped
//! from 20 to 8, matching the construction `rand_chacha` uses. Exact
//! bit-compatibility with upstream's output stream is not required by this
//! workspace (all randomness flows through these shims), but the generator
//! is a faithful ChaCha8 — high-quality, splittable, and deterministic per
//! seed.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Keystream blocks generated per refill. Batching lets the block function
/// run on `LANES` independent counters at once — each 32-bit state word
/// becomes a small lane vector the compiler turns into SIMD — without
/// changing a single byte of the keystream (block `c` is a pure function
/// of `(key, stream, c)` regardless of how many siblings are computed
/// alongside it).
const LANES: usize = 4;

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), set once from the seed.
    key: [u32; 8],
    /// 64-bit block counter: the next block to generate (blocks are
    /// generated `LANES` at a time, so after a refill this is the counter
    /// of the first block *beyond* the buffer).
    counter: u64,
    /// 64-bit stream id (zero unless `set_stream` is called).
    stream: u64,
    /// `LANES` consecutive 16-word output blocks, in counter order.
    buffer: [u32; 16 * LANES],
    /// Next unread word in `buffer` (`16 * LANES` = exhausted).
    index: usize,
}

/// One lane-parallel quarter round: word indices `a..d` of `LANES`
/// independent block states, each held as a `[u32; LANES]` lane vector.
#[inline(always)]
fn quarter_round(state: &mut [[u32; LANES]; 16], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..LANES {
        state[a][l] = state[a][l].wrapping_add(state[b][l]);
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_left(16);
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_left(12);
        state[a][l] = state[a][l].wrapping_add(state[b][l]);
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_left(8);
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_left(7);
    }
}

/// A snapshot of a [`ChaCha8Rng`]'s position, sufficient to reconstruct
/// the generator exactly (checkpoint/resume). The output buffer is not
/// captured: it is a pure function of `(key, stream, counter - 1)` and is
/// regenerated on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaChaState {
    /// Key words, set once from the seed.
    pub key: [u32; 8],
    /// Block counter *after* the last refill.
    pub counter: u64,
    /// Stream id.
    pub stream: u64,
    /// Next unread word within the current block (16 = exhausted).
    pub index: u8,
}

impl ChaCha8Rng {
    /// Captures the generator's exact position, expressed in the logical
    /// single-block form `ChaChaState` has always used: `counter` is the
    /// next block to generate, `index` the next unread word of block
    /// `counter - 1` (16 = that block is exhausted). Snapshots taken at the
    /// same consumed-word count are byte-identical regardless of `LANES`.
    pub fn state(&self) -> ChaChaState {
        let (counter, index) = if self.index >= 16 * LANES {
            // Fresh or fully drained: next refill starts at `self.counter`.
            (self.counter, 16u8)
        } else {
            let base = self.counter.wrapping_sub(LANES as u64);
            let block = (self.index / 16) as u64;
            let word = self.index % 16;
            if word == 0 && self.index > 0 {
                // On a block boundary the single-block generator would have
                // just exhausted block `base + block - 1`.
                (base.wrapping_add(block), 16u8)
            } else {
                (base.wrapping_add(block).wrapping_add(1), word as u8)
            }
        };
        ChaChaState {
            key: self.key,
            counter,
            stream: self.stream,
            index,
        }
    }

    /// Reconstructs a generator from a captured state. The next output is
    /// bit-identical to what the captured generator would have produced.
    pub fn from_state(state: ChaChaState) -> Self {
        let mut rng = ChaCha8Rng {
            key: state.key,
            counter: state.counter,
            stream: state.stream,
            buffer: [0; 16 * LANES],
            index: 16 * LANES,
        };
        if state.index < 16 {
            // The captured position is inside block `counter - 1`; refill
            // the batch starting there, then restore the read position.
            rng.counter = state.counter.wrapping_sub(1);
            rng.refill();
            rng.index = state.index as usize;
        }
        rng
    }

    /// Number of 32-bit keystream words consumed so far (the upstream
    /// `rand_chacha` "word position"). `set_word_pos(get_word_pos())` is an
    /// exact no-op on the output stream.
    pub fn get_word_pos(&self) -> u64 {
        if self.index >= 16 * LANES {
            // Fresh or fully drained: everything before `counter` is spent.
            self.counter.wrapping_mul(16)
        } else {
            self.counter
                .wrapping_sub(LANES as u64)
                .wrapping_mul(16)
                .wrapping_add(self.index as u64)
        }
    }

    /// Jumps the generator so the next `next_u32` returns keystream word
    /// `word_pos` (16 words per block). Because each block is a pure
    /// function of `(key, stream, counter)`, seeking is O(1) block work and
    /// the continuation is bit-identical to sequentially consuming
    /// `word_pos` words from a fresh generator — this is what makes
    /// per-walk RNG stream-splitting exact (see soteria-features).
    pub fn set_word_pos(&mut self, word_pos: u64) {
        self.counter = word_pos / 16;
        self.index = 16 * LANES;
        let within = (word_pos % 16) as usize;
        if within != 0 {
            self.refill();
            self.index = within;
        }
    }

    /// Selects an independent stream for the same key (handy for
    /// splitting; unused seed space otherwise).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16 * LANES;
    }

    /// Generates the next `LANES` keystream blocks into `buffer`. Each
    /// block is the same pure function of `(key, stream, counter)` as in a
    /// one-block-at-a-time generator, so the concatenated stream is
    /// unchanged; only the batching differs.
    fn refill(&mut self) {
        let mut state = [[0u32; LANES]; 16];
        for (word, c) in state.iter_mut().zip(CONSTANTS.iter()) {
            *word = [*c; LANES];
        }
        for (word, k) in state[4..12].iter_mut().zip(self.key.iter()) {
            *word = [*k; LANES];
        }
        for l in 0..LANES {
            let counter = self.counter.wrapping_add(l as u64);
            state[12][l] = counter as u32;
            state[13][l] = (counter >> 32) as u32;
            state[14][l] = self.stream as u32;
            state[15][l] = (self.stream >> 32) as u32;
        }

        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            for l in 0..LANES {
                out[l] = out[l].wrapping_add(inp[l]);
            }
        }
        // Transpose lane-major round output into counter-ordered blocks.
        for l in 0..LANES {
            for (w, word) in state.iter().enumerate() {
                self.buffer[l * 16 + w] = word[l];
            }
        }
        self.counter = self.counter.wrapping_add(LANES as u64);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 * LANES {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16 * LANES],
            index: 16 * LANES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn nearby_seeds_are_uncorrelated() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        let shared = va.iter().filter(|x| vb.contains(x)).count();
        assert_eq!(shared, 0);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = a.clone();
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        // Crude byte-histogram sanity check on 64 KiB of keystream.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buf = vec![0u8; 65536];
        rng.fill_bytes(&mut buf);
        let mut hist = [0usize; 256];
        for &b in &buf {
            hist[b as usize] += 1;
        }
        // Expectation 256 per bin; allow generous slack.
        assert!(hist.iter().all(|&c| (128..=384).contains(&c)));
    }

    /// One-block-at-a-time ChaCha8 block function: the reference the
    /// batched `refill` must reproduce word-for-word.
    fn scalar_block(key: &[u32; 8], counter: u64, stream: u64) -> [u32; 16] {
        fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(16);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(12);
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(8);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(7);
        }
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CONSTANTS);
        s[4..12].copy_from_slice(key);
        s[12] = counter as u32;
        s[13] = (counter >> 32) as u32;
        s[14] = stream as u32;
        s[15] = (stream >> 32) as u32;
        let input = s;
        for _ in 0..ROUNDS / 2 {
            qr(&mut s, 0, 4, 8, 12);
            qr(&mut s, 1, 5, 9, 13);
            qr(&mut s, 2, 6, 10, 14);
            qr(&mut s, 3, 7, 11, 15);
            qr(&mut s, 0, 5, 10, 15);
            qr(&mut s, 1, 6, 11, 12);
            qr(&mut s, 2, 7, 8, 13);
            qr(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        s
    }

    #[test]
    fn batched_refill_matches_scalar_blocks() {
        for (seed, stream) in [(0u64, 0u64), (42, 0), (7, 3), (u64::MAX, 9)] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            rng.set_stream(stream);
            let key = rng.key;
            let got: Vec<u32> = (0..16 * LANES * 3).map(|_| rng.next_u32()).collect();
            let want: Vec<u32> = (0..LANES as u64 * 3)
                .flat_map(|c| scalar_block(&key, c, stream))
                .collect();
            assert_eq!(got, want, "keystream drift for seed {seed} stream {stream}");
        }
    }

    #[test]
    fn state_round_trip_is_exact() {
        for consumed in [0usize, 1, 7, 15, 16, 17, 31, 32, 48, 63, 64, 65, 100, 257] {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                let _ = rng.next_u32();
            }
            let mut restored = ChaCha8Rng::from_state(rng.state());
            let a: Vec<u64> = (0..48).map(|_| rng.next_u64()).collect();
            let b: Vec<u64> = (0..48).map(|_| restored.next_u64()).collect();
            assert_eq!(a, b, "divergence after {consumed} words consumed");
        }
    }

    #[test]
    fn state_preserves_stream_id() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        rng.set_stream(9);
        let _ = rng.next_u64();
        let mut restored = ChaCha8Rng::from_state(rng.state());
        assert_eq!(rng.next_u64(), restored.next_u64());
    }

    #[test]
    fn set_word_pos_matches_sequential_consumption() {
        for pos in [0u64, 1, 7, 15, 16, 17, 31, 32, 48, 63, 64, 65, 100, 257] {
            let mut seq = ChaCha8Rng::seed_from_u64(31);
            for _ in 0..pos {
                let _ = seq.next_u32();
            }
            let mut jumped = ChaCha8Rng::seed_from_u64(31);
            jumped.set_word_pos(pos);
            assert_eq!(jumped.get_word_pos(), pos);
            let a: Vec<u32> = (0..80).map(|_| seq.next_u32()).collect();
            let b: Vec<u32> = (0..80).map(|_| jumped.next_u32()).collect();
            assert_eq!(a, b, "divergence jumping to word {pos}");
        }
    }

    #[test]
    fn get_word_pos_counts_consumed_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for consumed in 0..200u64 {
            assert_eq!(rng.get_word_pos(), consumed);
            let _ = rng.next_u32();
        }
    }

    #[test]
    fn word_pos_round_trip_is_a_no_op() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for _ in 0..37 {
            let _ = rng.next_u32();
        }
        let mut twin = rng.clone();
        let pos = twin.get_word_pos();
        twin.set_word_pos(pos);
        let a: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| twin.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
