//! The process-wide worker pool shared by every hot path in the workspace:
//! the NN compute backend (GEMM, conv lowering), the batched pipeline
//! stages in `soteria-core`, and the feature-extraction fast path in
//! `soteria-features`.
//!
//! Promoted out of `soteria-nn::backend` so `soteria-features` can use it
//! without a dependency cycle (`nn` must not depend on `features`, and
//! `features` must not depend on `nn`). `soteria_nn::backend` re-exports
//! this API, so historical call sites keep compiling unchanged.
//!
//! # Determinism contract
//!
//! The pool itself never touches data — callers submit borrowed closures
//! through [`run_scoped`] and are responsible for partitioning work over
//! *output* units only (rows, samples, walks), never over a reduction
//! axis. Under that discipline, results are bit-identical across 1..N
//! worker threads because each output element is owned by exactly one
//! task. See the determinism contract in DESIGN.md.
//!
//! # Scheduling
//!
//! The pool is lazily initialized, process-wide, and grows on demand up to
//! `available_parallelism` (override with `SOTERIA_NN_THREADS`; the
//! historical name is kept because it is documented and wired into
//! benches). Callers submit borrowed closures through [`run_scoped`]; the
//! calling thread executes the first task itself and then *helps* drain
//! the shared queue while waiting, which makes nested submissions (a
//! pooled GEMM inside a pooled pipeline chunk, or a pooled walk batch
//! inside a pooled extraction chunk) deadlock-free by construction.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// A type-erased unit of work owned by the queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed unit of work submitted via [`run_scoped`].
pub type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Number of spawned worker threads (grows monotonically).
    workers: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Poison-tolerant lock: jobs are wrapped in `catch_unwind`, so a poisoned
/// mutex can only mean a panic in bookkeeping code; recover rather than
/// cascade.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        }),
        workers: Mutex::new(0),
    })
}

/// Default worker-thread target: one thread per logical CPU beyond the
/// caller, overridable with `SOTERIA_NN_THREADS` (total thread count
/// including the caller; `1` forces fully inline execution).
fn default_threads() -> usize {
    let avail = std::env::var("SOTERIA_NN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        });
    avail.saturating_sub(1)
}

/// Ensures at least `n` pool worker threads exist (capped at 64). Returns
/// the worker count after the call. Threads are spawned once and live for
/// the process lifetime; they share one queue.
///
/// Telemetry keys keep their historical `nn.pool.*` names so committed
/// baselines and dashboards stay comparable across the promotion of the
/// pool out of `soteria-nn`.
pub fn ensure_threads(n: usize) -> usize {
    let n = n.min(64);
    let p = pool();
    let mut workers = lock(&p.workers);
    while *workers < n {
        let shared = Arc::clone(&p.shared);
        std::thread::Builder::new()
            .name(format!("soteria-pool-{}", *workers))
            .spawn(move || worker_loop(&shared))
            .expect("spawn pool worker");
        *workers += 1;
    }
    // A gauge, not a histogram: thread count is live state, not a sample
    // distribution.
    soteria_telemetry::gauge_set("nn.pool.threads", *workers as i64);
    *workers
}

/// Lazily initializes the pool at its default size. Call once at service
/// startup to move thread-spawn latency out of the first request.
pub fn warm() -> usize {
    ensure_threads(default_threads())
}

/// Current number of pool worker threads (0 until the pool is warmed; the
/// calling thread always participates in addition to these).
pub fn pool_threads() -> usize {
    match POOL.get() {
        Some(p) => *lock(&p.workers),
        None => 0,
    }
}

/// Number of threads that actually execute work: the pool workers plus
/// the calling thread (which always runs tasks itself in [`run_scoped`]).
/// This is the number benches should report — on a single-core host the
/// pool spawns zero workers, yet one thread still computes, so the
/// historical habit of reporting `pool_threads()` produced the misleading
/// `"pool_threads": 0`.
pub fn effective_threads() -> usize {
    pool_threads() + 1
}

/// Worker threads pull jobs forever; each job is panic-isolated by its
/// wrapper, so the loop itself never unwinds.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared
                    .work_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // The wrapper built in `run_scoped` already catch_unwinds the
        // user task; this outer guard only shields the loop from
        // hypothetical bookkeeping panics.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Per-`run_scoped` completion barrier.
struct Group {
    remaining: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Group {
    fn complete(&self, payload: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = payload {
            lock(&self.panic).get_or_insert(p);
        }
        let mut rem = lock(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// Runs borrowed tasks to completion, using the worker pool when it has
/// threads and inline execution otherwise.
///
/// The calling thread executes the first task itself, then helps drain the
/// shared queue while waiting for its remaining tasks — so nested calls
/// (a task that itself calls `run_scoped`) always make progress even on a
/// single worker. The function returns only after **every** task has
/// finished, which is what makes handing `'env`-borrowed closures to
/// `'static` worker threads sound.
///
/// # Panics
///
/// If any task panics, the first payload is re-raised *after* all tasks
/// have completed (no task is leaked mid-flight).
pub fn run_scoped(tasks: Vec<ScopedTask<'_>>) {
    if tasks.len() <= 1 || pool_threads() == 0 {
        for t in tasks {
            t();
        }
        return;
    }
    run_scoped_pooled(tasks);
}

/// The pooled path of [`run_scoped`], split out so the inline fast path
/// stays free of synchronization. The single `unsafe` in this crate lives
/// here.
#[allow(unsafe_code)]
fn run_scoped_pooled(tasks: Vec<ScopedTask<'_>>) {
    let p = pool();
    let n_remote = tasks.len() - 1;
    let group = Arc::new(Group {
        remaining: Mutex::new(n_remote),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });

    let mut it = tasks.into_iter();
    let first = it.next().expect("len checked > 1");
    {
        let mut q = lock(&p.shared.queue);
        for task in it {
            // SAFETY: only the lifetime is transmuted. This function does
            // not return (or unwind — every path below is panic-free or
            // catch_unwind-wrapped) until `group.remaining` reaches zero,
            // i.e. until every enqueued task has finished running, so no
            // `'env` borrow inside `task` outlives its referent.
            let task: ScopedTask<'static> =
                unsafe { std::mem::transmute::<ScopedTask<'_>, ScopedTask<'static>>(task) };
            let g = Arc::clone(&group);
            let enqueued = Instant::now();
            q.push_back(Box::new(move || {
                soteria_telemetry::record(
                    "nn.pool.queue_wait_us",
                    enqueued.elapsed().as_secs_f64() * 1e6,
                );
                let outcome = catch_unwind(AssertUnwindSafe(task));
                g.complete(outcome.err());
            }));
        }
        p.shared.work_cv.notify_all();
    }
    soteria_telemetry::counter("nn.pool.jobs", n_remote as u64);
    soteria_telemetry::counter("nn.pool.runs", 1);

    let first_panic = catch_unwind(AssertUnwindSafe(first)).err();

    // Join barrier: help drain the queue while waiting. Helping may run
    // jobs from other concurrent groups; every job is finite and
    // self-completing, so this only trades latency for progress.
    loop {
        let job = {
            let mut q = lock(&p.shared.queue);
            q.pop_front()
        };
        if let Some(job) = job {
            job();
            continue;
        }
        let rem = lock(&group.remaining);
        if *rem == 0 {
            break;
        }
        // Timed wait so newly enqueued nested jobs are picked up promptly
        // even if their notify raced with this check.
        let (rem, _) = group
            .done_cv
            .wait_timeout(rem, std::time::Duration::from_millis(5))
            .unwrap_or_else(PoisonError::into_inner);
        if *rem == 0 {
            break;
        }
    }

    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    let payload = lock(&group.panic).take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Splits `rows` into at most `jobs` contiguous chunks of equal ceiling
/// size — the partitioning used by every pooled kernel. Chunk boundaries
/// never affect results (each output row is owned by one chunk).
pub fn chunk_rows(rows: usize, jobs: usize) -> usize {
    rows.div_ceil(jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_scoped_executes_all_tasks_inline_and_pooled() {
        for threads in [0usize, 3] {
            if threads > 0 {
                ensure_threads(threads);
            }
            let counter = AtomicUsize::new(0);
            let tasks: Vec<ScopedTask<'_>> = (0..17)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as ScopedTask<'_>
                })
                .collect();
            run_scoped(tasks);
            assert_eq!(counter.load(Ordering::SeqCst), 17);
        }
    }

    #[test]
    fn run_scoped_propagates_panics_after_the_barrier() {
        ensure_threads(2);
        let finished = AtomicUsize::new(0);
        let mut tasks: Vec<ScopedTask<'_>> = vec![Box::new(|| panic!("task boom"))];
        for _ in 0..6 {
            tasks.push(Box::new(|| {
                finished.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let err = catch_unwind(AssertUnwindSafe(|| run_scoped(tasks))).unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "task boom");
        // The barrier guarantees the surviving tasks all ran.
        assert_eq!(finished.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn nested_run_scoped_makes_progress() {
        ensure_threads(2);
        let total = AtomicUsize::new(0);
        let outer: Vec<ScopedTask<'_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    let inner: Vec<ScopedTask<'_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            }) as ScopedTask<'_>
                        })
                        .collect();
                    run_scoped(inner);
                }) as ScopedTask<'_>
            })
            .collect();
        run_scoped(outer);
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn chunk_rows_covers_all_rows() {
        for rows in 0..40usize {
            for jobs in 0..9usize {
                let per = chunk_rows(rows, jobs);
                if rows > 0 {
                    assert!(per >= 1);
                    assert!(per * jobs.max(1) >= rows, "rows={rows} jobs={jobs}");
                }
            }
        }
    }
}
