pub use soteria_cfg as cfg;
