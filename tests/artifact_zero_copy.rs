//! Proves the v3 artifact load path is zero-copy with a counting global
//! allocator: building a [`Soteria`] from a validated [`StateImage`] may
//! allocate scaffolding (layer specs, vocabulary indices), but it must
//! never copy or parse a weight tensor — so the bytes it allocates stay a
//! small fraction of the tensor payload it serves, while the JSON path
//! necessarily allocates more than the full tensor payload.
//!
//! The one test in this binary is kept alone so no parallel test can
//! allocate under the counter (the PR-6 `alloc_free` idiom).

use soteria::{Soteria, SoteriaConfig, SoteriaState, StateImage};
use soteria_corpus::{Corpus, CorpusConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);

// The counter itself uses no allocation, so counting is exact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only growth; a shrink frees, it does not allocate.
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_bytes<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = BYTES.load(Ordering::Relaxed);
    let out = f();
    (out, BYTES.load(Ordering::Relaxed) - before)
}

#[test]
fn artifact_load_allocates_a_fraction_of_what_it_serves() {
    // Wide detector layers make the weight payload dominate every other
    // allocation by a wide margin, so the thresholds below are meaningful.
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [6, 6, 6, 6],
        seed: 81,
        av_noise: false,
        lineages: 2,
    });
    let split = corpus.split(0.8, 1);
    let mut config = SoteriaConfig::tiny();
    config.detector.hidden = [128, 192, 128];
    config.detector.epochs = 1;
    let soteria = Soteria::train(&config, &corpus, &split.train, 21).expect("train");
    let state = soteria.save_state().expect("save state");
    let envelope = state.to_envelope().expect("v2 envelope");
    let artifact = state.to_artifact().expect("v3 artifact");

    // Parsing the image copies the file bytes ONCE into one aligned
    // buffer and validates checksums; every tensor afterwards is a view.
    let image = StateImage::parse(&artifact).expect("v3 parse");
    let tensor_bytes: u64 = image
        .sections()
        .iter()
        .filter(|s| s.kind == soteria::artifact::KIND_TENSOR)
        .map(|s| s.len)
        .sum();
    assert!(
        tensor_bytes > 256 * 1024,
        "fixture too small to measure ({tensor_bytes} tensor bytes) — widen the layers"
    );

    // Warm-up load interns telemetry names and fills one-time lazies so
    // the measured pass sees the steady state.
    drop(Soteria::load_image(&image).expect("warm-up load"));

    let (loaded, image_alloc) = alloc_bytes(|| Soteria::load_image(&image).expect("image load"));
    let (parsed, json_alloc) = alloc_bytes(|| {
        Soteria::from_state(SoteriaState::from_bytes(envelope.as_bytes()).expect("v2 load"))
    });
    drop(loaded);
    drop(parsed);

    assert!(
        image_alloc < tensor_bytes / 4,
        "zero-copy regression: loading from the image allocated {image_alloc} bytes \
         against {tensor_bytes} bytes of tensor payload — a tensor is being copied"
    );
    assert!(
        json_alloc > tensor_bytes,
        "sanity check on the measurement: the JSON path must allocate more than \
         the tensor payload it parses ({json_alloc} vs {tensor_bytes})"
    );
}
