//! The attack-validity test battery (DESIGN.md §8).
//!
//! Every attack in the zoo must craft *valid* adversarial examples —
//! well-formed graphs whose binaries re-lift to exactly the crafted CFG,
//! with in-vocabulary feature projections and declared budgets respected —
//! and must be bit-for-bit deterministic: the same `(attack, original,
//! seed)` always yields the same bytes, across reruns and at any
//! worker-pool size. `soteria-exp robustness-bench` enforces the same
//! contract at run time; this battery drives it over arbitrary inputs.

use proptest::prelude::*;
use soteria::{AeDetector, DetectorConfig, SoteriaConfig};
use soteria_attacks::{
    batch_seed, craft_batch, validate, AdaptiveAttack, Attack, BlockSplit, FeatureMimicry,
    GeaAttack, LowDensityInsert, Obfuscate, SubCfgInjection,
};
use soteria_corpus::{corpus::Sample, Corpus, CorpusConfig, Family, SampleGenerator};
use soteria_features::{ExtractorConfig, FeatureExtractor};
use soteria_gea::{gea_merge, SizeClass, TargetSelection};

/// The structural (model-free) half of the zoo, freshly parameterized.
fn structural_attacks(seed: u64) -> Vec<Box<dyn Attack>> {
    let target = SampleGenerator::new(seed ^ 0x7A6).generate(Family::Benign);
    vec![
        Box::new(GeaAttack::new(&target, SizeClass::Medium)),
        Box::new(SubCfgInjection::reachable(3)),
        Box::new(SubCfgInjection::unreachable(4)),
        Box::new(LowDensityInsert),
        Box::new(BlockSplit::new(2)),
        Box::new(Obfuscate::new(0.3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every structural attack crafts a valid sample from an arbitrary
    /// original, and re-crafting with the same seed reproduces the binary
    /// bit for bit.
    #[test]
    fn crafted_samples_are_valid_and_seed_deterministic(
        seed in 0u64..300,
        fam in 0usize..4,
        craft_seed in 0u64..1_000,
    ) {
        let original = SampleGenerator::new(seed).generate(Family::from_index(fam));
        for attack in structural_attacks(seed) {
            let crafted = attack.craft(&original, craft_seed).expect("craft");
            if let Err(v) = validate(attack.as_ref(), &crafted, None, craft_seed) {
                panic!("{} crafted an invalid sample: {v}", attack.name());
            }
            let again = attack.craft(&original, craft_seed).expect("re-craft");
            prop_assert_eq!(
                crafted.sample().binary().to_bytes(),
                again.sample().binary().to_bytes(),
                "{} is not seed-deterministic", attack.name()
            );
        }
    }
}

/// GEA through the `Attack` trait is the paper's attack, byte for byte:
/// on the seed corpus, every (target, out-of-class original) pair crafts
/// exactly what a direct `soteria_gea::gea_merge` produces.
#[test]
fn gea_via_trait_matches_gea_merge_on_the_seed_corpus() {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [6, 6, 6, 6],
        seed: 123,
        av_noise: false,
        lineages: 3,
    });
    let selection = TargetSelection::select(&corpus);
    for target in selection.targets() {
        let target_sample = selection.sample(&corpus, target);
        let attack = GeaAttack::new(target_sample, target.size);
        for original in corpus
            .samples()
            .iter()
            .filter(|s| s.family() != target.family)
            .take(4)
        {
            let via_trait = attack.craft(original, 0).expect("craft");
            let direct = gea_merge(original, target_sample).expect("merge");
            assert_eq!(
                via_trait.sample().binary().to_bytes(),
                direct.sample().binary().to_bytes(),
                "GEA trait wrapper diverged from gea_merge for target {} {}",
                target.family,
                target.size
            );
        }
    }
}

/// Batch crafting is bit-identical to the sequential loop at 1, 2, and 8
/// pool threads — three genuinely different worker counts within one
/// process (the pool only grows, so the sequence must stay ascending).
#[test]
fn craft_batch_is_pool_size_invariant() {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [3, 3, 3, 3],
        seed: 9,
        av_noise: false,
        lineages: 3,
    });
    let originals: Vec<&Sample> = corpus.samples().iter().collect();
    let attack = SubCfgInjection::reachable(3);
    let master = 0xBEEF;
    let sequential: Vec<Vec<u8>> = originals
        .iter()
        .enumerate()
        .map(|(i, s)| {
            attack
                .craft(s, batch_seed(master, i as u64))
                .expect("craft")
                .sample()
                .binary()
                .to_bytes()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        soteria_pool::ensure_threads(threads);
        let batch: Vec<Vec<u8>> = craft_batch(&attack, &originals, master)
            .into_iter()
            .map(|r| r.expect("craft").sample().binary().to_bytes())
            .collect();
        assert_eq!(
            batch, sequential,
            "craft_batch diverged from the sequential loop at pool size {threads}"
        );
    }
}

/// The model-aware attacks (mimicry, detector-aware adaptive) stay within
/// their declared edit budgets, project into the trained vocabulary, and
/// are seed-deterministic.
#[test]
fn model_aware_attacks_respect_budgets_and_stay_in_vocabulary() {
    let mut gen = SampleGenerator::new(31);
    let originals: Vec<Sample> = (0..3).map(|_| gen.generate(Family::Mirai)).collect();
    let target = gen.generate(Family::Benign);
    let graphs: Vec<_> = originals
        .iter()
        .chain(std::iter::once(&target))
        .map(|s| s.graph().clone())
        .collect();
    let extractor = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, 5);
    let features: Vec<Vec<f64>> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| extractor.extract(g, i as u64).combined().to_vec())
        .collect();
    let detector = AeDetector::train(
        &DetectorConfig {
            epochs: 2,
            ..SoteriaConfig::tiny().detector
        },
        &features,
        9,
    );
    let centroid = vec![0.0; extractor.combined_dim()];

    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(FeatureMimicry::new(&extractor, centroid, Family::Benign, 3)),
        Box::new(AdaptiveAttack::new(
            &target,
            SizeClass::Small,
            &extractor,
            &detector,
            3,
        )),
    ];
    for attack in &attacks {
        for (i, original) in originals.iter().enumerate() {
            let seed = 100 + i as u64;
            let crafted = attack.craft(original, seed).expect("craft");
            if let Err(v) = validate(attack.as_ref(), &crafted, Some(&extractor), seed) {
                panic!("{} crafted an invalid sample: {v}", attack.name());
            }
            let budget = attack.budget().expect("model-aware attacks are budgeted");
            assert!(
                crafted.cost().refinement_edits <= budget,
                "{} spent {} edits with budget {budget}",
                attack.name(),
                crafted.cost().refinement_edits
            );
            let again = attack.craft(original, seed).expect("re-craft");
            assert_eq!(
                crafted.sample().binary().to_bytes(),
                again.sample().binary().to_bytes(),
                "{} is not seed-deterministic",
                attack.name()
            );
        }
    }
}
