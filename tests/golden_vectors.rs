//! Golden-vector regression fixtures for the feature extractor.
//!
//! A committed fixture (`tests/fixtures/golden_features.json`) pins, for a
//! fixed corpus seed and extractor seed:
//!
//! * the top grams of the fitted DBL and LBL vocabularies (label paths),
//! * a CRC-32 of each sample's combined TF-IDF vector (f64 little-endian
//!   bytes).
//!
//! Any drift in walk generation, gram counting, vocabulary selection, or
//! TF-IDF weighting fails this test loudly. If the drift is *intentional*
//! (an algorithm change, not an accident), regenerate the fixture with:
//!
//! ```text
//! SOTERIA_BLESS=1 cargo test --test golden_vectors
//! ```

use serde::{Deserialize, Serialize};
use soteria_corpus::{Corpus, CorpusConfig};
use soteria_features::{ExtractorConfig, FeatureExtractor};
use soteria_resilience::crc32;
use std::path::PathBuf;

const CORPUS_SEED: u64 = 123;
const EXTRACTOR_SEED: u64 = 7;
const SAMPLES: usize = 6;
const TOP_GRAMS: usize = 12;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenFixture {
    corpus_seed: u64,
    extractor_seed: u64,
    combined_dim: usize,
    dbl_top_grams: Vec<Vec<usize>>,
    lbl_top_grams: Vec<Vec<usize>>,
    samples: Vec<GoldenSample>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenSample {
    index: usize,
    walk_seed: u64,
    combined_crc32: u32,
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_features.json")
}

fn compute_current() -> GoldenFixture {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [8, 8, 8, 8],
        seed: CORPUS_SEED,
        av_noise: false,
        lineages: 3,
    });
    let graphs: Vec<_> = corpus
        .samples()
        .iter()
        .take(SAMPLES)
        .map(|s| s.graph().clone())
        .collect();
    let extractor = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, EXTRACTOR_SEED);

    let top = |grams: &[soteria_features::ngram::Gram]| -> Vec<Vec<usize>> {
        grams.iter().take(TOP_GRAMS).map(|g| g.labels()).collect()
    };
    let samples = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let walk_seed = 1_000 + i as u64;
            let features = extractor.extract(g, walk_seed);
            let mut bytes = Vec::with_capacity(features.combined().len() * 8);
            for &x in features.combined() {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
            GoldenSample {
                index: i,
                walk_seed,
                combined_crc32: crc32(&bytes),
            }
        })
        .collect();

    GoldenFixture {
        corpus_seed: CORPUS_SEED,
        extractor_seed: EXTRACTOR_SEED,
        combined_dim: extractor.combined_dim(),
        dbl_top_grams: top(extractor.dbl_vocabulary().grams()),
        lbl_top_grams: top(extractor.lbl_vocabulary().grams()),
        samples,
    }
}

#[test]
fn feature_extractor_matches_committed_golden_vectors() {
    let current = compute_current();
    let path = fixture_path();

    if std::env::var("SOTERIA_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixture");
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed golden fixture at {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `SOTERIA_BLESS=1 cargo test --test golden_vectors`",
            path.display()
        )
    });
    let recorded: GoldenFixture = serde_json::from_str(&raw).expect("parse golden fixture");

    assert_eq!(
        recorded,
        current,
        "FEATURE EXTRACTOR DRIFT: the pipeline no longer reproduces the \
         committed golden vectors in {}. If this change is intentional, \
         re-bless with `SOTERIA_BLESS=1 cargo test --test golden_vectors` \
         and explain the drift in the commit message; otherwise this is a \
         regression in walks, gram counting, vocabulary selection, or \
         TF-IDF weighting.",
        fixture_path().display()
    );
}
