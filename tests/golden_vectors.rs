//! Golden-vector regression fixtures for the feature extractor.
//!
//! A committed fixture (`tests/fixtures/golden_features.json`) pins, for a
//! fixed corpus seed and extractor seed:
//!
//! * the top grams of the fitted DBL and LBL vocabularies (label paths),
//! * a CRC-32 of each sample's combined TF-IDF vector (f64 little-endian
//!   bytes).
//!
//! Any drift in walk generation, gram counting, vocabulary selection, or
//! TF-IDF weighting fails this test loudly. If the drift is *intentional*
//! (an algorithm change, not an accident), regenerate the fixture with:
//!
//! ```text
//! SOTERIA_BLESS=1 cargo test --test golden_vectors
//! ```

use serde::{Deserialize, Serialize};
use soteria_corpus::{Corpus, CorpusConfig};
use soteria_features::{ExtractorConfig, FeatureExtractor};
use soteria_resilience::crc32;
use std::path::PathBuf;

const CORPUS_SEED: u64 = 123;
const EXTRACTOR_SEED: u64 = 7;
const SAMPLES: usize = 6;
const TOP_GRAMS: usize = 12;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenFixture {
    corpus_seed: u64,
    extractor_seed: u64,
    combined_dim: usize,
    dbl_top_grams: Vec<Vec<usize>>,
    lbl_top_grams: Vec<Vec<usize>>,
    samples: Vec<GoldenSample>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenSample {
    index: usize,
    walk_seed: u64,
    combined_crc32: u32,
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_features.json")
}

fn extraction_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_extraction.json")
}

fn crc_of(v: &[f64]) -> u32 {
    let mut bytes = Vec::with_capacity(v.len() * 8);
    for &x in v {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    crc32(&bytes)
}

/// Extraction-stage fixture at the paper's full dimensions: for three
/// fixture binaries, the CRC of every per-labeling walk matrix (10 × 500
/// per labeling) and of the combined 1×1000 vector.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ExtractionFixture {
    corpus_seed: u64,
    extractor_seed: u64,
    per_labeling_dim: usize,
    combined_dim: usize,
    samples: Vec<ExtractionSample>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ExtractionSample {
    index: usize,
    walk_seed: u64,
    dbl_walks_crc32: u32,
    lbl_walks_crc32: u32,
    combined_crc32: u32,
}

fn compute_current_extraction() -> ExtractionFixture {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [8, 8, 8, 8],
        seed: CORPUS_SEED,
        av_noise: false,
        lineages: 3,
    });
    let graphs: Vec<_> = corpus
        .samples()
        .iter()
        .take(SAMPLES)
        .map(|s| s.graph().clone())
        .collect();
    // The paper's configuration: 500 grams per labeling, 10 walks of
    // 5·|V| steps each — the committed CRCs pin the full-size extraction
    // stage, not just the scaled-down test config.
    let extractor = FeatureExtractor::fit(&ExtractorConfig::default(), &graphs, EXTRACTOR_SEED);

    let samples = graphs
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, g)| {
            let walk_seed = 2_000 + i as u64;
            let features = extractor.extract(g, walk_seed);
            let flat = |walks: &[Vec<f64>]| -> u32 {
                let mut all = Vec::new();
                for w in walks {
                    all.extend_from_slice(w);
                }
                crc_of(&all)
            };
            ExtractionSample {
                index: i,
                walk_seed,
                dbl_walks_crc32: flat(features.dbl_walks()),
                lbl_walks_crc32: flat(features.lbl_walks()),
                combined_crc32: crc_of(features.combined()),
            }
        })
        .collect();

    ExtractionFixture {
        corpus_seed: CORPUS_SEED,
        extractor_seed: EXTRACTOR_SEED,
        per_labeling_dim: extractor.per_labeling_dim(),
        combined_dim: extractor.combined_dim(),
        samples,
    }
}

#[test]
fn extraction_stage_matches_committed_golden_vectors() {
    let current = compute_current_extraction();
    let path = extraction_fixture_path();

    if std::env::var("SOTERIA_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixture");
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed extraction fixture at {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing extraction fixture {} ({e}); generate it with \
             `SOTERIA_BLESS=1 cargo test --test golden_vectors`",
            path.display()
        )
    });
    let recorded: ExtractionFixture = serde_json::from_str(&raw).expect("parse extraction fixture");

    assert_eq!(
        recorded,
        current,
        "EXTRACTION STAGE DRIFT: the extractor no longer reproduces the \
         committed per-walk and combined vectors in {}. The fast path and \
         the sequential reference must stay bit-identical; if this drift is \
         intentional, re-bless with `SOTERIA_BLESS=1 cargo test --test \
         golden_vectors` and explain it in the commit message.",
        extraction_fixture_path().display()
    );
}

/// Per-attack crafted-binary fixture (`tests/fixtures/golden_attacks.json`):
/// for a fixed corpus seed and craft seed, the CRC-32 of each zoo attack's
/// crafted binary bytes plus its lifted node/edge counts. Any drift in an
/// attack's crafting — merge layout, injection site choice, greedy edit
/// search, probe seeding — fails loudly; bless intentional changes with
/// `SOTERIA_BLESS=1 cargo test --test golden_vectors`.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct AttackFixture {
    corpus_seed: u64,
    craft_seed: u64,
    attacks: Vec<AttackGolden>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct AttackGolden {
    name: String,
    binary_crc32: u32,
    nodes: usize,
    edges: usize,
}

fn attack_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_attacks.json")
}

fn compute_current_attacks() -> AttackFixture {
    use soteria::{AeDetector, DetectorConfig, SoteriaConfig};
    use soteria_attacks::{
        AdaptiveAttack, Attack, BlockSplit, FeatureMimicry, GeaAttack, LowDensityInsert, Obfuscate,
        SubCfgInjection,
    };
    use soteria_gea::SizeClass;

    const CRAFT_SEED: u64 = 41;
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [4, 4, 4, 4],
        seed: CORPUS_SEED,
        av_noise: false,
        lineages: 3,
    });
    let original = corpus
        .samples()
        .iter()
        .find(|s| s.family() == soteria_corpus::Family::Mirai)
        .expect("corpus has mirai samples")
        .clone();
    let target = corpus
        .samples()
        .iter()
        .find(|s| s.family() == soteria_corpus::Family::Benign)
        .expect("corpus has benign samples")
        .clone();

    // A small trained vocabulary + detector so the model-aware attacks are
    // pinned too (training is deterministic under these seeds).
    let graphs: Vec<_> = corpus.samples().iter().map(|s| s.graph().clone()).collect();
    let extractor = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, EXTRACTOR_SEED);
    let features: Vec<Vec<f64>> = graphs
        .iter()
        .take(8)
        .enumerate()
        .map(|(i, g)| extractor.extract(g, i as u64).combined().to_vec())
        .collect();
    let detector = AeDetector::train(
        &DetectorConfig {
            epochs: 2,
            ..SoteriaConfig::tiny().detector
        },
        &features,
        9,
    );
    let centroid = vec![0.0; extractor.combined_dim()];

    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(GeaAttack::new(&target, SizeClass::Medium)),
        Box::new(SubCfgInjection::reachable(3)),
        Box::new(SubCfgInjection::unreachable(4)),
        Box::new(LowDensityInsert),
        Box::new(BlockSplit::new(2)),
        Box::new(Obfuscate::new(0.3)),
        Box::new(FeatureMimicry::new(
            &extractor,
            centroid,
            soteria_corpus::Family::Benign,
            3,
        )),
        Box::new(AdaptiveAttack::new(
            &target,
            SizeClass::Medium,
            &extractor,
            &detector,
            3,
        )),
    ];

    let attacks = attacks
        .iter()
        .map(|attack| {
            let crafted = attack.craft(&original, CRAFT_SEED).expect("craft");
            let g = crafted.sample().graph();
            AttackGolden {
                name: attack.name(),
                binary_crc32: crc32(&crafted.sample().binary().to_bytes()),
                nodes: g.node_count(),
                edges: g.edge_count(),
            }
        })
        .collect();

    AttackFixture {
        corpus_seed: CORPUS_SEED,
        craft_seed: CRAFT_SEED,
        attacks,
    }
}

#[test]
fn attack_zoo_matches_committed_golden_fixtures() {
    let current = compute_current_attacks();
    let path = attack_fixture_path();

    if std::env::var("SOTERIA_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixture");
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed attack fixture at {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing attack fixture {} ({e}); generate it with \
             `SOTERIA_BLESS=1 cargo test --test golden_vectors`",
            path.display()
        )
    });
    let recorded: AttackFixture = serde_json::from_str(&raw).expect("parse attack fixture");

    assert_eq!(
        recorded,
        current,
        "ATTACK ZOO DRIFT: an attack no longer reproduces the committed \
         crafted binaries in {}. Crafting must be a pure function of \
         (attack parameters, original bytes, seed); if this drift is \
         intentional, re-bless with `SOTERIA_BLESS=1 cargo test --test \
         golden_vectors` and explain it in the commit message.",
        attack_fixture_path().display()
    );
}

fn compute_current() -> GoldenFixture {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [8, 8, 8, 8],
        seed: CORPUS_SEED,
        av_noise: false,
        lineages: 3,
    });
    let graphs: Vec<_> = corpus
        .samples()
        .iter()
        .take(SAMPLES)
        .map(|s| s.graph().clone())
        .collect();
    let extractor = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, EXTRACTOR_SEED);

    let top = |grams: &[soteria_features::ngram::Gram]| -> Vec<Vec<usize>> {
        grams.iter().take(TOP_GRAMS).map(|g| g.labels()).collect()
    };
    let samples = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let walk_seed = 1_000 + i as u64;
            let features = extractor.extract(g, walk_seed);
            let mut bytes = Vec::with_capacity(features.combined().len() * 8);
            for &x in features.combined() {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
            GoldenSample {
                index: i,
                walk_seed,
                combined_crc32: crc32(&bytes),
            }
        })
        .collect();

    GoldenFixture {
        corpus_seed: CORPUS_SEED,
        extractor_seed: EXTRACTOR_SEED,
        combined_dim: extractor.combined_dim(),
        dbl_top_grams: top(extractor.dbl_vocabulary().grams()),
        lbl_top_grams: top(extractor.lbl_vocabulary().grams()),
        samples,
    }
}

#[test]
fn feature_extractor_matches_committed_golden_vectors() {
    let current = compute_current();
    let path = fixture_path();

    if std::env::var("SOTERIA_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixture");
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed golden fixture at {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `SOTERIA_BLESS=1 cargo test --test golden_vectors`",
            path.display()
        )
    });
    let recorded: GoldenFixture = serde_json::from_str(&raw).expect("parse golden fixture");

    assert_eq!(
        recorded,
        current,
        "FEATURE EXTRACTOR DRIFT: the pipeline no longer reproduces the \
         committed golden vectors in {}. If this change is intentional, \
         re-bless with `SOTERIA_BLESS=1 cargo test --test golden_vectors` \
         and explain the drift in the commit message; otherwise this is a \
         regression in walks, gram counting, vocabulary selection, or \
         TF-IDF weighting.",
        fixture_path().display()
    );
}
