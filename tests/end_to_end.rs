//! End-to-end integration: corpus generation → training → screening →
//! classification, exercising the whole crate stack together.

use soteria::{Soteria, SoteriaConfig, Verdict};
use soteria_corpus::{Corpus, CorpusConfig, Family};
use soteria_gea::{append, gea_merge, SizeClass, TargetSelection};

fn setup() -> (Soteria, Corpus, Vec<usize>) {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [20, 20, 20, 16],
        seed: 424,
        av_noise: true,
        lineages: 4,
    });
    let split = corpus.split(0.8, 9);
    let soteria = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 31).expect("train");
    (soteria, corpus, split.test)
}

#[test]
fn detector_separates_adversarial_from_clean() {
    let (mut soteria, corpus, test) = setup();
    let selection = TargetSelection::select(&corpus);
    let target = selection
        .sample(
            &corpus,
            selection.target(Family::Benign, SizeClass::Large).unwrap(),
        )
        .clone();

    let mut clean_flagged = 0usize;
    let mut ae_flagged = 0usize;
    let mut ae_total = 0usize;
    for (i, &idx) in test.iter().enumerate() {
        let s = &corpus.samples()[idx];
        if soteria
            .analyze(s.graph(), 10_000 + i as u64)
            .is_adversarial()
        {
            clean_flagged += 1;
        }
        if s.family() != Family::Benign {
            let merged = gea_merge(s, &target).expect("merge");
            ae_total += 1;
            if soteria
                .analyze(merged.sample().graph(), 20_000 + i as u64)
                .is_adversarial()
            {
                ae_flagged += 1;
            }
        }
    }
    let clean_rate = clean_flagged as f64 / test.len() as f64;
    let ae_rate = ae_flagged as f64 / ae_total.max(1) as f64;
    assert!(
        ae_rate >= clean_rate + 0.3,
        "AE detection {ae_rate:.2} must dominate clean FP {clean_rate:.2}"
    );
    assert!(ae_rate > 0.6, "AE detection rate too low: {ae_rate:.2}");
}

#[test]
fn classifier_beats_chance_by_a_wide_margin() {
    let (mut soteria, corpus, test) = setup();
    let mut correct = 0usize;
    let mut classified = 0usize;
    for (i, &idx) in test.iter().enumerate() {
        let s = &corpus.samples()[idx];
        if let Verdict::Clean { family, .. } = soteria.analyze(s.graph(), 30_000 + i as u64) {
            classified += 1;
            if family == s.family() {
                correct += 1;
            }
        }
    }
    assert!(
        classified > test.len() / 2,
        "detector flagged too many clean"
    );
    let acc = correct as f64 / classified as f64;
    assert!(acc > 0.7, "accuracy {acc:.2} on {classified} samples");
}

#[test]
fn byte_appending_never_changes_the_verdict() {
    let (mut soteria, corpus, test) = setup();
    for (i, &idx) in test.iter().take(8).enumerate() {
        let s = &corpus.samples()[idx];
        let seed = 40_000 + i as u64;
        let original = soteria.analyze(s.graph(), seed);

        let trailed = append::append_trailing_bytes(s, 2048, 5).expect("append");
        assert_eq!(
            soteria.analyze(trailed.graph(), seed),
            original,
            "trailing bytes changed the verdict of {}",
            s.name()
        );

        let dead = append::inject_dead_section(s, 5).expect("inject");
        assert_eq!(
            soteria.analyze(dead.graph(), seed),
            original,
            "dead section changed the verdict of {}",
            s.name()
        );
    }
}

#[test]
fn feature_reuse_between_detector_and_classifier() {
    // §III-A: the classifier can reuse the detection-phase features.
    let (mut soteria, corpus, test) = setup();
    let g = corpus.samples()[test[0]].graph();
    let features = soteria.features(g, 77);
    let via_reuse = soteria.analyze_features(&features);
    let via_full = soteria.analyze(g, 77);
    assert_eq!(via_reuse, via_full);
}

#[test]
fn targeted_misclassification_is_prevented() {
    // The adversary wants malware classified as benign. Count how often a
    // GEA example both (a) evades the detector and (b) is classified as
    // its target class — the paper's end-to-end attack success metric.
    let (mut soteria, corpus, test) = setup();
    let selection = TargetSelection::select(&corpus);
    let target = selection
        .sample(
            &corpus,
            selection.target(Family::Benign, SizeClass::Medium).unwrap(),
        )
        .clone();
    let mut attack_successes = 0usize;
    let mut attempts = 0usize;
    for (i, &idx) in test.iter().enumerate() {
        let s = &corpus.samples()[idx];
        if s.family() == Family::Benign {
            continue;
        }
        let merged = gea_merge(s, &target).expect("merge");
        attempts += 1;
        if let Verdict::Clean { family, .. } =
            soteria.analyze(merged.sample().graph(), 50_000 + i as u64)
        {
            if family == Family::Benign {
                attack_successes += 1;
            }
        }
    }
    assert!(attempts > 0);
    let success_rate = attack_successes as f64 / attempts as f64;
    assert!(
        success_rate < 0.25,
        "attack succeeded on {attack_successes}/{attempts} samples"
    );
}
