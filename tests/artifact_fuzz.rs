//! Corruption-fuzz battery for the `SOTERIA-STATE v3` artifact.
//!
//! Every artifact-aware mutation — header/table/payload bit flips,
//! truncation at section boundaries, alignment-breaking splices — must
//! leave the loader in one of exactly two states: a typed [`StateError`],
//! or a successful load whose verdicts are bit-identical to the pristine
//! baseline (flips that land in reserved header bytes or inter-section
//! padding are invisible by design, because checksums deliberately do not
//! cover them). A panic, a silently different verdict, or an out-of-bounds
//! read is a failure of the battery.

use proptest::prelude::*;
use soteria::{Backend, Soteria, SoteriaConfig, StateError, StateImage, Verdict};
use soteria_corpus::{ArtifactMutation, Corpus, CorpusConfig, FaultInjector};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The pristine artifact plus baseline verdicts for a few probe inputs.
struct Baseline {
    artifact: Vec<u8>,
    probes: Vec<Vec<u8>>,
    verdicts: Vec<Verdict>,
}

/// Trained once and shared across all cases: corruption and loading are
/// cheap, training is not.
fn baseline() -> MutexGuard<'static, Baseline> {
    static BASE: OnceLock<Mutex<Baseline>> = OnceLock::new();
    BASE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [8, 8, 8, 8],
            seed: 71,
            av_noise: false,
            lineages: 2,
        });
        let split = corpus.split(0.8, 1);
        // Int8 training persists quantized sections too, so the fuzzer's
        // bit flips also land in int8 tensors and calibration scales.
        let config = SoteriaConfig {
            backend: Backend::Int8,
            ..SoteriaConfig::tiny()
        };
        let mut soteria = Soteria::train(&config, &corpus, &split.train, 13).expect("train");
        let artifact = soteria
            .save_state()
            .expect("save state")
            .to_artifact()
            .expect("v3 artifact");
        let probes: Vec<Vec<u8>> = split
            .test
            .iter()
            .take(3)
            .map(|&i| corpus.samples()[i].binary().to_bytes())
            .collect();
        let verdicts = probe_verdicts(&mut soteria, &probes);
        Mutex::new(Baseline {
            artifact,
            probes,
            verdicts,
        })
    })
    .lock()
    .expect("baseline lock")
}

fn probe_verdicts(soteria: &mut Soteria, probes: &[Vec<u8>]) -> Vec<Verdict> {
    let items: Vec<(&[u8], u64)> = probes
        .iter()
        .enumerate()
        .map(|(i, b)| (b.as_slice(), 400 + i as u64))
        .collect();
    soteria.screen_many_seeded(&items)
}

/// The property itself, shared by the proptest sweep and the exhaustive
/// per-mutation loop: a corrupted artifact either fails with a typed
/// error or loads into a system whose verdicts match the baseline
/// bit-for-bit.
fn assert_corruption_is_contained(base: &mut Baseline, corrupted: &[u8], what: &str) {
    // Both entry points must agree in kind and neither may panic.
    let state_result = soteria::SoteriaState::from_artifact(corrupted);
    match StateImage::parse(corrupted) {
        Err(e) => {
            assert!(
                !e.to_string().is_empty(),
                "{what}: typed error must render a diagnosis"
            );
            assert!(
                state_result.is_err(),
                "{what}: StateImage rejected the bytes but from_artifact accepted them"
            );
        }
        Ok(image) => match Soteria::load_image(&image) {
            Err(e) => assert!(
                !e.to_string().is_empty(),
                "{what}: typed error must render a diagnosis"
            ),
            Ok(mut loaded) => {
                // The mutation landed in bytes the format deliberately
                // does not interpret; the model must be unchanged.
                let got = probe_verdicts(&mut loaded, &base.probes);
                assert_eq!(
                    format!("{got:?}"),
                    format!("{:?}", base.verdicts),
                    "{what}: corrupted artifact loaded but produced different verdicts"
                );
            }
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized sweep over every artifact-aware mutation kind.
    #[test]
    fn corrupted_artifacts_never_panic_or_change_verdicts(
        seed in 0u64..1_000, index in 0u64..1_000,
    ) {
        let mut base = baseline();
        let injector = FaultInjector::new(seed);
        let (corrupted, mutation) = injector.corrupt_artifact(&base.artifact, index);
        assert_corruption_is_contained(&mut base, &corrupted, &format!("{mutation} #{index}"));
    }
}

/// Deterministic pass: every mutation kind at many stream positions, so
/// a regression in one kind cannot hide behind proptest's sampling.
#[test]
fn every_mutation_kind_is_contained() {
    let mut base = baseline();
    let injector = FaultInjector::new(5);
    for kind in ArtifactMutation::ALL {
        for index in 0..24u64 {
            let artifact = base.artifact.clone();
            let corrupted = injector.corrupt_artifact_with(&artifact, index, kind);
            assert_corruption_is_contained(&mut base, &corrupted, &format!("{kind} #{index}"));
        }
    }
}

/// Truncation at a section boundary removes declared payload, which the
/// header's total-length field must always catch — boundary truncation
/// can never load.
#[test]
fn boundary_truncation_always_fails_typed() {
    let base = baseline();
    let injector = FaultInjector::new(6);
    for index in 0..24u64 {
        let corrupted = injector.corrupt_artifact_with(
            &base.artifact,
            index,
            ArtifactMutation::TruncateAtBoundary,
        );
        let err = StateImage::parse(&corrupted).expect_err("truncated artifact must not load");
        assert!(
            matches!(
                err,
                StateError::Truncated { .. }
                    | StateError::BadHeader { .. }
                    | StateError::ChecksumMismatch { .. }
            ),
            "truncation produced an unexpected error class: {err}"
        );
    }
}
