//! Overload-hardening invariants, asserted end to end against a trained
//! service with the full admission stack on and deterministic chaos
//! armed:
//!
//! 1. **Exactly one terminal outcome** — every submission is either
//!    rejected at admission or resolves to exactly one verdict; nothing
//!    hangs past the budget, even at far-beyond-saturation arrival rates
//!    with panic and slow-worker injection.
//! 2. **Accepted verdicts stay bit-identical** — any accepted,
//!    non-degraded verdict equals a sequential chaos-free
//!    [`Soteria::screen_binary`] of the identical content; overload may
//!    shed or degrade a request, never silently change its answer.
//! 3. **Brownout answers what it can** — under the AE-only tier, an
//!    adversarial sample still gets its exact full-pipeline verdict
//!    (the detector short-circuits the classifier either way).
//! 4. **Shutdown past deadlines is clean** — draining a service whose
//!    in-flight requests have all expired returns the model, resolves
//!    every ticket, and leaks no threads into the shared compute pool.

use soteria::{Soteria, SoteriaConfig, Verdict};
use soteria_corpus::{Corpus, CorpusConfig, Family};
use soteria_gea::{gea_merge, SizeClass, TargetSelection};
use soteria_serve::{
    request_seed, AdmissionConfig, BreakerConfig, ScreeningService, ServeConfig, Submit,
    SubmitOptions,
};
use std::sync::Mutex;
use std::time::Duration;

/// Chaos seeding is process-global; tests that arm (or depend on
/// disarmed) chaos serialize through this lock.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn trained() -> (Soteria, Corpus, Vec<usize>) {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [10, 10, 10, 10],
        seed: 47,
        av_noise: false,
        lineages: 3,
    });
    let split = corpus.split(0.8, 2);
    let soteria = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 5).expect("train");
    (soteria, corpus, split.test)
}

#[test]
fn chaos_overload_reaches_exactly_one_outcome_per_request() {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (soteria, corpus, test) = trained();

    // Unique request contents (trailing salt defeats the cache) so every
    // accepted request pays the full pipeline under injected faults.
    let make_request = |i: usize| -> Vec<u8> {
        let mut bytes = corpus.samples()[test[i % test.len()]].binary().to_bytes();
        bytes.extend_from_slice(&(i as u64).to_le_bytes());
        bytes
    };

    let config = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 0,
        batch_window: Duration::ZERO,
        max_batch: 4,
        seed: 29,
        admission: AdmissionConfig {
            default_deadline: Some(Duration::from_millis(100)),
            brownout_threshold: Some(0.5),
            reject_threshold: Some(0.9),
            breaker: Some(BreakerConfig::default()),
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = ScreeningService::start(soteria, &config);

    // Arm deterministic chaos (extraction panics + slow workers) and
    // silence the hook — the injected panics are caught by the isolates.
    std::panic::set_hook(Box::new(|_| {}));
    soteria_resilience::set_chaos_seed(Some(31));

    // Four threads blasting submissions with no pacing is, by
    // construction, far beyond saturation for a 2-worker service.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 40;
    let hang_budget = Duration::from_secs(30);
    // (request index, verdict) for accepted requests; rejected count.
    let (outcomes, rejected): (Vec<(usize, Verdict)>, usize) = std::thread::scope(|s| {
        let service = &service;
        let make_request = &make_request;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    let mut rejected = 0usize;
                    for i in 0..PER_THREAD {
                        let idx = t * PER_THREAD + i;
                        match service.submit_with(make_request(idx), SubmitOptions::default()) {
                            Submit::Accepted(ticket) => {
                                let verdict = ticket
                                    .wait_for(hang_budget)
                                    .unwrap_or_else(|_| panic!("request {idx} hung past budget"));
                                mine.push((idx, verdict));
                            }
                            Submit::Rejected { retry_after, .. } => {
                                // A retry hint, when present, is finite
                                // and non-zero.
                                if let Some(wait) = retry_after {
                                    assert!(wait > Duration::ZERO);
                                }
                                rejected += 1;
                            }
                        }
                    }
                    (mine, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .fold((Vec::new(), 0), |(mut all, r), (mine, rejected)| {
                all.extend(mine);
                (all, r + rejected)
            })
    });

    let stats = service.stats();
    let mut soteria = service.shutdown();
    let _ = std::panic::take_hook();
    soteria_resilience::set_chaos_seed(None);

    // Invariant 1: exactly one terminal outcome per submission.
    assert_eq!(
        outcomes.len() + rejected,
        THREADS * PER_THREAD,
        "every submission must reject or resolve exactly once"
    );
    assert_eq!(stats.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.rejected, rejected as u64);

    // Invariant 2: accepted non-degraded verdicts are bit-identical to a
    // sequential chaos-free replay of the same content.
    let mut verified = 0usize;
    for (idx, verdict) in &outcomes {
        if verdict.is_degraded() {
            continue;
        }
        let bytes = make_request(*idx);
        let expected = soteria.screen_binary(&bytes, request_seed(29, &bytes));
        assert_eq!(
            verdict, &expected,
            "request {idx}: overload changed an accepted verdict"
        );
        verified += 1;
    }
    assert!(
        verified > 0,
        "saturation shed every single request — the battery proved nothing"
    );
    drop(guard);
}

#[test]
fn brownout_preserves_adversarial_verdicts_bit_identically() {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    soteria_resilience::set_chaos_seed(None);
    let (soteria, corpus, test) = trained();

    // GEA-merged samples: the full pipeline flags these via the detector,
    // which is exactly the stage the brownout tier keeps.
    let selection = TargetSelection::select(&corpus);
    let target = selection.sample(
        &corpus,
        selection
            .target(Family::Benign, SizeClass::Large)
            .expect("benign target exists"),
    );
    let merged: Vec<Vec<u8>> = test
        .iter()
        .filter(|&&i| corpus.samples()[i].family() != Family::Benign)
        .take(6)
        .map(|&i| {
            gea_merge(&corpus.samples()[i], target)
                .expect("merge")
                .sample()
                .binary()
                .to_bytes()
        })
        .collect();
    // Keep only merges the *full* pipeline flags adversarial: a merge big
    // enough to trip the extraction guards degrades on both paths and
    // proves nothing about brownout. Dedupe by content — distinct malware
    // merged into the same target can collide byte-for-byte, and a repeat
    // submission is a cache hit that never reaches admission.
    let mut soteria = soteria;
    let mut seen = std::collections::HashSet::new();
    let adversarial: Vec<(Vec<u8>, Verdict)> = merged
        .into_iter()
        .filter(|bytes| seen.insert(bytes.clone()))
        .filter_map(|bytes| {
            let expected = soteria.screen_binary(&bytes, request_seed(29, &bytes));
            expected.is_adversarial().then_some((bytes, expected))
        })
        .collect();
    assert!(
        !adversarial.is_empty(),
        "test premise: at least one GEA merge must flag adversarial"
    );

    let config = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        cache_shards: 2,
        batch_window: Duration::ZERO,
        max_batch: 4,
        seed: 29,
        admission: AdmissionConfig {
            // Pressure 0.0 >= 0.0: every admitted request is AE-only.
            brownout_threshold: Some(0.0),
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = ScreeningService::start(soteria, &config);
    let brownout_verdicts: Vec<Verdict> = adversarial
        .iter()
        .map(|(b, _)| {
            service
                .submit(b.clone())
                .into_ticket()
                .expect("admitted")
                .wait()
        })
        .collect();
    let stats = service.stats();
    drop(service);

    assert!(
        stats.brownout >= adversarial.len() as u64,
        "brownout {} < {} admitted AE-only requests; verdicts: {brownout_verdicts:?}",
        stats.brownout,
        adversarial.len()
    );
    for ((_, expected), verdict) in adversarial.iter().zip(&brownout_verdicts) {
        assert_eq!(
            verdict, expected,
            "brownout must not change an adversarial verdict"
        );
    }
    drop(guard);
}

#[test]
fn shutdown_with_expired_inflight_requests_drains_cleanly() {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    soteria_resilience::set_chaos_seed(None);
    let (soteria, corpus, test) = trained();
    let pool_before = soteria_nn::backend::pool_threads();

    let config = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 0,
        batch_window: Duration::from_millis(5),
        max_batch: 4,
        seed: 29,
        admission: AdmissionConfig {
            // Everything in flight is past its deadline by construction.
            default_deadline: Some(Duration::ZERO),
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = ScreeningService::start(soteria, &config);
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            let mut bytes = corpus.samples()[test[i % test.len()]].binary().to_bytes();
            bytes.extend_from_slice(&(i as u64).to_le_bytes());
            service.submit(bytes).into_ticket().expect("admitted")
        })
        .collect();

    // Shut down while those requests are still in flight: drain must
    // hand the model back (exactly once, by move semantics) and every
    // outstanding ticket must still resolve — no reply may be dropped.
    let _soteria: Soteria = service.shutdown();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let verdict = ticket
            .wait_for(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("ticket {i} unresolved after drain"));
        match verdict {
            Verdict::Degraded { reason } => assert_eq!(
                reason.slug(),
                "deadline",
                "zero-deadline request degraded for the wrong reason: {reason}"
            ),
            other => panic!("zero-deadline request must expire, got {other:?}"),
        }
    }

    // The service's own threads are joined by shutdown; the shared
    // compute pool must be exactly as big as before the service ran.
    assert_eq!(
        soteria_nn::backend::pool_threads(),
        pool_before,
        "service lifecycle leaked threads into the shared pool"
    );
    drop(guard);
}
