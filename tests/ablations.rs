//! Quality-side ablations of the design choices DESIGN.md calls out.
//! (The cost side lives in `crates/bench/benches/ablations.rs`.)

use soteria_corpus::{Corpus, CorpusConfig, Family};
use soteria_features::ngram::GramCounts;
use soteria_features::{ExtractorConfig, FeatureExtractor, Vocabulary};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        counts: [16, 40, 16, 12],
        seed: 313,
        av_noise: false,
        lineages: 4,
    })
}

/// Cosine similarity between two vectors.
fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na * nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[test]
fn more_walks_stabilize_features() {
    // Ablation: feature stability (cosine similarity between two
    // independent extractions of the same sample) must grow with the walk
    // count — the justification for the paper's 10 walks.
    let c = corpus();
    let graphs: Vec<_> = c
        .samples()
        .iter()
        .take(10)
        .map(|s| s.graph().clone())
        .collect();
    let stability_at = |count: usize| -> f64 {
        let config = ExtractorConfig {
            walks_per_labeling: count,
            ..ExtractorConfig::small()
        };
        let ex = FeatureExtractor::fit(&config, &graphs, 1);
        let mut acc = 0.0;
        for (i, g) in graphs.iter().enumerate() {
            let a = ex.extract(g, 2 * i as u64);
            let b = ex.extract(g, 2 * i as u64 + 1);
            acc += cosine(a.combined(), b.combined());
        }
        acc / graphs.len() as f64
    };
    let s2 = stability_at(2);
    let s10 = stability_at(10);
    assert!(
        s10 > s2,
        "10 walks ({s10:.3}) should be more stable than 2 ({s2:.3})"
    );
}

#[test]
fn longer_walks_stabilize_features() {
    let c = corpus();
    let graphs: Vec<_> = c
        .samples()
        .iter()
        .take(10)
        .map(|s| s.graph().clone())
        .collect();
    let stability_at = |mult: usize| -> f64 {
        let config = ExtractorConfig {
            walk_multiplier: mult,
            ..ExtractorConfig::small()
        };
        let ex = FeatureExtractor::fit(&config, &graphs, 1);
        let mut acc = 0.0;
        for (i, g) in graphs.iter().enumerate() {
            let a = ex.extract(g, 2 * i as u64);
            let b = ex.extract(g, 2 * i as u64 + 1);
            acc += cosine(a.combined(), b.combined());
        }
        acc / graphs.len() as f64
    };
    let s1 = stability_at(1);
    let s5 = stability_at(5);
    assert!(
        s5 > s1,
        "5x walks ({s5:.3}) should be more stable than 1x ({s1:.3})"
    );
}

#[test]
fn stratified_vocabulary_covers_minority_classes() {
    // Ablation: with a majority-heavy corpus, global top-k selection
    // leaves minority samples sparse; stratified selection fixes it.
    let c = corpus(); // gafgyt-heavy by construction
    let graphs: Vec<_> = c.samples().iter().map(|s| s.graph().clone()).collect();
    let labels: Vec<usize> = c.samples().iter().map(|s| s.family().index()).collect();
    let config = ExtractorConfig::small();

    let global = FeatureExtractor::fit(&config, &graphs, 1);
    let stratified = FeatureExtractor::fit_stratified(&config, &graphs, &labels, 4, 1);

    let nnz = |ex: &FeatureExtractor, fam: Family| -> f64 {
        let mut total = 0usize;
        let mut n = 0usize;
        for (g, &l) in graphs.iter().zip(&labels) {
            if l != fam.index() {
                continue;
            }
            let f = ex.extract(g, 9);
            total += f.combined().iter().filter(|&&x| x != 0.0).count();
            n += 1;
        }
        total as f64 / n.max(1) as f64
    };
    // Tsunami (smallest class) must gain vocabulary coverage.
    let g_cov = nnz(&global, Family::Tsunami);
    let s_cov = nnz(&stratified, Family::Tsunami);
    assert!(
        s_cov > g_cov,
        "stratified coverage {s_cov:.1} must beat global {g_cov:.1}"
    );
}

#[test]
fn ngram_mix_adds_distinct_grams() {
    // 2+3+4-grams give a strictly richer representation than 2-grams.
    let walk: Vec<usize> = (0..50).map(|i| i % 7).collect();
    let mut only2 = GramCounts::new();
    only2.add_walk(&walk, &[2]);
    let mut mixed = GramCounts::new();
    mixed.add_walk(&walk, &[2, 3, 4]);
    assert!(mixed.distinct() > only2.distinct());
    assert!(mixed.total() > only2.total());
}

#[test]
fn top_k_tradeoff_monotone_in_coverage() {
    // A larger vocabulary can only increase per-sample coverage.
    let c = corpus();
    let graphs: Vec<_> = c
        .samples()
        .iter()
        .take(12)
        .map(|s| s.graph().clone())
        .collect();
    let docs: Vec<GramCounts> = graphs
        .iter()
        .map(|g| {
            let (r, _) = g.reachable_subgraph();
            let labels = soteria_features::label_nodes(&r, soteria_features::Labeling::Level);
            use rand::SeedableRng as _;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
            let walks = soteria_features::walk_set(&r, &labels, 3, 4, &mut rng);
            soteria_features::ngram::count_walk_set(&walks, &[2, 3])
        })
        .collect();
    let coverage = |k: usize| -> usize {
        let vocab = Vocabulary::fit(&docs, k);
        docs.iter()
            .map(|d| vocab.transform(d).iter().filter(|&&x| x != 0.0).count())
            .sum()
    };
    let c64 = coverage(64);
    let c256 = coverage(256);
    assert!(
        c256 >= c64,
        "coverage must not shrink with k: {c64} vs {c256}"
    );
}

#[test]
fn lineage_diversity_controls_intra_class_spread() {
    // Fewer lineages -> tighter within-family feature clusters (the
    // variant-dominance property the detector relies on).
    let spread_of = |lineages: usize| -> f64 {
        let c = Corpus::generate(&CorpusConfig {
            counts: [0, 24, 0, 0],
            seed: 17,
            av_noise: false,
            lineages,
        });
        let graphs: Vec<_> = c.samples().iter().map(|s| s.graph().clone()).collect();
        let ex = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, 1);
        let feats: Vec<Vec<f64>> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| ex.extract(g, i as u64).combined().to_vec())
            .collect();
        // Mean pairwise cosine similarity; higher = tighter.
        let mut acc = 0.0;
        let mut n = 0usize;
        for i in 0..feats.len() {
            for j in i + 1..feats.len() {
                acc += cosine(&feats[i], &feats[j]);
                n += 1;
            }
        }
        1.0 - acc / n as f64 // spread = 1 - mean similarity
    };
    let tight = spread_of(1);
    let loose = spread_of(8);
    assert!(
        loose > tight,
        "8 lineages (spread {loose:.3}) should be looser than 1 ({tight:.3})"
    );
}
