//! Differential equivalence battery for the `SOTERIA-STATE v3` artifact.
//!
//! The binary artifact is only allowed to exist because it is *provably*
//! the same model: for arbitrary trained configurations and both
//! inference backends, a JSON-loaded system and an artifact-loaded system
//! must produce byte-for-byte identical verdicts on clean, GEA-adversarial,
//! and corrupted inputs, at every screening pool size — and converting
//! v2 → v3 → v2 must reproduce the v2 envelope byte-for-byte.

use proptest::prelude::*;
use soteria::{Backend, Soteria, SoteriaConfig, SoteriaState, StateImage, Verdict};
use soteria_corpus::{Corpus, CorpusConfig, Family, FaultInjector};
use soteria_gea::{gea_merge, SizeClass, TargetSelection};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Screening pool sizes the battery replays every comparison at: the
/// degenerate single-sample path, a partial batch, and a full batch.
const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// One trained system, stored as its two serialized forms plus the input
/// pool it is screened against. States are rebuilt from bytes per case,
/// so every case exercises the real load paths.
struct TrainedCase {
    envelope: String,
    artifact: Vec<u8>,
    pool: Vec<Vec<u8>>,
}

/// Training dominates this battery's cost, so systems are trained once
/// per (corpus seed, train seed) pair and shared across property cases.
fn bank() -> MutexGuard<'static, HashMap<(u64, u64), TrainedCase>> {
    static BANK: OnceLock<Mutex<HashMap<(u64, u64), TrainedCase>>> = OnceLock::new();
    BANK.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("bank lock")
}

fn build_case(corpus_seed: u64, train_seed: u64) -> TrainedCase {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [8, 8, 8, 8],
        seed: corpus_seed,
        av_noise: false,
        lineages: 2,
    });
    let split = corpus.split(0.8, 1);
    // Int8-backend training calibrates and persists the quantized weights,
    // so the saved state carries BOTH backends; the F32 arm of the battery
    // just switches back after loading.
    let config = SoteriaConfig {
        backend: Backend::Int8,
        ..SoteriaConfig::tiny()
    };
    let soteria = Soteria::train(&config, &corpus, &split.train, train_seed).expect("train");

    // Input pool: clean test binaries, GEA adversarial examples against a
    // benign target, and injector-corrupted mutants.
    let clean: Vec<Vec<u8>> = split
        .test
        .iter()
        .take(4)
        .map(|&i| corpus.samples()[i].binary().to_bytes())
        .collect();
    let selection = TargetSelection::select(&corpus);
    let target = selection.sample(
        &corpus,
        selection
            .target(Family::Benign, SizeClass::Large)
            .expect("benign target exists"),
    );
    let adversarial: Vec<Vec<u8>> = split
        .test
        .iter()
        .filter(|&&i| corpus.samples()[i].family() != Family::Benign)
        .take(2)
        .map(|&i| {
            gea_merge(&corpus.samples()[i], target)
                .expect("merge")
                .sample()
                .binary()
                .to_bytes()
        })
        .collect();
    let injector = FaultInjector::new(corpus_seed ^ train_seed);
    let corrupted: Vec<Vec<u8>> = (0..2u64)
        .map(|i| injector.corrupt(&clean[i as usize % clean.len()], i).0)
        .collect();
    let pool: Vec<Vec<u8>> = clean
        .into_iter()
        .chain(adversarial)
        .chain(corrupted)
        .collect();

    let state = soteria.save_state().expect("save state");
    TrainedCase {
        envelope: state.to_envelope().expect("v2 envelope"),
        artifact: state.to_artifact().expect("v3 artifact"),
        pool,
    }
}

/// Screens the pool in chunks of `chunk` with per-item seeds. The caller
/// compares both the structures and their `Debug` rendering — the latter
/// prints every float at full round-trip precision, so string equality is
/// bit-for-bit verdict equality, not approximate agreement.
fn screen_chunked(
    soteria: &mut Soteria,
    pool: &[Vec<u8>],
    chunk: usize,
    seed_base: u64,
) -> Vec<Verdict> {
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(pool.len());
    for (c, group) in pool.chunks(chunk).enumerate() {
        let items: Vec<(&[u8], u64)> = group
            .iter()
            .enumerate()
            .map(|(i, b)| (b.as_slice(), seed_base + (c * chunk + i) as u64))
            .collect();
        verdicts.extend(soteria.screen_many_seeded(&items));
    }
    verdicts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core differential property: the artifact-loaded system is
    /// indistinguishable, verdict-for-verdict and byte-for-byte, from the
    /// JSON-loaded system it was exported from — on either backend, at
    /// every pool size, across clean/adversarial/corrupted inputs.
    #[test]
    fn artifact_and_json_loads_are_verdict_identical(
        corpus_seed in 61u64..63,
        train_seed in 3u64..5,
        int8 in proptest::prelude::any::<bool>(),
        seed_base in 0u64..1_000,
    ) {
        let mut bank = bank();
        let case = bank
            .entry((corpus_seed, train_seed))
            .or_insert_with(|| build_case(corpus_seed, train_seed));

        let mut json_model =
            Soteria::from_state(SoteriaState::from_bytes(case.envelope.as_bytes()).expect("v2 load"));
        let image = StateImage::parse(&case.artifact).expect("v3 parse");
        let mut art_model = Soteria::load_image(&image).expect("v3 load");

        let backend = if int8 { Backend::Int8 } else { Backend::F32 };
        json_model.set_backend(backend).expect("backend available");
        art_model.set_backend(backend).expect("backend available");
        prop_assert_eq!(json_model.backend(), art_model.backend());

        for chunk in POOL_SIZES {
            let from_json = screen_chunked(&mut json_model, &case.pool, chunk, seed_base);
            let from_artifact = screen_chunked(&mut art_model, &case.pool, chunk, seed_base);
            prop_assert_eq!(
                format!("{from_json:?}"),
                format!("{from_artifact:?}"),
                "verdicts diverged at pool size {} on {:?}",
                chunk,
                backend
            );
            prop_assert_eq!(&from_json, &from_artifact);
        }
    }

    /// v2 → v3 → v2 is byte-stable: exporting a state to the binary
    /// artifact and reading it back reproduces the exact v2 envelope, so
    /// nothing the JSON format carries is lost or perturbed in transit.
    #[test]
    fn v2_to_v3_to_v2_round_trip_is_byte_stable(
        corpus_seed in 61u64..63,
        train_seed in 3u64..5,
    ) {
        let mut bank = bank();
        let case = bank
            .entry((corpus_seed, train_seed))
            .or_insert_with(|| build_case(corpus_seed, train_seed));

        let state = SoteriaState::from_bytes(case.envelope.as_bytes()).expect("v2 load");
        let artifact = state.to_artifact().expect("v3 export");
        let round_tripped = SoteriaState::from_artifact(&artifact)
            .expect("v3 import")
            .to_envelope()
            .expect("v2 re-export");
        prop_assert_eq!(
            &round_tripped,
            &case.envelope,
            "v2 -> v3 -> v2 must reproduce the envelope byte-for-byte"
        );

        // The artifact export itself is deterministic, too: same state,
        // same bytes — a requirement for golden-fixture pinning.
        prop_assert_eq!(&artifact, &case.artifact);
    }
}
