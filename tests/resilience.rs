//! Resilience properties of the serving path: arbitrary corruption may
//! degrade a sample, but it must never panic out of the pipeline, never
//! abort a batch, and always produce a verdict.

use proptest::prelude::*;
use soteria::{Soteria, SoteriaConfig, Verdict};
use soteria_corpus::{Corpus, CorpusConfig, FaultInjector};
use std::sync::{Mutex, OnceLock};

/// One system trained once and shared across all property cases (training
/// dominates the test's cost; screening is cheap).
fn system() -> &'static Mutex<(Soteria, Corpus)> {
    static SYSTEM: OnceLock<Mutex<(Soteria, Corpus)>> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            counts: [8, 8, 8, 8],
            seed: 77,
            av_noise: false,
            lineages: 2,
        });
        let split = corpus.split(0.8, 1);
        let soteria =
            Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 9).expect("train");
        Mutex::new((soteria, corpus))
    })
}

proptest! {
    /// Systematically corrupted real binaries (bit flips, truncations,
    /// garbage spans, splices) always come back with a verdict; corrupted
    /// input can degrade, never unwind.
    #[test]
    fn corrupted_binaries_always_produce_a_verdict(
        seed in 0u64..1000, index in 0u64..1000, sample in 0usize..32
    ) {
        let mut guard = system().lock().expect("lock");
        let (soteria, corpus) = &mut *guard;
        let base = corpus.samples()[sample % corpus.len()].binary().to_bytes();
        let (corrupted, _mutation) = FaultInjector::new(seed).corrupt(&base, index);
        // Returning at all is the property: every panic path is confined
        // inside `screen_binary`. The verdict enum is total, so matching
        // suffices to prove a verdict was produced.
        match soteria.screen_binary(&corrupted, seed ^ index) {
            Verdict::Clean { .. } | Verdict::Adversarial { .. } => {}
            Verdict::Degraded { reason } => prop_assert!(!reason.to_string().is_empty()),
        }
    }

    /// Entirely arbitrary byte soup — not even derived from a valid
    /// binary — is handled the same way.
    #[test]
    fn arbitrary_bytes_always_produce_a_verdict(
        bytes in proptest::collection::vec(any::<u8>(), 0..512), walk_seed in 0u64..1000
    ) {
        let mut guard = system().lock().expect("lock");
        let (soteria, _) = &mut *guard;
        let verdict = soteria.screen_binary(&bytes, walk_seed);
        // Byte soup virtually never parses; whatever happens, it must be
        // a verdict, not an unwind.
        prop_assert!(matches!(
            verdict,
            Verdict::Clean { .. } | Verdict::Adversarial { .. } | Verdict::Degraded { .. }
        ));
    }
}
