//! Determinism across the whole stack: equal seeds must give bit-equal
//! corpora, feature vectors, model statistics and verdicts.

use soteria::{Soteria, SoteriaConfig, Verdict};
use soteria_corpus::{Corpus, CorpusConfig};
use soteria_features::{ExtractorConfig, FeatureExtractor};
use soteria_serve::{ScreeningService, ServeConfig};
use std::time::Duration;

fn config() -> CorpusConfig {
    CorpusConfig {
        counts: [12, 12, 12, 12],
        seed: 99,
        av_noise: true,
        lineages: 4,
    }
}

#[test]
fn corpora_are_bit_identical_across_runs() {
    let a = Corpus::generate(&config());
    let b = Corpus::generate(&config());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.samples().iter().zip(b.samples()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_give_different_corpora() {
    let a = Corpus::generate(&config());
    let mut other = config();
    other.seed = 100;
    let b = Corpus::generate(&other);
    assert_ne!(a.samples()[0].binary(), b.samples()[0].binary());
}

#[test]
fn feature_extraction_is_seed_stable() {
    let corpus = Corpus::generate(&config());
    let graphs: Vec<_> = corpus
        .samples()
        .iter()
        .take(6)
        .map(|s| s.graph().clone())
        .collect();
    let e1 = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, 5);
    let e2 = FeatureExtractor::fit(&ExtractorConfig::small(), &graphs, 5);
    for (i, g) in graphs.iter().enumerate() {
        assert_eq!(e1.extract(g, i as u64), e2.extract(g, i as u64));
    }
}

#[test]
fn trained_detector_stats_are_reproducible() {
    let corpus = Corpus::generate(&config());
    let split = corpus.split(0.8, 1);
    let mut a = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 3).expect("train");
    let mut b = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 3).expect("train");
    assert_eq!(a.detector_mut().stats(), b.detector_mut().stats());

    // And the verdicts agree sample by sample.
    for (i, &idx) in split.test.iter().enumerate() {
        let g = corpus.samples()[idx].graph();
        assert_eq!(a.analyze(g, i as u64), b.analyze(g, i as u64));
    }
}

#[test]
fn screening_service_reproduces_a_recorded_run() {
    // Same corpus seed, same training seed, same service seed: two
    // independently-trained systems behind services with *different*
    // worker counts and batch windows must replay the exact same verdict
    // list. Request seeds derive from content, so neither scheduling nor
    // batching can leak into the answers.
    let corpus = Corpus::generate(&config());
    let split = corpus.split(0.8, 1);
    let requests: Vec<Vec<u8>> = split
        .test
        .iter()
        .map(|&i| corpus.samples()[i].binary().to_bytes())
        .collect();

    let run = |workers: usize, window: Duration| -> Vec<Verdict> {
        let soteria =
            Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 3).expect("train");
        let service = ScreeningService::start(
            soteria,
            &ServeConfig {
                workers,
                queue_capacity: requests.len().max(1),
                batch_window: window,
                seed: 99,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = requests
            .iter()
            .map(|b| service.submit(b.clone()).into_ticket().expect("accepted"))
            .collect();
        let verdicts = tickets.into_iter().map(|t| t.wait()).collect();
        drop(service.shutdown());
        verdicts
    };

    let recorded = run(1, Duration::ZERO);
    let replayed = run(3, Duration::from_millis(2));
    assert_eq!(recorded, replayed);
}

#[test]
fn walk_randomization_varies_with_seed_but_not_verdict_struct() {
    // Different walk seeds change features (the randomization defense)
    // while the pipeline still runs deterministically per seed.
    let corpus = Corpus::generate(&config());
    let split = corpus.split(0.8, 1);
    let soteria = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 3).expect("train");
    let g = corpus.samples()[split.test[0]].graph();
    let f1 = soteria.features(g, 1);
    let f2 = soteria.features(g, 2);
    assert_ne!(f1.combined(), f2.combined());
    assert_eq!(f1, soteria.features(g, 1));
}
