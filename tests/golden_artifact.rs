//! Golden layout fixture for the `SOTERIA-STATE v3` artifact.
//!
//! A committed fixture (`tests/fixtures/golden_artifact.json`) pins, for a
//! seeded trained model, the exact byte layout of its exported artifact:
//! every section's kind/element/offset/length and CRC-32, plus the CRC-32
//! of the whole file. Any drift — a reordered section, a changed META
//! field, an alignment change, a new tensor — fails this test loudly. If
//! the drift is *intentional* (a format revision, not an accident),
//! regenerate the fixture with:
//!
//! ```text
//! SOTERIA_BLESS=1 cargo test --test golden_artifact
//! ```
//!
//! The artifact is native-endian by design (it targets the machine that
//! memory-maps it), so the pinned CRCs are only meaningful on the
//! little-endian machines everything runs on; the test is a no-op
//! elsewhere rather than a false alarm.

use serde::{Deserialize, Serialize};
use soteria::{Backend, Soteria, SoteriaConfig};
use soteria_corpus::{Corpus, CorpusConfig};
use soteria_resilience::crc32;
use std::path::PathBuf;

const CORPUS_SEED: u64 = 91;
const TRAIN_SEED: u64 = 7;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ArtifactFixture {
    corpus_seed: u64,
    train_seed: u64,
    total_len: u64,
    artifact_crc32: u32,
    sections: Vec<SectionFixture>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct SectionFixture {
    id: u32,
    kind: u32,
    elem: u32,
    offset: u64,
    len: u64,
    crc32: u32,
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_artifact.json")
}

fn compute_current() -> ArtifactFixture {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [8, 8, 8, 8],
        seed: CORPUS_SEED,
        av_noise: false,
        lineages: 2,
    });
    let split = corpus.split(0.8, 1);
    // Int8 training persists the quantized sections too, so the fixture
    // pins the full section set, not just the f32 tensors.
    let config = SoteriaConfig {
        backend: Backend::Int8,
        ..SoteriaConfig::tiny()
    };
    let soteria = Soteria::train(&config, &corpus, &split.train, TRAIN_SEED).expect("train");
    let artifact = soteria
        .save_state()
        .expect("save state")
        .to_artifact()
        .expect("v3 artifact");
    let image = soteria::StateImage::parse(&artifact).expect("v3 parse");

    ArtifactFixture {
        corpus_seed: CORPUS_SEED,
        train_seed: TRAIN_SEED,
        total_len: artifact.len() as u64,
        artifact_crc32: crc32(&artifact),
        sections: image
            .sections()
            .iter()
            .map(|s| SectionFixture {
                id: s.id,
                kind: s.kind,
                elem: s.elem,
                offset: s.offset,
                len: s.len,
                crc32: s.crc,
            })
            .collect(),
    }
}

#[test]
fn artifact_layout_matches_committed_golden_fixture() {
    if cfg!(target_endian = "big") {
        eprintln!("skipping: the fixture pins the little-endian layout");
        return;
    }
    let current = compute_current();
    let path = fixture_path();

    if std::env::var("SOTERIA_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixture");
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed artifact fixture at {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing artifact fixture {} ({e}); generate it with \
             `SOTERIA_BLESS=1 cargo test --test golden_artifact`",
            path.display()
        )
    });
    let recorded: ArtifactFixture = serde_json::from_str(&raw).expect("parse artifact fixture");

    assert_eq!(
        recorded,
        current,
        "ARTIFACT LAYOUT DRIFT: the v3 exporter no longer reproduces the \
         committed section layout in {}. The artifact must stay a pure \
         function of the trained state; if this drift is intentional (a \
         format revision), bump the version handling, re-bless with \
         `SOTERIA_BLESS=1 cargo test --test golden_artifact`, and explain \
         it in the commit message.",
        fixture_path().display()
    );
}
