//! Cross-experiment consistency: the table runners must agree with each
//! other on every shared quantity.

use soteria_eval::experiments;
use soteria_eval::{EvalConfig, ExperimentContext};

fn context() -> ExperimentContext {
    ExperimentContext::build(EvalConfig::quick(77))
}

#[test]
fn every_experiment_renders_nonempty_output() {
    let mut ctx = context();
    for id in experiments::ALL_EXPERIMENTS {
        let out = experiments::run(id, &mut ctx);
        assert_eq!(out.id, id);
        assert!(!out.tables.is_empty(), "{id} produced no tables");
        let rendered = out.to_string();
        assert!(rendered.len() > 40, "{id} output suspiciously short");
        for t in &out.tables {
            let csv = t.to_csv();
            assert!(csv.lines().count() >= 1);
        }
    }
}

#[test]
fn table3_ae_counts_match_table4_totals() {
    let mut ctx = context();
    let t3 = experiments::run("table3", &mut ctx);
    let t4 = experiments::run("table4", &mut ctx);
    // Per-target # AEs in table3 equals # AEs evaluated in table4.
    let csv3 = t3.tables[0].to_csv();
    let csv4 = t4.tables[0].to_csv();
    let aes3: Vec<&str> = csv3
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(3).unwrap())
        .collect();
    let aes4: Vec<&str> = csv4
        .lines()
        .skip(1)
        .take(aes3.len())
        .map(|l| l.split(',').nth(2).unwrap())
        .collect();
    assert_eq!(aes3, aes4);
}

#[test]
fn table6_totals_match_split_size() {
    let mut ctx = context();
    let out = experiments::run("table6", &mut ctx);
    let csv = out.tables[0].to_csv();
    let overall = csv.lines().last().unwrap();
    let total: usize = overall.split(',').nth(1).unwrap().parse().unwrap();
    assert_eq!(total, ctx.split.test.len());
}

#[test]
fn table8_misses_complement_table4_detections() {
    let mut ctx = context();
    let t4 = experiments::run("table4", &mut ctx);
    let t8 = experiments::run("table8", &mut ctx);
    let csv4 = t4.tables[0].to_csv();
    let csv8 = t8.tables[0].to_csv();
    let last4 = csv4.lines().last().unwrap();
    let last8 = csv8.lines().last().unwrap();
    let total: usize = last4.split(',').nth(2).unwrap().parse().unwrap();
    let detected: usize = last4.split(',').nth(3).unwrap().parse().unwrap();
    let missed: usize = last8.split(',').nth(2).unwrap().parse().unwrap();
    assert_eq!(total - detected, missed);
}

#[test]
fn fig13_alpha_one_matches_table_rates() {
    // Fig. 13's α = 1.0 row must agree with Table IV/VI (the operating
    // point is the same detector).
    let mut ctx = context();
    let t4 = experiments::run("table4", &mut ctx);
    let fig = experiments::run("fig13", &mut ctx);
    let csv4 = t4.tables[0].to_csv();
    let last4 = csv4.lines().last().unwrap();
    let total: f64 = last4.split(',').nth(2).unwrap().parse().unwrap();
    let detected: f64 = last4.split(',').nth(3).unwrap().parse().unwrap();
    let miss_rate = 100.0 * (total - detected) / total;

    let csvf = fig.tables[0].to_csv();
    let alpha1 = csvf
        .lines()
        .find(|l| l.starts_with("1.0,"))
        .expect("alpha 1.0 row");
    let ae_err: f64 = alpha1.split(',').nth(2).unwrap().parse().unwrap();
    assert!(
        (ae_err - miss_rate).abs() < 0.51,
        "fig13 AE error {ae_err} vs table4 miss rate {miss_rate}"
    );
}
