//! The screening service's core contract, asserted end to end:
//!
//! 1. **Equivalence** — for any worker count and batch window, the service
//!    produces verdicts bit-identical to a sequential
//!    [`Soteria::screen_binary`] replay with content-derived seeds, and a
//!    cache hit equals the cold-path verdict it memoized.
//! 2. **Stress + fault isolation** — many threads submitting a mix of
//!    clean, GEA-adversarial, and corrupted samples: no aborts, every
//!    submission resolves (verdict, `Degraded`, or `Rejected`), and the
//!    cache accounting stays consistent under the race.

use soteria::{Soteria, SoteriaConfig, Verdict};
use soteria_corpus::{Corpus, CorpusConfig, Family, FaultInjector};
use soteria_gea::{gea_merge, SizeClass, TargetSelection};
use soteria_serve::{request_seed, ScreeningService, ServeConfig, Submit};
use std::time::Duration;

fn trained() -> (Soteria, Corpus, Vec<usize>) {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [10, 10, 10, 10],
        seed: 33,
        av_noise: false,
        lineages: 3,
    });
    let split = corpus.split(0.8, 2);
    let soteria = Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 5).expect("train");
    (soteria, corpus, split.test)
}

fn serve_config(workers: usize, window: Duration) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 64,
        cache_capacity: 64,
        cache_shards: 4,
        batch_window: window,
        max_batch: 4,
        seed: 17,
        trace_sampling: 1.0,
        ..ServeConfig::default()
    }
}

#[test]
fn any_worker_count_and_window_is_bit_identical_to_sequential() {
    let (mut soteria, corpus, test) = trained();
    let mut requests: Vec<Vec<u8>> = test
        .iter()
        .map(|&i| corpus.samples()[i].binary().to_bytes())
        .collect();
    // A malformed sample rides along and must degrade identically.
    requests.push(vec![0xA5u8; 64]);

    let expected: Vec<Verdict> = requests
        .iter()
        .map(|b| soteria.screen_binary(b, request_seed(17, b)))
        .collect();

    for workers in [1usize, 3] {
        for window_ms in [0u64, 5] {
            let config = serve_config(workers, Duration::from_millis(window_ms));
            let service = ScreeningService::start(soteria, &config);
            let tickets: Vec<_> = requests
                .iter()
                .map(|b| {
                    service
                        .submit(b.clone())
                        .into_ticket()
                        .expect("queue sized for the whole run")
                })
                .collect();
            let got: Vec<Verdict> = tickets.into_iter().map(|t| t.wait()).collect();
            soteria = service.shutdown();
            assert_eq!(
                got, expected,
                "service diverged at workers={workers} window={window_ms}ms"
            );
        }
    }
}

#[test]
fn cache_hits_equal_the_cold_path_verdicts() {
    let (soteria, corpus, test) = trained();
    let requests: Vec<Vec<u8>> = test
        .iter()
        .take(5)
        .map(|&i| corpus.samples()[i].binary().to_bytes())
        .collect();
    let service = ScreeningService::start(soteria, &serve_config(2, Duration::ZERO));

    let cold: Vec<Verdict> = requests
        .iter()
        .map(|b| {
            let ticket = service.submit(b.clone()).into_ticket().expect("accepted");
            assert!(!ticket.is_cached(), "first sight of this content");
            ticket.wait()
        })
        .collect();
    let warm: Vec<Verdict> = requests
        .iter()
        .map(|b| {
            let ticket = service.submit(b.clone()).into_ticket().expect("accepted");
            assert!(ticket.is_cached(), "second submit of identical content");
            ticket.wait()
        })
        .collect();
    assert_eq!(warm, cold);

    let stats = service.stats();
    assert_eq!(stats.cache.hits, requests.len() as u64);
    assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
    drop(service);
}

/// Hot swap under concurrent load: every verdict produced while the swap
/// is in flight is bit-identical to either the old model's sequential
/// oracle or the new model's — never a mixture — and once the swap
/// settles, only new-model verdicts remain.
#[test]
fn hot_swap_mid_load_serves_only_whole_model_verdicts() {
    let (old, corpus, test) = trained();
    let mut new = Soteria::train(
        &SoteriaConfig::tiny(),
        &corpus,
        &corpus.split(0.8, 2).train,
        11,
    )
    .expect("train");
    let requests: Vec<Vec<u8>> = test
        .iter()
        .take(6)
        .map(|&i| corpus.samples()[i].binary().to_bytes())
        .collect();
    let mut old = old;
    let old_oracle: Vec<Verdict> = requests
        .iter()
        .map(|b| old.screen_binary(b, request_seed(17, b)))
        .collect();
    let new_oracle: Vec<Verdict> = requests
        .iter()
        .map(|b| new.screen_binary(b, request_seed(17, b)))
        .collect();
    assert_ne!(
        old_oracle, new_oracle,
        "differently seeded training must be observable, or this test proves nothing"
    );

    let config = ServeConfig {
        workers: 3,
        queue_capacity: 256,
        cache_capacity: 64,
        cache_shards: 4,
        batch_window: Duration::from_millis(1),
        max_batch: 4,
        seed: 17,
        ..ServeConfig::default()
    };
    let service = ScreeningService::start(old, &config);
    std::thread::scope(|s| {
        let service = &service;
        let requests = &requests;
        let old_oracle = &old_oracle;
        let new_oracle = &new_oracle;
        for t in 0..4usize {
            s.spawn(move || {
                for i in 0..30usize {
                    let idx = (t * 7 + i) % requests.len();
                    if let Submit::Accepted(ticket) = service.submit(requests[idx].clone()) {
                        let v = ticket.wait();
                        assert!(
                            v == old_oracle[idx] || v == new_oracle[idx],
                            "verdict matches neither model's oracle for request {idx}: {v:?}"
                        );
                    }
                }
            });
        }
        // Swap roughly mid-load; verdicts before and after must each be
        // whole-model answers.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(service.swap(new), 1);
    });
    // A sentinel with never-seen content forces one post-swap job through
    // the pipeline: when it resolves, the batcher has installed the new
    // model and dropped every memoized old-model verdict.
    let mut sentinel = requests[0].clone();
    sentinel.push(0xEE);
    let _ = service
        .submit(sentinel)
        .into_ticket()
        .expect("accepted")
        .wait();
    for (idx, b) in requests.iter().enumerate() {
        let v = service
            .submit(b.clone())
            .into_ticket()
            .expect("accepted")
            .wait();
        assert_eq!(
            v, new_oracle[idx],
            "request {idx} still answered by the retired model after the swap settled"
        );
    }
    assert_eq!(service.stats().epoch, 1);
    let _ = service.shutdown();
}

#[test]
fn concurrent_mixed_load_resolves_every_submission() {
    let (soteria, corpus, test) = trained();

    // Request pool: clean binaries, GEA adversarial examples, and
    // injector-corrupted mutants of the clean ones.
    let clean: Vec<Vec<u8>> = test
        .iter()
        .take(6)
        .map(|&i| corpus.samples()[i].binary().to_bytes())
        .collect();
    let selection = TargetSelection::select(&corpus);
    let target = selection.sample(
        &corpus,
        selection
            .target(Family::Benign, SizeClass::Large)
            .expect("benign target exists"),
    );
    let adversarial: Vec<Vec<u8>> = test
        .iter()
        .filter(|&&i| corpus.samples()[i].family() != Family::Benign)
        .take(3)
        .map(|&i| {
            gea_merge(&corpus.samples()[i], target)
                .expect("merge")
                .sample()
                .binary()
                .to_bytes()
        })
        .collect();
    let injector = FaultInjector::new(9);
    let corrupted: Vec<Vec<u8>> = (0..6u64)
        .map(|i| injector.corrupt(&clean[i as usize % clean.len()], i).0)
        .collect();
    let pool: Vec<Vec<u8>> = clean
        .into_iter()
        .chain(adversarial)
        .chain(corrupted)
        .collect();

    // Tiny queue so backpressure actually triggers under the race.
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        cache_capacity: 32,
        cache_shards: 4,
        batch_window: Duration::from_millis(1),
        max_batch: 4,
        seed: 23,
        trace_sampling: 0.25,
        ..ServeConfig::default()
    };
    let service = ScreeningService::start(soteria, &config);

    const THREADS: usize = 6;
    const PER_THREAD: usize = 25;
    let (resolved, rejected): (usize, usize) = std::thread::scope(|s| {
        let service = &service;
        let pool = &pool;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut resolved = 0usize;
                    let mut rejected = 0usize;
                    for i in 0..PER_THREAD {
                        let bytes = pool[(t * 7 + i) % pool.len()].clone();
                        match service.submit(bytes) {
                            Submit::Accepted(ticket) => {
                                // Any verdict counts — including Degraded.
                                // What must never happen is a hang, a panic
                                // escaping, or a dropped reply.
                                let _verdict = ticket.wait();
                                resolved += 1;
                            }
                            Submit::Rejected { .. } => rejected += 1,
                        }
                    }
                    (resolved, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread must not panic"))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    });

    assert_eq!(
        resolved + rejected,
        THREADS * PER_THREAD,
        "every submission must resolve or be rejected"
    );
    let stats = service.stats();
    assert_eq!(stats.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.cache.lookups,
        "cache accounting must stay consistent under the race"
    );
    // Graceful drain: shutdown must not panic and hands the model back.
    let _soteria = service.shutdown();
}
