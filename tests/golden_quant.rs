//! Golden-vector regression fixture for the **int8 quantized inference
//! path** (DESIGN.md §9).
//!
//! The int8 path is a different committed function from the f32 path —
//! deliberately not bit-identical to it — so it gets its own fixture
//! (`tests/fixtures/golden_quant.json`) pinning, for a fixed corpus seed
//! and training seed:
//!
//! * a CRC-32 of the quantized detector's reconstruction errors over the
//!   test split (f64 little-endian bytes),
//! * a CRC-32 of each quantized CNN's raw logits over one sample's walk
//!   matrices (f32 little-endian bit patterns),
//! * every test sample's verdict and vote tally under `Backend::Int8`.
//!
//! Quantized weights and scales are a pure function of (f32 model,
//! calibration batch) and inference is exact integer arithmetic plus
//! scalar f32 post-scaling, so these values must reproduce bit-for-bit
//! across runs, hosts, and thread counts. If a drift is *intentional* (a
//! quantization-scheme change, not an accident), regenerate with:
//!
//! ```text
//! SOTERIA_BLESS=1 cargo test --test golden_quant
//! ```

use serde::{Deserialize, Serialize};
use soteria::{Backend, Soteria, SoteriaConfig};
use soteria_corpus::{Corpus, CorpusConfig};
use soteria_features::SampleFeatures;
use soteria_nn::Matrix;
use soteria_resilience::crc32;
use std::path::PathBuf;

const CORPUS_SEED: u64 = 123;
const TRAIN_SEED: u64 = 5;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct QuantFixture {
    corpus_seed: u64,
    train_seed: u64,
    backend: String,
    /// CRC over the detector's reconstruction errors on the test split.
    re_crc32: u32,
    /// CRC over the quantized DBL CNN's logits for sample 0's walks.
    dbl_logits_crc32: u32,
    /// CRC over the quantized LBL CNN's logits for sample 0's walks.
    lbl_logits_crc32: u32,
    samples: Vec<QuantSample>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct QuantSample {
    index: usize,
    walk_seed: u64,
    /// `"adversarial"` or the voted family's display name.
    verdict: String,
    /// Vote tally for clean verdicts (empty for adversarial ones).
    votes: Vec<usize>,
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_quant.json")
}

fn crc_f64(v: &[f64]) -> u32 {
    let mut bytes = Vec::with_capacity(v.len() * 8);
    for &x in v {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    crc32(&bytes)
}

fn crc_f32(v: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(v.len() * 4);
    for &x in v {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    crc32(&bytes)
}

fn compute_current() -> QuantFixture {
    let corpus = Corpus::generate(&CorpusConfig {
        counts: [10, 10, 10, 10],
        seed: CORPUS_SEED,
        av_noise: false,
        lineages: 3,
    });
    let split = corpus.split(0.8, 1);
    let mut config = SoteriaConfig::tiny();
    config.backend = Backend::Int8;
    let mut soteria = Soteria::train(&config, &corpus, &split.train, TRAIN_SEED).expect("train");
    assert_eq!(soteria.backend(), Backend::Int8);

    let features: Vec<(SampleFeatures, u64)> = split
        .test
        .iter()
        .enumerate()
        .map(|(i, &idx)| {
            let walk_seed = 3_000 + i as u64;
            (
                soteria.features(corpus.samples()[idx].graph(), walk_seed),
                walk_seed,
            )
        })
        .collect();

    let rows: Vec<&[f64]> = features.iter().map(|(f, _)| f.combined()).collect();
    let errors = soteria.detector_mut().reconstruction_errors_of(&rows);

    // Pin the quantized CNNs' raw logits, not just the (coarse) argmax
    // votes: any change to weight quantization, activation scales, or the
    // i32 accumulation shows up here immediately.
    let walk_matrix = |walks: &[Vec<f64>]| Matrix::from_rows(walks);
    let (dbl_q, lbl_q) = soteria.classifier_ref().quantized();
    let dbl_logits = dbl_q
        .expect("int8 training quantizes the DBL CNN")
        .forward(&walk_matrix(features[0].0.dbl_walks()));
    let lbl_logits = lbl_q
        .expect("int8 training quantizes the LBL CNN")
        .forward(&walk_matrix(features[0].0.lbl_walks()));

    let samples = features
        .iter()
        .enumerate()
        .map(|(i, (f, walk_seed))| {
            let (verdict, votes) = match soteria.analyze_features(f) {
                soteria::Verdict::Adversarial { .. } => ("adversarial".to_string(), Vec::new()),
                soteria::Verdict::Clean { family, report, .. } => {
                    (format!("{family}"), report.votes)
                }
                soteria::Verdict::Degraded { reason } => {
                    panic!("fixture sample {i} degraded: {reason}")
                }
            };
            QuantSample {
                index: i,
                walk_seed: *walk_seed,
                verdict,
                votes,
            }
        })
        .collect();

    QuantFixture {
        corpus_seed: CORPUS_SEED,
        train_seed: TRAIN_SEED,
        backend: Backend::Int8.to_string(),
        re_crc32: crc_f64(&errors),
        dbl_logits_crc32: crc_f32(dbl_logits.data()),
        lbl_logits_crc32: crc_f32(lbl_logits.data()),
        samples,
    }
}

#[test]
fn int8_inference_matches_committed_golden_vectors() {
    let current = compute_current();
    let path = fixture_path();

    if std::env::var("SOTERIA_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixture");
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("blessed quant fixture at {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing quant fixture {} ({e}); generate it with \
             `SOTERIA_BLESS=1 cargo test --test golden_quant`",
            path.display()
        )
    });
    let recorded: QuantFixture = serde_json::from_str(&raw).expect("parse quant fixture");

    assert_eq!(
        recorded,
        current,
        "INT8 PATH DRIFT: the quantized inference path no longer reproduces \
         the committed golden vectors in {}. Quantized weights, scales, and \
         integer accumulation must be a pure function of (f32 model, \
         calibration batch); if this drift is intentional, re-bless with \
         `SOTERIA_BLESS=1 cargo test --test golden_quant` and explain it in \
         the commit message.",
        fixture_path().display()
    );
}
