//! Anatomy of the GEA attack: how Graph Embedding and Augmentation
//! reshapes a CFG, how the consistent labelings react, and why the
//! feature representation shifts.
//!
//! ```text
//! cargo run --release --example gea_attack
//! ```

use soteria_cfg::dot;
use soteria_corpus::{Family, SampleGenerator};
use soteria_features::{label_nodes, Labeling};
use soteria_gea::gea_merge;

fn main() {
    let mut gen = SampleGenerator::new(2024);
    let original = gen.generate_with_size(Family::Gafgyt, 12);
    let target = gen.generate_with_size(Family::Benign, 10);

    let og = original.graph();
    let tg = target.graph();
    println!(
        "original: {} ({} nodes, {} edges)",
        original.name(),
        og.node_count(),
        og.edge_count()
    );
    println!(
        "target:   {} ({} nodes, {} edges)",
        target.name(),
        tg.node_count(),
        tg.edge_count()
    );

    // Labels of the original graph before the attack.
    let dbl_before = label_nodes(og, Labeling::Density);
    let lbl_before = label_nodes(og, Labeling::Level);
    println!("\noriginal DBL labels: {dbl_before:?}");
    println!("original LBL labels: {lbl_before:?}");

    // The GEA merge: shared entry, both subgraphs, shared exit. Only the
    // original branch executes, but both are statically reachable.
    let merged = gea_merge(&original, &target).expect("merge");
    let mg = merged.sample().graph();
    println!(
        "\nmerged:   {} ({} nodes = {} + {} + 2, {} edges)",
        merged.sample().name(),
        mg.node_count(),
        og.node_count(),
        tg.node_count(),
        mg.edge_count()
    );

    // The labeling consistency property (paper §III-B): the original
    // nodes' labels change after the merge, so the random-walk gram
    // distribution — and hence the features — shift.
    let dbl_after = label_nodes(mg, Labeling::Density);
    let changed = dbl_before
        .iter()
        .enumerate()
        // Original node i lives at merged index 1 + i.
        .filter(|&(i, &before)| dbl_after[1 + i] != before)
        .count();
    println!(
        "\nDBL labels of {} of {} original nodes changed after the merge",
        changed,
        og.node_count()
    );

    // Walk-level view: the merged entry fans out into both subgraphs.
    let entry = mg.entry();
    println!(
        "merged entry {} has {} successors (original entry + embedded entry)",
        entry,
        mg.out_degree(entry)
    );

    // Render the merged CFG for graphviz (`dot -Tpng`).
    let rendered = dot::to_dot(mg, Some(&dbl_after));
    println!(
        "\nmerged CFG in DOT format ({} bytes; labels are DBL ranks):\n{}",
        rendered.len(),
        rendered
    );
}
