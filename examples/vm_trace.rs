//! Execute SotVM binaries with the reference interpreter and verify the
//! threat model's functionality claims dynamically:
//!
//! * byte-appending manipulations never execute,
//! * a GEA adversarial example never runs its embedded code.
//!
//! ```text
//! cargo run --release --example vm_trace
//! ```

use soteria_corpus::{vm, Family, SampleGenerator};
use soteria_gea::{append, gea_merge};

fn main() {
    let mut gen = SampleGenerator::new(77);
    let sample = gen.generate(Family::Mirai);
    println!(
        "{}: {} blocks, {} bytes",
        sample.name(),
        sample.graph().node_count(),
        sample.binary().len()
    );

    // Run the clean sample.
    let clean = vm::run(sample.binary(), 20_000).expect("clean run");
    println!(
        "clean run: {} steps, {} syscalls, stop = {:?}",
        clean.steps,
        clean.syscalls.len(),
        clean.stop
    );
    if let Some((num, arg)) = clean.syscalls.first() {
        println!("first syscall: num {num}, reg0 {arg}");
    }

    // Byte-appending: same observable behavior, byte for byte.
    let appended = append::append_trailing_bytes(&sample, 4096, 1).expect("append");
    let appended_trace = vm::run(appended.binary(), 20_000).expect("appended run");
    println!(
        "\nappended 4096 bytes -> identical trace: {}",
        appended_trace == clean
    );

    // GEA: the embedded target region never executes.
    let target = gen.generate(Family::Benign);
    let merged = gea_merge(&sample, &target).expect("merge");
    let merged_trace = vm::run(merged.sample().binary(), 20_000).expect("merged run");
    let g = merged.sample().graph();
    let target_first = g
        .block(soteria_cfg::BlockId::new(1 + sample.graph().node_count()))
        .address();
    let exit_addr = g
        .block(soteria_cfg::BlockId::new(g.node_count() - 1))
        .address();
    let embedded_executed = merged_trace
        .executed_offsets
        .iter()
        .filter(|&&o| u64::from(o) >= target_first && u64::from(o) < exit_addr)
        .count();
    println!(
        "\nGEA example {}: {} steps, {} offsets executed, {} of them in the \
         embedded region (static CFG contains {} embedded blocks)",
        merged.sample().name(),
        merged_trace.steps,
        merged_trace.executed_offsets.len(),
        embedded_executed,
        target.graph().node_count()
    );
    println!(
        "practical-AE premise holds: embedded code reachable statically, \
         executed dynamically = {}",
        embedded_executed == 0
    );
}
