//! Quickstart: train Soteria on a small synthetic corpus, then analyze a
//! clean sample, a GEA adversarial example, and a byte-appended binary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use soteria::{Soteria, SoteriaConfig, Verdict};
use soteria_corpus::{Corpus, CorpusConfig, Family};
use soteria_gea::{append, gea_merge, SizeClass, TargetSelection};

fn main() {
    // 1. A small corpus: benign IoT builds plus three malware families,
    //    split 80/20.
    let corpus = Corpus::generate(&CorpusConfig::scaled(0.015, 42));
    let split = corpus.split(0.8, 1);
    println!(
        "corpus: {} samples, {} train / {} test",
        corpus.len(),
        split.train.len(),
        split.test.len()
    );

    // 2. Train the full system: feature extractor (DBL/LBL labeling,
    //    random walks, n-grams, TF-IDF), auto-encoder detector, and the
    //    two-CNN voting classifier.
    let mut soteria =
        Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 7).expect("train");
    println!(
        "trained; detector threshold = {:.4}",
        soteria.detector_mut().stats().threshold()
    );

    // 3. Analyze a clean malware sample from the test split.
    let mirai = corpus
        .of_class(&split.test, Family::Mirai)
        .first()
        .copied()
        .expect("test split has Mirai samples")
        .clone();
    match soteria.analyze(mirai.graph(), 100) {
        Verdict::Clean { family, report, .. } => {
            println!(
                "clean sample {} -> {family} (votes: {:?})",
                mirai.name(),
                report.votes
            );
        }
        Verdict::Adversarial {
            reconstruction_error,
        } => println!(
            "clean sample {} flagged as AE (RE {reconstruction_error:.4})",
            mirai.name()
        ),
        Verdict::Degraded { reason } => {
            println!("clean sample {} degraded: {reason}", mirai.name())
        }
    }

    // 4. Attack it with GEA: embed a large benign target so a CFG-based
    //    classifier would lean benign — Soteria's detector should flag it.
    let selection = TargetSelection::select(&corpus);
    let target = selection
        .target(Family::Benign, SizeClass::Large)
        .expect("benign targets exist");
    let target_sample = selection.sample(&corpus, target);
    let ae = gea_merge(&mirai, target_sample).expect("merge");
    match soteria.analyze(ae.sample().graph(), 200) {
        Verdict::Adversarial {
            reconstruction_error,
        } => println!(
            "GEA example {} detected (RE {reconstruction_error:.4})",
            ae.sample().name()
        ),
        Verdict::Clean { family, .. } => {
            println!("GEA example slipped through, classified {family}")
        }
        Verdict::Degraded { reason } => println!("GEA example degraded: {reason}"),
    }

    // 5. Byte-appending (the paper's *impractical* AE): the appended bytes
    //    are unreachable, so the features — and the verdict — are
    //    unchanged.
    let appended = append::append_trailing_bytes(&mirai, 4096, 3).expect("append");
    let verdict = soteria.analyze(appended.graph(), 100);
    match verdict {
        Verdict::Clean { family, .. } => println!(
            "byte-appended copy still classified {family} (features ignore appended bytes)"
        ),
        Verdict::Adversarial { .. } => println!("byte-appended copy flagged (unexpected)"),
        Verdict::Degraded { reason } => println!("byte-appended copy degraded: {reason}"),
    }
}
