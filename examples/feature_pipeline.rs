//! A guided tour of Soteria's feature pipeline on one sample: lifting,
//! labeling, random walks, n-grams, TF-IDF and the randomization property.
//!
//! ```text
//! cargo run --release --example feature_pipeline
//! ```

use soteria_corpus::{disasm, Family, SampleGenerator};
use soteria_features::ngram::count_walk_set;
use soteria_features::{label_nodes, walk_set, ExtractorConfig, FeatureExtractor, Labeling};

fn main() {
    let mut gen = SampleGenerator::new(99);
    let sample = gen.generate(Family::Tsunami);

    // 1. Lift the binary (the radare2-equivalent step).
    let lifted = disasm::lift(sample.binary()).expect("lift");
    let (cfg, _) = lifted.cfg.reachable_subgraph();
    println!(
        "{}: {} bytes -> {} blocks, {} edges",
        sample.name(),
        sample.binary().len(),
        cfg.node_count(),
        cfg.edge_count()
    );

    // 2. Label nodes both ways.
    let dbl = label_nodes(&cfg, Labeling::Density);
    let lbl = label_nodes(&cfg, Labeling::Level);
    println!("entry DBL label: {}", dbl[cfg.entry().index()]);
    println!("entry LBL label: {} (always 0)", lbl[cfg.entry().index()]);

    // 3. Random walks: 10 walks of length 5·|V| per labeling.
    use rand::SeedableRng as _;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let walks: Vec<Vec<usize>> = walk_set(&cfg, &dbl, 5, 10, &mut rng);
    println!(
        "\n10 DBL walks of {} labels each; first walk head: {:?}",
        walks[0].len(),
        &walks[0][..12.min(walks[0].len())]
    );

    // 4. n-grams of sizes 2, 3, 4.
    let grams = count_walk_set(&walks, &[2, 3, 4]);
    println!(
        "{} grams total, {} distinct; top five by frequency:",
        grams.total(),
        grams.distinct()
    );
    for g in grams.top_k(5) {
        println!("  {g} x{}", grams.count(g));
    }

    // 5. The full extractor: vocabulary fitted on a training set, then
    //    TF-IDF vectors per walk plus the combined detector vector.
    let train: Vec<_> = (0..12)
        .map(|_| gen.generate(Family::Tsunami).graph().clone())
        .collect();
    let extractor = FeatureExtractor::fit(&ExtractorConfig::small(), &train, 1);
    let features = extractor.extract(&cfg, 7);
    println!(
        "\nfeature vectors: {} DBL walks + {} LBL walks ({}-dim each) + combined ({}-dim)",
        features.dbl_walks().len(),
        features.lbl_walks().len(),
        extractor.per_labeling_dim(),
        extractor.combined_dim()
    );

    // 6. The randomization property: two extractions of the SAME sample
    //    use different walks, so an adversary cannot predict the features
    //    the deployed system will see.
    let again = extractor.extract(&cfg, 8);
    let diff: f64 = features
        .combined()
        .iter()
        .zip(again.combined())
        .map(|(a, b)| (a - b).abs())
        .sum();
    println!("\nL1 distance between two extractions of the same sample: {diff:.4}");
    println!("(nonzero by design — this is the randomization defense)");
}
