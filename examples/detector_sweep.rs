//! Sweep the detector's α threshold on a small corpus and print the two
//! error curves of Fig. 13 (clean false positives vs adversarial misses).
//!
//! ```text
//! cargo run --release --example detector_sweep
//! ```

use soteria::{Soteria, SoteriaConfig};
use soteria_corpus::{Corpus, CorpusConfig, Family};
use soteria_gea::{gea_merge, SizeClass, TargetSelection};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::scaled(0.015, 11));
    let split = corpus.split(0.8, 2);
    let mut soteria =
        Soteria::train(&SoteriaConfig::tiny(), &corpus, &split.train, 3).expect("train");
    let stats = soteria.detector_mut().stats();
    println!(
        "clean-training RE: mu {:.4}, sigma {:.4}",
        stats.mean, stats.std_dev
    );

    // Clean REs from the test split.
    let clean_res: Vec<f64> = split
        .test
        .iter()
        .enumerate()
        .map(|(i, &idx)| {
            let f = soteria.features(corpus.samples()[idx].graph(), 500 + i as u64);
            soteria.detector_mut().reconstruction_error(f.combined())
        })
        .collect();

    // AE REs: GEA with the large benign target over all malware test
    // samples.
    let selection = TargetSelection::select(&corpus);
    let target = selection
        .sample(
            &corpus,
            selection
                .target(Family::Benign, SizeClass::Large)
                .expect("benign target"),
        )
        .clone();
    let ae_res: Vec<f64> = split
        .test
        .iter()
        .enumerate()
        .filter(|(_, &idx)| corpus.samples()[idx].family() != Family::Benign)
        .map(|(i, &idx)| {
            let merged = gea_merge(&corpus.samples()[idx], &target).expect("merge");
            let f = soteria.features(merged.sample().graph(), 900 + i as u64);
            soteria.detector_mut().reconstruction_error(f.combined())
        })
        .collect();

    println!("\nalpha  clean FP%   AE miss%");
    for step in 0..=10 {
        let alpha = 0.2 * step as f64;
        let thr = stats.threshold_at(alpha);
        let fp = 100.0 * clean_res.iter().filter(|&&r| r > thr).count() as f64
            / clean_res.len().max(1) as f64;
        let miss = 100.0 * ae_res.iter().filter(|&&r| r <= thr).count() as f64
            / ae_res.len().max(1) as f64;
        let marker = if (alpha - stats.alpha).abs() < 1e-9 {
            "  <- Soteria's operating point"
        } else {
            ""
        };
        println!("{alpha:>4.1}   {fp:>7.2}    {miss:>7.2}{marker}");
    }
}
